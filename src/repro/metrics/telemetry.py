"""Time-series telemetry: periodic sampling, ring buffers, structured export.

The paper's evaluation hinges on time-resolved behavior — per-scheme
throughput timelines (Figs 1, 7, 9), queue occupancy (Fig 11), credit-loop
dynamics — but end-of-run aggregates can't show a DWRR share converging or
a queue draining after a link flap. This module provides the one sampling
path everything time-resolved goes through:

* :class:`TelemetrySampler` — a periodic probe pump driven by the event
  engine (:meth:`repro.sim.engine.Simulator.every`). Probes only *read*
  counters the simulator already maintains (queue byte counts, drop/mark
  stats, link delivery counters, per-flow goodput), so the packet hot path
  gains zero work and the coalesced-TX / cut-through fast paths stay
  enabled — unlike a ``port.monitors`` tap, which forces the slow path.
* :class:`RingBuffer` — bounded storage per series; a sampler left running
  for a long simulation overwrites its oldest samples instead of growing.
* :class:`TelemetrySeries` — the frozen, picklable result: packed typed
  columns (``array('q')`` times + ``array('d')`` values, the
  :class:`~repro.metrics.fct.PackedFlowRecords` idiom), with JSON/CSV
  export and ASCII sparklines for terminal summaries.
* :class:`TelemetryConfig` — the knob block embedded in
  :class:`~repro.experiments.config.ExperimentConfig`; it participates in
  the experiment-cache content key like every other config field.

Sampling is *cadenced*, not event-driven: a probe reads the instantaneous
or cumulative value every ``interval_ns``, which coalesces arbitrarily many
packet events into one sample. Gauges store the instantaneous reading;
counters store the per-interval delta times ``scale`` (so a byte counter
becomes bits/s or a utilization fraction at declaration time, not at
analysis time).
"""

from __future__ import annotations

import json
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.net.packet import CREDIT_WIRE_BYTES, packet_pool

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort
    from repro.sim.engine import RepeatingEvent, Simulator

#: Unicode block ramp for terminal sparklines.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

GAUGE = "gauge"
COUNTER = "counter"


def sparkline(values: Iterable[float], width: int = 60) -> str:
    """Render values as a one-line unicode sparkline (max-pooled to width)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        step = len(vals) / width
        vals = [
            max(vals[int(i * step):max(int(i * step) + 1, int((i + 1) * step))])
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(vals)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(_SPARK_BLOCKS[int((v - lo) / span * top)] for v in vals)


class RingBuffer:
    """Bounded (time, value) storage: overwrites the oldest when full.

    Backed by two typed arrays (``q`` times, ``d`` values), so a series
    costs 16 bytes per sample regardless of Python object overhead, and the
    frozen copy is a cheap slice instead of a per-element conversion.
    """

    __slots__ = ("capacity", "_times", "_values", "_start", "overwritten")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._times = array("q")
        self._values = array("d")
        self._start = 0  # index of the oldest sample once the ring is full
        self.overwritten = 0

    def __len__(self) -> int:
        return len(self._times)

    def append(self, t: int, v: float) -> None:
        if len(self._times) < self.capacity:
            self._times.append(t)
            self._values.append(v)
            return
        i = self._start
        self._times[i] = t
        self._values[i] = v
        self._start = (i + 1) % self.capacity
        self.overwritten += 1

    def unrolled(self) -> Tuple[array, array]:
        """Samples in time order as fresh ``(times, values)`` arrays."""
        s = self._start
        if s == 0:
            return array("q", self._times), array("d", self._values)
        return (self._times[s:] + self._times[:s],
                self._values[s:] + self._values[:s])


@dataclass(frozen=True)
class TelemetryConfig:
    """What :func:`repro.experiments.runner.run_experiment` should sample.

    Part of :class:`~repro.experiments.config.ExperimentConfig`, and
    therefore part of the experiment-cache content key: changing any field
    re-runs the simulation rather than serving a result recorded with
    different instrumentation.
    """

    enabled: bool = True
    #: sampling cadence; every probe fires once per interval
    interval_ns: int = 100_000
    #: ring-buffer bound per series — long runs keep the newest samples
    max_samples: int = 4096
    #: which switch ports get per-queue depth/drop/mark series:
    #: "tor_uplinks" (the core load measurement points), "all", or "none"
    ports: str = "tor_uplinks"
    #: per-flow goodput series: aggregate by "scheme", per "flow", or "none"
    flows: str = "scheme"
    #: per-link utilization series for the watched ports
    links: bool = True
    #: packet-pool occupancy gauges
    pool: bool = True
    #: per-scheme allocated credit-rate gauges (transport feedback loop)
    credit: bool = True
    #: cap on dynamically-created flow series (flows="flow" mode)
    max_flow_series: int = 64

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ValueError("telemetry interval must be positive")
        if self.max_samples <= 0:
            raise ValueError("telemetry max_samples must be positive")
        if self.ports not in ("tor_uplinks", "all", "none"):
            raise ValueError(f"unknown ports mode {self.ports!r}")
        if self.flows not in ("scheme", "flow", "none"):
            raise ValueError(f"unknown flows mode {self.flows!r}")


class TelemetrySeries:
    """Frozen sampler output: named, typed, packed time-series columns.

    Plain data end to end — two typed arrays per series — so it pickles
    compactly across the ``run_many`` worker boundary and in experiment-
    cache entries, exactly like ``PackedFlowRecords``.
    """

    __slots__ = ("interval_ns", "_kinds", "_times", "_values", "overwritten")

    def __init__(self, interval_ns: int, kinds: Dict[str, str],
                 times: Dict[str, array], values: Dict[str, array],
                 overwritten: Dict[str, int]) -> None:
        self.interval_ns = interval_ns
        self._kinds = kinds
        self._times = times
        self._values = values
        self.overwritten = overwritten

    # --------------------------------------------------------------- pickle

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for key, value in state.items():
            setattr(self, key, value)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TelemetrySeries):
            return NotImplemented
        return (self.interval_ns == other.interval_ns
                and self._kinds == other._kinds
                and self._times == other._times
                and self._values == other._values)

    # -------------------------------------------------------------- queries

    def names(self) -> List[str]:
        return list(self._times)

    def __contains__(self, name: str) -> bool:
        return name in self._times

    def __len__(self) -> int:
        return len(self._times)

    def kind(self, name: str) -> str:
        return self._kinds[name]

    def times(self, name: str) -> List[int]:
        return list(self._times[name])

    def values(self, name: str) -> List[float]:
        return list(self._values[name])

    def num_samples(self, name: str) -> int:
        return len(self._times[name])

    def aligned_values(self, name: str, until_ns: int) -> List[float]:
        """Values on the fixed tick grid ``interval, 2*interval, ... until``,
        with 0.0 where no sample exists (a series that started late, or
        whose oldest ticks were overwritten)."""
        bins = max(1, until_ns // self.interval_ns)
        out = [0.0] * bins
        for t, v in zip(self._times[name], self._values[name]):
            idx = (t - 1) // self.interval_ns
            if 0 <= idx < bins:
                out[idx] = v
        return out

    def sparkline(self, name: str, width: int = 60) -> str:
        return sparkline(self._values[name], width)

    # -------------------------------------------------------------- export

    def summary_rows(self, names: Optional[Iterable[str]] = None,
                     width: int = 40) -> List[Tuple[str, str, str, str, str]]:
        """(name, kind, mean, max, sparkline) per series, for tables."""
        rows = []
        for name in (names if names is not None else self.names()):
            vals = self._values[name]
            if len(vals):
                mean = sum(vals) / len(vals)
                peak = max(vals)
            else:
                mean = peak = 0.0
            rows.append((name, self._kinds[name], f"{mean:,.3g}",
                         f"{peak:,.3g}", sparkline(vals, width)))
        return rows

    def to_json_obj(self) -> dict:
        return {
            "interval_ns": self.interval_ns,
            "series": {
                name: {
                    "kind": self._kinds[name],
                    "overwritten": self.overwritten.get(name, 0),
                    "times_ns": list(self._times[name]),
                    "values": list(self._values[name]),
                }
                for name in self._times
            },
        }

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json_obj(), fh)
            fh.write("\n")

    def write_csv(self, path) -> None:
        """Long format — ``series,kind,time_ns,value`` — one row per sample,
        so a spreadsheet or pandas pivot regenerates any timeline."""
        import csv

        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["series", "kind", "time_ns", "value"])
            for name in self._times:
                kind = self._kinds[name]
                for t, v in zip(self._times[name], self._values[name]):
                    w.writerow([name, kind, t, repr(v)])


class _Probe:
    """One named scalar probe: a gauge reading or a scaled counter delta."""

    __slots__ = ("name", "kind", "fn", "last", "scale")

    def __init__(self, name: str, kind: str, fn: Callable[[], float],
                 last: Optional[list], scale: float) -> None:
        self.name = name
        self.kind = kind
        self.fn = fn
        self.last = last  # 1-element mutable cell for counters, None for gauges
        self.scale = scale


class _MapProbe:
    """A dynamic probe family: ``fn() -> {label: value}``; series appear as
    labels do (e.g. one goodput series per scheme seen in the run)."""

    __slots__ = ("kind", "fn", "suffix", "scale", "last", "max_series",
                 "dropped_series")

    def __init__(self, kind: str, fn: Callable[[], Dict[str, float]],
                 suffix: str, scale: float,
                 max_series: Optional[int]) -> None:
        self.kind = kind
        self.fn = fn
        self.suffix = suffix
        self.scale = scale
        self.last: Dict[str, float] = {}
        self.max_series = max_series
        self.dropped_series = 0


class TelemetrySampler:
    """Periodic, engine-driven sampler over counter/gauge probes.

    Attach probes (directly or via the ``watch_*`` helpers), call
    :meth:`start`, run the simulation, then :meth:`freeze` the recorded
    series. The sampler never touches ``port.monitors`` and installs no
    per-packet hooks: each tick is a handful of attribute reads, so the
    telemetry-on cost is proportional to probes x ticks, not packets (the
    ``telemetry_overhead`` benchmark gates it below 5% on the forwarding
    bench).
    """

    def __init__(self, sim: "Simulator", interval_ns: int = 100_000,
                 max_samples: int = 4096,
                 until_ns: Optional[int] = None) -> None:
        if interval_ns <= 0:
            raise ValueError("telemetry interval must be positive")
        self.sim = sim
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        self.until_ns = until_ns
        self._probes: List[_Probe] = []
        self._maps: List[_MapProbe] = []
        self._bufs: Dict[str, RingBuffer] = {}
        self._kinds: Dict[str, str] = {}
        self._event: Optional["RepeatingEvent"] = None
        # (fn, last, scale, buf.append) per scalar probe, built at start():
        # the tick loop runs thousands of times, so lookups are pre-bound.
        self._compiled: List[tuple] = []
        self.ticks = 0

    # ------------------------------------------------------------ plumbing

    def _buffer(self, name: str, kind: str) -> RingBuffer:
        if name in self._bufs:
            raise ValueError(f"duplicate telemetry series {name!r}")
        buf = RingBuffer(self.max_samples)
        self._bufs[name] = buf
        self._kinds[name] = kind
        return buf

    def _add_probe(self, probe: _Probe) -> None:
        self._probes.append(probe)
        if self._event is not None:  # added after start(): tick it too
            if probe.last is not None:
                probe.last[0] = probe.fn()
            self._compiled.append((probe.fn, probe.last, probe.scale,
                                   self._bufs[probe.name].append))

    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` as an instantaneous value every tick."""
        self._buffer(name, GAUGE)
        self._add_probe(_Probe(name, GAUGE, fn, None, 1.0))

    def add_counter(self, name: str, fn: Callable[[], float],
                    scale: float = 1.0) -> None:
        """Sample ``fn()`` as a cumulative counter: each tick stores the
        delta since the previous tick times ``scale``."""
        self._buffer(name, COUNTER)
        self._add_probe(_Probe(name, COUNTER, fn, [0.0], scale))

    def add_gauge_map(self, fn: Callable[[], Dict[str, float]],
                      suffix: str = "",
                      max_series: Optional[int] = None) -> None:
        """Gauge family: ``fn()`` returns ``{label: value}``; each label
        becomes series ``label + suffix`` on first sight."""
        self._maps.append(_MapProbe(GAUGE, fn, suffix, 1.0, max_series))

    def add_counter_map(self, fn: Callable[[], Dict[str, float]],
                        suffix: str = "", scale: float = 1.0,
                        max_series: Optional[int] = None) -> None:
        """Counter family: per-label cumulative values, stored as scaled
        per-tick deltas (labels start from an implicit 0 baseline)."""
        self._maps.append(_MapProbe(COUNTER, fn, suffix, scale, max_series))

    # ------------------------------------------------------- watch helpers

    def watch_port(self, port: "EgressPort") -> None:
        """Per-queue depth gauges plus drop/ECN-mark rate counters; a paced
        (credit) queue additionally gets a served-credit-rate series."""
        base = f"port.{port.name}"
        per_sec = 1e9 / self.interval_ns
        for idx, sched in enumerate(port.scheduler.schedules):
            q = sched.queue
            st = q.stats
            qb = f"{base}.q{idx}"
            self.add_gauge(f"{qb}.depth_bytes", lambda q=q: q.byte_count)
            if q.config.selective_drop_bytes is not None:
                self.add_gauge(f"{qb}.red_bytes", lambda q=q: q.red_bytes)
            self.add_counter(
                f"{qb}.drops_per_s",
                lambda st=st: (st.dropped_cap + st.dropped_selective
                               + st.dropped_buffer),
                scale=per_sec,
            )
            self.add_counter(f"{qb}.ecn_marks_per_s",
                             lambda st=st: st.ecn_marked, scale=per_sec)
            if sched.pacer is not None:
                self.add_counter(f"{base}.credit_bps",
                                 lambda st=st: st.dequeued,
                                 scale=CREDIT_WIRE_BYTES * 8 * per_sec)

    def watch_link(self, port: "EgressPort") -> None:
        """Utilization (fraction of capacity) of the port's outgoing link,
        from the link's existing delivered-bytes counter."""
        link = port.link
        scale = 8e9 / (self.interval_ns * port.rate_bps)
        self.add_counter(f"link.{port.name}.util",
                         lambda link=link: link.bytes_delivered, scale=scale)

    def watch_pool(self) -> None:
        """Global packet-pool occupancy (in-use and free object counts)."""
        pool = packet_pool()
        self.add_gauge("pool.in_use",
                       lambda pool=pool: pool.acquired - pool.released)
        self.add_gauge("pool.free", lambda pool=pool: len(pool))

    def watch_flows(self, flows_fn: Callable[[], Iterable[tuple]],
                    mode: str = "scheme", max_series: int = 64,
                    credit: bool = True) -> None:
        """Goodput (and allocated credit rate) series over live flows.

        ``flows_fn`` returns the current ``(FlowSpec, FlowStats)`` pairs —
        typically the runner's live-flow table. ``mode`` aggregates by
        scheme label, per flow (bounded by ``max_series``), or not at all
        ("none": only the credit-rate gauges, if enabled).
        """
        if mode not in ("scheme", "flow", "none"):
            raise ValueError(f"unknown flows mode {mode!r}")
        bps = 8e9 / self.interval_ns

        if mode != "none":
            def goodput() -> Dict[str, float]:
                out: Dict[str, float] = {}
                for spec, stats in flows_fn():
                    label = (f"scheme.{spec.scheme}" if mode == "scheme"
                             else f"flow.{spec.flow_id}")
                    out[label] = out.get(label, 0) + stats.delivered_bytes
                return out

            self.add_counter_map(goodput, suffix=".goodput_bps", scale=bps,
                                 max_series=max_series)

        if credit:
            def credit_rate() -> Dict[str, float]:
                out: Dict[str, float] = {}
                for spec, stats in flows_fn():
                    if stats.completed or stats.credit_rate_bps <= 0:
                        continue
                    label = (f"flow.{spec.flow_id}" if mode == "flow"
                             else f"scheme.{spec.scheme}")
                    out[label] = out.get(label, 0.0) + stats.credit_rate_bps
                return out

            self.add_gauge_map(credit_rate, suffix=".credit_rate_bps",
                               max_series=max_series)

    # ------------------------------------------------------------- running

    def start(self) -> None:
        """Prime counter baselines and begin ticking every ``interval_ns``."""
        if self._event is not None:
            raise RuntimeError("sampler already started")
        for probe in self._probes:
            if probe.last is not None:
                probe.last[0] = probe.fn()
        self._compiled = [
            (p.fn, p.last, p.scale, self._bufs[p.name].append)
            for p in self._probes
        ]
        self._event = self.sim.every(self.interval_ns, self._tick,
                                     until=self.until_ns)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        now = self.sim.now
        bufs = self._bufs
        self.ticks += 1
        for fn, last, scale, append in self._compiled:
            value = fn()
            if last is not None:
                value, last[0] = (value - last[0]) * scale, value
            append(now, value)
        for mp in self._maps:
            current = mp.fn()
            for label, value in current.items():
                name = label + mp.suffix
                buf = bufs.get(name)
                if buf is None:
                    if (mp.max_series is not None
                            and len(mp.last) >= mp.max_series):
                        mp.dropped_series += 1
                        continue
                    buf = self._buffer(name, mp.kind)
                if mp.kind == COUNTER:
                    prev = mp.last.get(label, 0.0)
                    mp.last[label] = value
                    value = (value - prev) * mp.scale
                else:
                    mp.last.setdefault(label, 0.0)
                buf.append(now, value)

    def freeze(self) -> TelemetrySeries:
        """Stop sampling and pack every series into a TelemetrySeries."""
        self.stop()
        times: Dict[str, array] = {}
        values: Dict[str, array] = {}
        overwritten: Dict[str, int] = {}
        for name, buf in self._bufs.items():
            t, v = buf.unrolled()
            times[name] = t
            values[name] = v
            if buf.overwritten:
                overwritten[name] = buf.overwritten
        return TelemetrySeries(self.interval_ns, dict(self._kinds),
                               times, values, overwritten)
