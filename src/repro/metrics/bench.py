"""Benchmark-baseline bookkeeping (``BENCH_engine.json``).

The simulator-core benchmarks and the :mod:`tools.profile_sim` harness both
record their headline rates (events/sec, packets/sec) through this module so
every run leaves a machine-readable trace that later PRs can diff against.

The file format is a single JSON object::

    {
      "schema": 1,
      "python": "3.12.3",
      "results": {
        "event_dispatch": {"events_per_sec": 1.2e6, "n_events": 200000,
                           "elapsed_s": 0.16},
        ...
      }
    }

Records merge by name: re-running one benchmark updates only its entry, so a
baseline file can be built up across several invocations. Writes are
atomic (tmp file + rename) so a crashed run never truncates a baseline.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
from typing import Dict, List, Optional

SCHEMA_VERSION = 1

#: default output file, relative to the current working directory
DEFAULT_BENCH_FILE = "BENCH_engine.json"

#: environment override for where benchmark runs drop their records
BENCH_OUT_ENV = "REPRO_BENCH_OUT"


def bench_output_path() -> str:
    """Where benchmark records land: ``$REPRO_BENCH_OUT`` or ./BENCH_engine.json."""
    return os.environ.get(BENCH_OUT_ENV, DEFAULT_BENCH_FILE)


def load_baseline(path: str) -> Optional[dict]:
    """Load a baseline file, or ``None`` if absent or unreadable."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "results" not in data:
        return None
    return data


def record_bench(name: str, metrics: Dict[str, float],
                 path: Optional[str] = None) -> dict:
    """Merge one benchmark's metrics into the baseline file at ``path``.

    Returns the full document after the merge.
    """
    if path is None:
        path = bench_output_path()
    doc = load_baseline(path) or {}
    doc.setdefault("schema", SCHEMA_VERSION)
    doc["python"] = platform.python_version()
    results = doc.setdefault("results", {})
    results[name] = dict(metrics)
    _atomic_write_json(path, doc)
    return doc


def compare_to_baseline(current: dict, baseline: dict,
                        metric_suffix: str = "_per_sec",
                        tolerance: float = 0.7) -> List[str]:
    """Return human-readable regression lines: every rate metric in
    ``current`` that fell below ``tolerance`` × its baseline value.

    Only ``*_per_sec`` metrics are rates worth comparing; counts and elapsed
    times vary with configuration. An empty list means no regressions.
    """
    problems: List[str] = []
    base_results = baseline.get("results", {})
    for name, metrics in current.get("results", {}).items():
        base = base_results.get(name)
        if not base:
            continue
        for key, value in metrics.items():
            if not key.endswith(metric_suffix):
                continue
            ref = base.get(key)
            if not isinstance(ref, (int, float)) or ref <= 0:
                continue
            if value < tolerance * ref:
                problems.append(
                    f"{name}.{key}: {value:,.0f} < {tolerance:.0%} of "
                    f"baseline {ref:,.0f}"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.metrics.bench compare CURRENT BASELINE``.

    Exits 1 when any rate metric in CURRENT regressed below
    ``--tolerance`` × BASELINE (CI perf gate), 2 on unreadable inputs.
    """
    import argparse

    ap = argparse.ArgumentParser(prog="repro.metrics.bench",
                                 description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="cmd", required=True)
    cmp_p = sub.add_parser(
        "compare", help="compare a fresh BENCH_engine.json against a baseline"
    )
    cmp_p.add_argument("current", help="freshly recorded BENCH_engine.json")
    cmp_p.add_argument("baseline", help="committed baseline to compare against")
    cmp_p.add_argument("--tolerance", type=float, default=0.75,
                       help="fail when a rate drops below this fraction of "
                            "baseline (default 0.75 = >25%% regression)")
    args = ap.parse_args(argv)

    current = load_baseline(args.current)
    if current is None:
        print(f"error: cannot read current results from {args.current}")
        return 2
    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"error: cannot read baseline from {args.baseline}")
        return 2
    problems = compare_to_baseline(current, baseline,
                                   tolerance=args.tolerance)
    compared = sorted(
        name for name in current.get("results", {})
        if name in baseline.get("results", {})
    )
    if problems:
        print(f"perf regression vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%}):")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"perf ok: {len(compared)} benchmark(s) within "
          f"{args.tolerance:.0%} of baseline ({', '.join(compared)})")
    return 0


def _atomic_write_json(path: str, doc: dict) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(main())
