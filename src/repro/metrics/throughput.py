"""Binned throughput time series and starvation measurement.

A :class:`ThroughputMonitor` hooks an egress port's transmit-completion
callback and bins transmitted bytes per category (e.g., per transport or
per sub-flow). :func:`starvation_fraction` computes the paper's starvation
metric — the fraction of time a transport's bandwidth sits below 20% of
link capacity (Figure 9c).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro.net.packet import Packet
from repro.net.port import EgressPort
from repro.sim.units import SECONDS

#: maps a transmitted packet to a category name (or None to ignore it)
Classifier = Callable[[Packet], Optional[str]]


class ThroughputMonitor:
    """Per-category transmitted bytes in fixed time bins on one port."""

    def __init__(self, port: EgressPort, classify: Classifier,
                 bin_ns: int = 1_000_000) -> None:
        if bin_ns <= 0:
            raise ValueError("bin size must be positive")
        self.port = port
        self.classify = classify
        self.bin_ns = bin_ns
        self.bins: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        port.monitors.append(self._on_tx)

    def _on_tx(self, now_ns: int, pkt: Packet) -> None:
        category = self.classify(pkt)
        if category is None:
            return
        self.bins[category][now_ns // self.bin_ns] += pkt.size

    # ------------------------------------------------------------ queries

    def categories(self) -> List[str]:
        return sorted(self.bins)

    def total_bytes(self, category: str) -> int:
        return sum(self.bins[category].values())

    def series_gbps(self, category: str, until_ns: int) -> List[float]:
        """Throughput per bin in Gbit/s from t=0 to ``until_ns``."""
        n_bins = max(1, until_ns // self.bin_ns)
        out = []
        bins = self.bins.get(category, {})
        for b in range(n_bins):
            bits = bins.get(b, 0) * 8
            out.append(bits / self.bin_ns)  # bits per ns == Gbit/s
        return out

    def utilization(self, until_ns: int) -> float:
        """All-category bytes transmitted over capacity."""
        total_bits = 8 * sum(self.total_bytes(c) for c in self.bins)
        capacity_bits = self.port.rate_bps * until_ns / SECONDS
        return total_bits / capacity_bits if capacity_bits > 0 else 0.0


def starvation_fraction(series_gbps: List[float], capacity_gbps: float,
                        threshold: float = 0.2,
                        active_only: bool = True) -> float:
    """Fraction of bins where throughput < ``threshold`` * capacity.

    With ``active_only`` the window is clipped to [first, last] nonzero bin,
    so a flow that finished early is not counted as starved afterwards.
    """
    if not series_gbps:
        return 0.0
    lo, hi = 0, len(series_gbps)
    if active_only:
        nonzero = [i for i, v in enumerate(series_gbps) if v > 0]
        if not nonzero:
            return 1.0
        lo, hi = nonzero[0], nonzero[-1] + 1
    window = series_gbps[lo:hi]
    floor = threshold * capacity_gbps
    return sum(1 for v in window if v < floor) / len(window)
