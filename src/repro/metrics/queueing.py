"""Periodic queue-occupancy sampling (the §6.2 'Bounded queue' numbers).

Kept as a tiny standalone helper for scripts that want two lists and a
percentile. Anything larger — multiple ports, export, bounded storage,
experiment integration — should use :mod:`repro.metrics.telemetry`, which
the experiment runner itself is built on.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.queues import PacketQueue
    from repro.sim.engine import Simulator


class QueueSampler:
    """Samples one queue's total and red-byte occupancy on a fixed period."""

    def __init__(self, sim: "Simulator", queue: "PacketQueue",
                 period_ns: int = 100_000, until_ns: int = 0) -> None:
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.queue = queue
        self.period_ns = period_ns
        self.until_ns = until_ns
        self.samples_bytes: List[int] = []
        self.samples_red: List[int] = []
        self._event = sim.every(period_ns, self._tick,
                                until=until_ns or None)

    def _tick(self) -> None:
        self.samples_bytes.append(self.queue.byte_count)
        self.samples_red.append(self.queue.red_bytes)

    def stop(self) -> None:
        self._event.cancel()

    # ------------------------------------------------------------ queries

    def avg_kb(self) -> float:
        return float(np.mean(self.samples_bytes)) / 1000 if self.samples_bytes else 0.0

    def p90_kb(self) -> float:
        if not self.samples_bytes:
            return 0.0
        return float(np.percentile(self.samples_bytes, 90)) / 1000

    def max_kb(self) -> float:
        return max(self.samples_bytes, default=0) / 1000

    def avg_red_kb(self) -> float:
        return float(np.mean(self.samples_red)) / 1000 if self.samples_red else 0.0

    def p90_red_kb(self) -> float:
        if not self.samples_red:
            return 0.0
        return float(np.percentile(self.samples_red, 90)) / 1000
