"""Flow-completion-time records and summaries.

The paper's two headline metrics (§6.2): overall *average* FCT (bandwidth
utilization) and *99th-percentile FCT of small flows* (<100 kB — tail
latency), broken out by traffic group (legacy vs upgraded) for the
coexistence figures (12, 13).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.transports.base import FlowSpec, FlowStats


@dataclass
class FlowRecord:
    """One completed (or censored) flow."""

    flow_id: int
    scheme: str
    group: str      # "legacy" | "new"
    role: str       # "bg" | "fg"
    size_bytes: int
    start_ns: int
    fct_ns: int     # -1 when the flow did not finish before the horizon
    timeouts: int = 0
    retransmissions: int = 0
    proactive_retransmissions: int = 0
    credits_sent: int = 0
    credits_wasted: int = 0
    duplicate_bytes: int = 0
    max_reorder_bytes: int = 0
    proactive_bytes: int = 0
    reactive_bytes: int = 0

    @property
    def completed(self) -> bool:
        return self.fct_ns >= 0

    @classmethod
    def from_flow(cls, spec: FlowSpec, stats: FlowStats) -> "FlowRecord":
        return cls(
            flow_id=spec.flow_id,
            scheme=spec.scheme,
            group=spec.group,
            role=spec.role,
            size_bytes=spec.size_bytes,
            start_ns=stats.start_ns,
            fct_ns=stats.fct_ns() if stats.completed else -1,
            timeouts=stats.timeouts,
            retransmissions=stats.retransmissions,
            proactive_retransmissions=stats.proactive_retransmissions,
            credits_sent=stats.credits_sent,
            credits_wasted=stats.credits_wasted,
            duplicate_bytes=stats.duplicate_bytes,
            max_reorder_bytes=stats.max_reorder_bytes,
            proactive_bytes=stats.proactive_bytes,
            reactive_bytes=stats.reactive_bytes,
        )


@dataclass
class FctSummary:
    """Aggregate FCT statistics over a set of records."""

    count: int
    avg_ms: float
    p50_ms: float
    p99_ms: float
    stddev_ms: float
    max_ms: float
    timeouts: int
    #: flows matching the filters that never finished inside the horizon —
    #: they contribute nothing to the statistics above, so a non-zero
    #: count flags the percentiles as censoring-biased (a scheme that
    #: strands its slow flows looks faster exactly because of them)
    censored: int = 0

    @classmethod
    def empty(cls, censored: int = 0) -> "FctSummary":
        return cls(0, float("nan"), float("nan"), float("nan"),
                   float("nan"), float("nan"), 0, censored)


def summarize(records: Iterable[FlowRecord],
              small_cutoff_bytes: Optional[int] = None,
              group: Optional[str] = None,
              role: Optional[str] = None) -> FctSummary:
    """Summarize completed flows matching the filters.

    Unfinished flows matching the same filters are counted in
    ``censored`` rather than silently dropped.
    """
    sel: List[FlowRecord] = []
    censored = 0
    for r in records:
        if small_cutoff_bytes is not None and r.size_bytes >= small_cutoff_bytes:
            continue
        if group is not None and r.group != group:
            continue
        if role is not None and r.role != role:
            continue
        if not r.completed:
            censored += 1
            continue
        sel.append(r)
    if not sel:
        return FctSummary.empty(censored=censored)
    fcts_ms = np.array([r.fct_ns for r in sel], dtype=float) / 1e6
    return FctSummary(
        count=len(sel),
        avg_ms=float(np.mean(fcts_ms)),
        p50_ms=float(np.percentile(fcts_ms, 50)),
        p99_ms=float(np.percentile(fcts_ms, 99)),
        stddev_ms=float(np.std(fcts_ms)),
        max_ms=float(np.max(fcts_ms)),
        timeouts=sum(r.timeouts for r in sel),
        censored=censored,
    )


def completion_ratio(records: Iterable[FlowRecord]) -> float:
    records = list(records)
    if not records:
        return float("nan")
    return sum(1 for r in records if r.completed) / len(records)


# ------------------------------------------------------------------ packing

#: FlowRecord integer fields, in declaration order.
_PACK_INT_FIELDS = (
    "flow_id", "size_bytes", "start_ns", "fct_ns", "timeouts",
    "retransmissions", "proactive_retransmissions", "credits_sent",
    "credits_wasted", "duplicate_bytes", "max_reorder_bytes",
    "proactive_bytes", "reactive_bytes",
)

#: FlowRecord label (string) fields; low-cardinality, vocab-encoded.
_PACK_LABEL_FIELDS = ("scheme", "group", "role")


class PackedFlowRecords:
    """A list of :class:`FlowRecord` as typed columns.

    A sweep worker returns tens of thousands of records per config; as a
    list of dataclasses they pickle as one object graph per record. Packed,
    the same data is 13 ``array('q')`` columns plus three small
    vocab-encoded label columns — a single contiguous buffer each, which
    both the worker→parent pickle hop and the on-disk experiment cache
    move at a fraction of the cost. ``unpack`` reproduces the records
    exactly (all fields are ints or interned label strings).
    """

    __slots__ = ("count", "columns", "label_vocabs", "label_codes")

    def __init__(self, count, columns, label_vocabs, label_codes) -> None:
        self.count = count
        #: field name -> array('q') of per-record values
        self.columns = columns
        #: field name -> list of distinct label strings
        self.label_vocabs = label_vocabs
        #: field name -> array('H') of indices into the field's vocab
        self.label_codes = label_codes

    def __len__(self) -> int:
        return self.count

    @classmethod
    def pack(cls, records: List[FlowRecord]) -> "PackedFlowRecords":
        columns = {
            name: array("q", (getattr(r, name) for r in records))
            for name in _PACK_INT_FIELDS
        }
        label_vocabs = {}
        label_codes = {}
        for name in _PACK_LABEL_FIELDS:
            vocab: List[str] = []
            index = {}
            codes = array("H")
            for r in records:
                label = getattr(r, name)
                code = index.get(label)
                if code is None:
                    code = index[label] = len(vocab)
                    vocab.append(label)
                codes.append(code)
            label_vocabs[name] = vocab
            label_codes[name] = codes
        return cls(len(records), columns, label_vocabs, label_codes)

    def unpack(self) -> List[FlowRecord]:
        cols = [self.columns[name] for name in _PACK_INT_FIELDS]
        schemes = [self.label_vocabs["scheme"][c]
                   for c in self.label_codes["scheme"]]
        groups = [self.label_vocabs["group"][c]
                  for c in self.label_codes["group"]]
        roles = [self.label_vocabs["role"][c] for c in self.label_codes["role"]]
        return [
            FlowRecord(
                flow_id=fid, scheme=scheme, group=group, role=role,
                size_bytes=size, start_ns=start, fct_ns=fct,
                timeouts=to, retransmissions=rtx,
                proactive_retransmissions=prtx, credits_sent=cs,
                credits_wasted=cw, duplicate_bytes=dup,
                max_reorder_bytes=reo, proactive_bytes=pb, reactive_bytes=rb,
            )
            for (fid, size, start, fct, to, rtx, prtx, cs, cw, dup, reo,
                 pb, rb), scheme, group, role
            in zip(zip(*cols), schemes, groups, roles)
        ]
