"""Packet tracing: per-flow event timelines for debugging and analysis.

A :class:`PacketTracer` taps egress-port transmit completions across a set
of nodes and records (time, port, kind, sub-flow, seq) tuples for chosen
flows — the moral equivalent of ns-2's trace files, scoped to keep memory
bounded. Useful for post-mortems ("where did segment 17's retransmission
travel?") and for the timeline assertions in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, TYPE_CHECKING

from repro.net.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass
class TraceEvent:
    time_ns: int
    port: str
    kind: str
    flow_id: int
    subflow: int
    seq: int
    flow_seq: int
    size: int
    ce: bool

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        mark = " CE" if self.ce else ""
        return (f"{self.time_ns / 1e6:10.4f}ms {self.port:<18} "
                f"{self.kind:<14} flow={self.flow_id} sub={self.subflow} "
                f"seq={self.seq} fseq={self.flow_seq}{mark}")


class PacketTracer:
    """Records every transmit completion of the watched flows.

    Installing a tracer forces every watched port onto its exact-tx-end
    slow path, and a hook left behind would observe recycled pooled packets
    whose fields belong to a *different* flow by the time it fires. Always
    :meth:`close` the tracer when done with it — or use it as a context
    manager, which uninstalls the hooks on exit:

    >>> with PacketTracer(topo.nodes()) as tracer:
    ...     sim.run(until=horizon)
    >>> tracer.path_of(1, 0)   # events remain queryable after close
    """

    def __init__(self, nodes: Iterable["Node"],
                 flow_ids: Optional[Iterable[int]] = None,
                 max_events: int = 1_000_000) -> None:
        self.flow_ids: Optional[Set[int]] = (
            set(flow_ids) if flow_ids is not None else None
        )
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.overflowed = False
        self._hooks = []  # (port, hook) pairs, for uninstall
        for node in nodes:
            for port in node.ports.values():
                hook = self._make_hook(port.name)
                port.monitors.append(hook)
                self._hooks.append((port, hook))

    def close(self) -> None:
        """Uninstall every port hook. Idempotent; recorded events stay."""
        for port, hook in self._hooks:
            try:
                port.monitors.remove(hook)
            except ValueError:  # someone else already cleared the monitors
                pass
        self._hooks.clear()

    def __enter__(self) -> "PacketTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _make_hook(self, port_name: str):
        def hook(now_ns: int, pkt: Packet) -> None:
            if self.flow_ids is not None and pkt.flow_id not in self.flow_ids:
                return
            if len(self.events) >= self.max_events:
                self.overflowed = True
                return
            self.events.append(TraceEvent(
                now_ns, port_name, PacketKind(pkt.kind).name,
                pkt.flow_id, pkt.subflow, pkt.seq, pkt.flow_seq,
                pkt.size, pkt.ce,
            ))

        return hook

    # ------------------------------------------------------------ queries

    def for_flow(self, flow_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.flow_id == flow_id]

    def of_kind(self, kind: PacketKind) -> List[TraceEvent]:
        name = kind.name
        return [e for e in self.events if e.kind == name]

    def path_of(self, flow_id: int, flow_seq: int,
                subflow: Optional[int] = None) -> List[str]:
        """Ordered ports a given data segment traversed."""
        return [
            e.port
            for e in self.events
            if e.flow_id == flow_id and e.flow_seq == flow_seq
            and e.kind == "DATA"
            and (subflow is None or e.subflow == subflow)
        ]

    def dump(self, limit: int = 50) -> str:
        lines = [str(e) for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
