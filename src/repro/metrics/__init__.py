"""Measurement: FCT records, throughput time series, queue occupancy,
benchmark baselines."""

from repro.metrics.bench import (
    compare_to_baseline,
    load_baseline,
    record_bench,
)
from repro.metrics.fct import FctSummary, FlowRecord, summarize
from repro.metrics.queueing import QueueSampler
from repro.metrics.telemetry import (
    RingBuffer,
    TelemetryConfig,
    TelemetrySampler,
    TelemetrySeries,
)
from repro.metrics.throughput import ThroughputMonitor, starvation_fraction
from repro.metrics.tracing import PacketTracer, TraceEvent

__all__ = [
    "compare_to_baseline",
    "load_baseline",
    "record_bench",
    "FctSummary",
    "FlowRecord",
    "summarize",
    "QueueSampler",
    "RingBuffer",
    "TelemetryConfig",
    "TelemetrySampler",
    "TelemetrySeries",
    "ThroughputMonitor",
    "starvation_fraction",
    "PacketTracer",
    "TraceEvent",
]
