"""Measurement: FCT records, throughput time series, queue occupancy."""

from repro.metrics.fct import FctSummary, FlowRecord, summarize
from repro.metrics.queueing import QueueSampler
from repro.metrics.throughput import ThroughputMonitor, starvation_fraction
from repro.metrics.tracing import PacketTracer, TraceEvent

__all__ = [
    "FctSummary",
    "FlowRecord",
    "summarize",
    "QueueSampler",
    "ThroughputMonitor",
    "starvation_fraction",
    "PacketTracer",
    "TraceEvent",
]
