"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table; floats rendered with 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
