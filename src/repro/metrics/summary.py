"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table; floats rendered with 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def fault_annotation(result) -> str:
    """Short degradation tag for an ExperimentResult, or "" when clean.

    Figures and tables append this to their titles so a run that executed
    under injected faults — or was cut short by a watchdog — can never be
    mistaken for a clean reproduction. Duck-typed (anything with
    ``aborted``/``abort_reason``/``fault_counters``) to keep metrics free
    of experiment-layer imports.
    """
    parts = []
    if getattr(result, "aborted", False):
        reason = getattr(result, "abort_reason", "") or "watchdog"
        parts.append(f"ABORTED: {reason}")
    fc = getattr(result, "fault_counters", None)
    if fc is not None and fc.any_faults:
        detail = [f"drops={fc.injected_drops}"]
        if fc.corrupted:
            detail.append(f"corrupted={fc.corrupted}")
        if fc.discarded_in_flight or fc.dropped_link_down:
            detail.append(
                f"link-down losses={fc.discarded_in_flight + fc.dropped_link_down}")
        if fc.reroutes:
            detail.append(f"reroutes={fc.reroutes}")
        if fc.link_failures:
            detail.append(f"failures={fc.link_failures}")
        parts.append("faults " + " ".join(detail))
    return f" [{'; '.join(parts)}]" if parts else ""


def degraded_title(title: str, result) -> str:
    """``title`` plus the fault annotation for ``result`` (if any)."""
    return title + fault_annotation(result)
