"""Fault injection and resilient execution (paper §4.3).

FlexPass's robustness claim is that proactive data losses from
*non-congestion* causes — switch/link failures, corrupted frames — are
recovered by the reactive sub-flow and proactive retransmission. A clean
simulated fabric never exercises that path, so this package provides:

* **Loss models** (:mod:`repro.faults.models`): seeded Bernoulli and
  Gilbert-Elliott burst loss, plus predicate- and kind-selective filters.
* **FaultyLink** (:mod:`repro.faults.link`): a library-grade wrapper that
  attaches loss/corruption models to any :class:`repro.net.link.Link`,
  tracks in-flight packets, and supports up/down state.
* **Scheduled failures** (:mod:`repro.faults.events`):
  :class:`LinkDownEvent`/:class:`LinkUpEvent` on the simulator clock with
  ECMP route recomputation and in-flight discard.
* **FaultPlan** (:mod:`repro.faults.plan`): a picklable description of all
  of the above, carried on an ``ExperimentConfig`` so any scenario or
  figure can run under faults, seeded via ``RngRegistry`` for bit-for-bit
  reproducibility.
"""

from repro.faults.counters import FaultCounters
from repro.faults.events import LinkDownEvent, LinkUpEvent, schedule_failure_events
from repro.faults.link import FaultyLink, LossyLink, splice, splice_lossy
from repro.faults.models import (
    KIND_ALIASES,
    BernoulliLoss,
    GilbertElliottLoss,
    KindSelectiveLoss,
    LossModel,
    PredicateLoss,
    kinds_from_names,
)
from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    LinkFailureSpec,
    LinkLossSpec,
    SiteFailureSpec,
)

__all__ = [
    "BernoulliLoss",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "FaultyLink",
    "GilbertElliottLoss",
    "KIND_ALIASES",
    "KindSelectiveLoss",
    "LinkDownEvent",
    "LinkFailureSpec",
    "LinkLossSpec",
    "LinkUpEvent",
    "LossModel",
    "LossyLink",
    "PredicateLoss",
    "SiteFailureSpec",
    "kinds_from_names",
    "schedule_failure_events",
    "splice",
    "splice_lossy",
]
