"""FaultPlan: a picklable, seeded description of every fault in a run.

The plan is plain data (strings, numbers, tuples) so it rides on
:class:`repro.experiments.config.ExperimentConfig` through a process pool
unchanged. Applying it to a built topology produces a
:class:`FaultInjector` — the live objects (spliced links, scheduled
events) plus one shared :class:`repro.faults.counters.FaultCounters`.

Randomness comes from named ``RngRegistry`` streams keyed by spec index
and port name, so two runs with the same seed produce the same drop
pattern bit for bit, and adding a fault spec never perturbs the traffic
generator's streams.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.faults.counters import FaultCounters
from repro.faults.events import LinkDownEvent, LinkUpEvent, schedule_failure_events
from repro.faults.link import FaultyLink, splice
from repro.faults.models import (
    BernoulliLoss,
    GilbertElliottLoss,
    KindSelectiveLoss,
    LossModel,
    kinds_from_names,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Topology
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class LinkLossSpec:
    """Stochastic loss (or corruption) on every link matching a pattern.

    ``links`` is an ``fnmatch`` glob over directed port names
    (``"src->dst"``): ``"*"`` hits every link, ``"tor*->agg*"`` the ToR
    uplinks, ``"s0->swL"`` one specific direction.
    """

    links: str = "*"
    model: str = "bernoulli"  # "bernoulli" | "gilbert"
    rate: float = 0.01        # Bernoulli p, or Gilbert-Elliott bad-state loss
    #: Gilbert-Elliott chain: burst start / end probabilities per packet
    burst_start: float = 0.001
    burst_end: float = 0.1
    #: loss probability while in the good state (usually 0)
    rate_good: float = 0.0
    #: restrict to packet kinds ("data", "credit", ...); empty = all kinds
    kinds: Tuple[str, ...] = ()
    #: corrupt instead of silently drop: the packet still crosses the wire
    #: and is counted+discarded at the receiving NIC
    corrupt: bool = False

    def build_model(self, rng) -> LossModel:
        if self.model == "bernoulli":
            model: LossModel = BernoulliLoss(self.rate, rng)
        elif self.model == "gilbert":
            model = GilbertElliottLoss(
                self.burst_start, self.burst_end, rng,
                loss_good=self.rate_good, loss_bad=self.rate,
            )
        else:
            raise ValueError(f"unknown loss model {self.model!r}")
        if self.kinds:
            model = KindSelectiveLoss(model, kinds_from_names(self.kinds))
        return model


@dataclass(frozen=True)
class LinkFailureSpec:
    """The a<->b link goes down at ``down_ns`` and (optionally) comes back
    at ``up_ns``. Nodes are addressed by name."""

    a: str
    b: str
    down_ns: int
    up_ns: Optional[int] = None

    def events(self) -> List[object]:
        events: List[object] = [LinkDownEvent(self.down_ns, self.a, self.b)]
        if self.up_ns is not None:
            if self.up_ns <= self.down_ns:
                raise ValueError(
                    f"link {self.a}<->{self.b}: up_ns {self.up_ns} must be "
                    f"after down_ns {self.down_ns}"
                )
            events.append(LinkUpEvent(self.up_ns, self.a, self.b))
        return events


@dataclass(frozen=True)
class SiteFailureSpec:
    """Every link incident to an ontology group — or one named node —
    fails at ``down_ns`` (optionally recovering at ``up_ns``).

    ``target`` names a group published on ``Topology.node_groups`` by the
    declarative fabric builder ("site:DC-SYD-01", "region:NSW"; the bare
    site/region name also resolves), or any single node. Expansion needs
    the built topology, so :meth:`events` takes it — unknown targets fail
    at setup, matching the rest of the fault machinery.
    """

    target: str
    down_ns: int
    up_ns: Optional[int] = None

    def _member_names(self, topo: "Topology") -> Tuple[str, ...]:
        groups = topo.node_groups
        for key in (self.target, f"site:{self.target}",
                    f"region:{self.target}"):
            if key in groups:
                return groups[key]
        try:
            return (topo.node_by_name(self.target).name,)
        except KeyError:
            known = ", ".join(sorted(groups)) or "none"
            raise ValueError(
                f"site failure target {self.target!r} is neither a node "
                f"nor a topology group (groups: {known})") from None

    def events(self, topo: "Topology") -> List[object]:
        if self.up_ns is not None and self.up_ns <= self.down_ns:
            raise ValueError(
                f"site {self.target!r}: up_ns {self.up_ns} must be after "
                f"down_ns {self.down_ns}")
        members = set(self._member_names(topo))
        events: List[object] = []
        seen = set()
        for name in sorted(members):
            node = topo.node_by_name(name)
            for peer in topo.neighbors(node):
                edge = (min(name, peer.name), max(name, peer.name))
                if edge in seen:
                    continue
                seen.add(edge)
                events.append(LinkDownEvent(self.down_ns, edge[0], edge[1]))
                if self.up_ns is not None:
                    events.append(LinkUpEvent(self.up_ns, edge[0], edge[1]))
        if not events:
            raise ValueError(
                f"site failure target {self.target!r} has no incident links")
        return events


@dataclass(frozen=True)
class FaultPlan:
    """Everything the fault subsystem will do to one run."""

    losses: Tuple[LinkLossSpec, ...] = ()
    failures: Tuple[LinkFailureSpec, ...] = ()
    #: whole-site/region (or single-node) outages, by ontology name
    site_failures: Tuple[SiteFailureSpec, ...] = ()
    #: RngRegistry stream-name prefix (change to decorrelate two plans)
    stream_prefix: str = "faults"

    @property
    def empty(self) -> bool:
        return not self.losses and not self.failures and not self.site_failures

    def apply(self, sim: "Simulator", topo: "Topology",
              rng: "RngRegistry") -> "FaultInjector":
        """Splice loss models and schedule failures; returns the injector."""
        counters = FaultCounters()
        spliced: List[FaultyLink] = []
        # Deterministic port order: sort by name, independent of dict order.
        ports = sorted(topo.all_ports(), key=lambda p: p.name)
        for idx, spec in enumerate(self.losses):
            matched = False
            for port in ports:
                if not fnmatch.fnmatchcase(port.name, spec.links):
                    continue
                matched = True
                stream = rng.stream(f"{self.stream_prefix}.{idx}.{port.name}")
                model = spec.build_model(stream)
                if spec.corrupt:
                    link = splice(port, corruption=model, counters=counters)
                else:
                    link = splice(port, loss=model, counters=counters)
                spliced.append(link)
            if not matched:
                raise ValueError(
                    f"fault spec {idx}: pattern {spec.links!r} matches no link"
                )
        events: List[object] = []
        for failure in self.failures:
            events.extend(failure.events())
        for site_failure in self.site_failures:
            events.extend(site_failure.events(topo))
        schedule_failure_events(sim, topo, events, counters)
        return FaultInjector(plan=self, counters=counters, links=spliced)


@dataclass
class FaultInjector:
    """Live fault state of one run: the applied plan, shared counters, and
    every spliced link (so callers can inspect per-link state)."""

    plan: FaultPlan
    counters: FaultCounters
    links: List[FaultyLink] = field(default_factory=list)
