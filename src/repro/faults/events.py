"""Scheduled link failure/repair events with ECMP rerouting.

A :class:`LinkDownEvent` at time *t* takes both directions of the a<->b
link down: packets in flight on the cable are destroyed, packets later
transmitted into the dead link are eaten, and every switch's ECMP
next-hop tables are recomputed over the surviving edges (the control-plane
reconvergence a real fabric performs). :class:`LinkUpEvent` reverses all
of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.faults.counters import FaultCounters
from repro.faults.link import FaultyLink, splice

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.net.topology import Topology
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class LinkDownEvent:
    """At ``time_ns``, the (bidirectional) link between nodes ``a`` and
    ``b`` — addressed by node *name* — fails."""

    time_ns: int
    a: str
    b: str


@dataclass(frozen=True)
class LinkUpEvent:
    """At ``time_ns``, the a<->b link comes back and routes reconverge."""

    time_ns: int
    a: str
    b: str


def schedule_failure_events(
    sim: "Simulator",
    topo: "Topology",
    events: List[object],
    counters: Optional[FaultCounters] = None,
) -> FaultCounters:
    """Wire Link{Down,Up}Events onto the simulator clock.

    Node names are resolved and links spliced eagerly, so a misaddressed
    plan fails at setup time, not hours into a sweep.
    """
    counters = counters if counters is not None else FaultCounters()
    for event in events:
        a = topo.node_by_name(event.a)
        b = topo.node_by_name(event.b)
        # Both directions of the cable share the run's fault counters.
        forward = splice(topo.port(a, b), counters=counters)
        reverse = splice(topo.port(b, a), counters=counters)
        if isinstance(event, LinkDownEvent):
            sim.at(event.time_ns, _apply_down, topo, a, b,
                   forward, reverse, counters)
        elif isinstance(event, LinkUpEvent):
            sim.at(event.time_ns, _apply_up, topo, a, b,
                   forward, reverse, counters)
        else:
            raise TypeError(f"not a failure event: {event!r}")
    return counters


def _apply_down(
    topo: "Topology", a: "Node", b: "Node",
    forward: FaultyLink, reverse: FaultyLink, counters: FaultCounters,
) -> None:
    forward.fail()
    reverse.fail()
    topo.set_edge_state(a, b, up=False)
    topo.recompute_routes()
    counters.link_failures += 1
    counters.reroutes += 1


def _apply_up(
    topo: "Topology", a: "Node", b: "Node",
    forward: FaultyLink, reverse: FaultyLink, counters: FaultCounters,
) -> None:
    forward.restore()
    reverse.restore()
    topo.set_edge_state(a, b, up=True)
    topo.recompute_routes()
    counters.link_restores += 1
    counters.reroutes += 1
