"""Per-packet loss models.

Each model answers one question — "does this packet die here?" — so they
compose: :class:`KindSelectiveLoss` narrows any model to specific packet
kinds (data-only, credit-only), which is how the §4.3 experiments separate
proactive-data loss from credit loss.

Models draw from a ``numpy.random.Generator`` handed in by the caller
(normally a named :class:`repro.sim.rng.RngRegistry` stream), so a seeded
run replays the exact same drop pattern.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, TYPE_CHECKING

from repro.net.packet import PacketKind

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.net.packet import Packet


class LossModel:
    """Base class: decides per packet whether it is lost."""

    def should_drop(self, pkt: "Packet") -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class BernoulliLoss(LossModel):
    """Independent loss: each packet dies with probability ``p``."""

    def __init__(self, p: float, rng: "np.random.Generator") -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = p
        self._rng = rng

    def should_drop(self, pkt: "Packet") -> bool:
        return self._rng.random() < self.p


class GilbertElliottLoss(LossModel):
    """Two-state Markov burst loss (Gilbert-Elliott).

    The chain steps once per packet: in the *good* state packets are lost
    with ``loss_good`` (usually 0), in the *bad* state with ``loss_bad``
    (usually 1). ``p_good_to_bad`` / ``p_bad_to_good`` set burst frequency
    and mean burst length (1 / p_bad_to_good packets) — the loss shape a
    flapping link or failing optic produces, which independent Bernoulli
    drops cannot.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        rng: "np.random.Generator",
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = rng
        self.bad = False
        self.bursts = 0  # good -> bad transitions, for diagnostics

    def should_drop(self, pkt: "Packet") -> bool:
        rng = self._rng
        if self.bad:
            if rng.random() < self.p_bad_to_good:
                self.bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self.bad = True
                self.bursts += 1
        loss = self.loss_bad if self.bad else self.loss_good
        if loss >= 1.0:
            return True
        if loss <= 0.0:
            return False
        return rng.random() < loss


class PredicateLoss(LossModel):
    """Wraps an arbitrary ``pkt -> bool`` predicate (targeted test drops)."""

    def __init__(self, should_drop: Callable[["Packet"], bool]) -> None:
        self._predicate = should_drop

    def should_drop(self, pkt: "Packet") -> bool:
        return self._predicate(pkt)


class KindSelectiveLoss(LossModel):
    """Applies an inner model only to packets of the given kinds.

    Packets of other kinds pass untouched *and do not advance* the inner
    model's randomness, so e.g. a credit-only model sees the same drop
    sequence regardless of how much data traffic interleaves.
    """

    def __init__(self, inner: LossModel, kinds: Iterable[PacketKind]) -> None:
        self.inner = inner
        self.kinds: FrozenSet[PacketKind] = frozenset(kinds)
        if not self.kinds:
            raise ValueError("KindSelectiveLoss needs at least one packet kind")

    def should_drop(self, pkt: "Packet") -> bool:
        if pkt.kind not in self.kinds:
            return False
        return self.inner.should_drop(pkt)


#: Human-friendly names for kind selections (CLI / FaultPlan specs).
KIND_ALIASES = {
    "data": frozenset({PacketKind.DATA}),
    "ack": frozenset({PacketKind.ACK}),
    "credit": frozenset({PacketKind.CREDIT}),
    "credit_request": frozenset({PacketKind.CREDIT_REQUEST}),
    "credit_stop": frozenset({PacketKind.CREDIT_STOP}),
    "grant": frozenset({PacketKind.GRANT}),
    "control": frozenset({PacketKind.CREDIT_REQUEST, PacketKind.CREDIT_STOP,
                          PacketKind.GRANT}),
    "all": frozenset(PacketKind),
}


def kinds_from_names(names: Iterable[str]) -> FrozenSet[PacketKind]:
    """Resolve alias names ("data", "credit", ...) to a set of kinds."""
    kinds: FrozenSet[PacketKind] = frozenset()
    for name in names:
        try:
            kinds |= KIND_ALIASES[name.lower()]
        except KeyError:
            raise ValueError(
                f"unknown packet kind {name!r}; choose from {sorted(KIND_ALIASES)}"
            ) from None
    return kinds
