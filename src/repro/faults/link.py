"""FaultyLink: attach loss/corruption models and up/down state to any Link.

The wrapper mirrors :class:`repro.net.link.Link`'s interface (``carry``,
``sim``, ``dst``, ``delay_ns``, delivery counters) so an
:class:`repro.net.port.EgressPort` cannot tell the difference — splicing is
one attribute assignment. Unlike the plain link, a FaultyLink schedules its
own delivery events and remembers their handles, so a link failure can
discard packets *mid-propagation* (the in-flight bytes a real cable cut
destroys) instead of only blocking new transmissions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.faults.counters import FaultCounters
from repro.faults.models import LossModel, PredicateLoss
from repro.net.packet import free_packet

if TYPE_CHECKING:  # pragma: no cover
    from typing import Callable

    from repro.net.link import Link
    from repro.net.packet import Packet
    from repro.net.port import EgressPort
    from repro.sim.engine import EventHandle


class FaultyLink:
    """Wraps a Link with loss/corruption models and an up/down switch.

    * ``loss`` — packets matching the model vanish on the wire (silent loss,
      the §4.3 "switch failure" case).
    * ``corruption`` — packets matching the model still propagate but are
      discarded at the receiving NIC with a counter (a frame that fails CRC).
    * ``fail()`` / ``restore()`` — down links drop every new packet and
      discard anything already in flight.
    """

    def __init__(
        self,
        link: "Link",
        loss: Optional[LossModel] = None,
        corruption: Optional[LossModel] = None,
        counters: Optional[FaultCounters] = None,
        keep_dropped: bool = False,
    ) -> None:
        self.inner = link
        self.sim = link.sim
        self.dst = link.dst
        self.delay_ns = link.delay_ns
        self.loss = loss
        self.corruption = corruption
        self.counters = counters if counters is not None else FaultCounters()
        self.down = False
        self.packets_delivered = 0
        self.bytes_delivered = 0
        #: dropped packets, recorded only when ``keep_dropped`` (tests)
        self.dropped: List["Packet"] = []
        self._keep_dropped = keep_dropped
        self._in_flight: Dict[int, "EventHandle"] = {}
        self._flight_seq = 0

    # ----------------------------------------------------------------- wire

    def carry_after(self, extra_ns: int, pkt: "Packet") -> None:
        """Coalesced-TX entry point (see :meth:`repro.net.link.Link.carry_after`).

        Fault decisions must happen when the packet actually reaches the wire
        (serialization end), not at TX start — a link that fails mid-
        transmission should still destroy the frame. So instead of folding
        the propagation delay into one event, defer ``carry`` itself.
        """
        self.sim.after(extra_ns, self.carry, pkt)

    def carry(self, pkt: "Packet") -> None:
        """Propagate, lose, or corrupt one packet."""
        if self.down:
            self.counters.dropped_link_down += 1
            self._record(pkt)
            return
        if self.loss is not None and self.loss.should_drop(pkt):
            self.counters.injected_drops += 1
            self._record(pkt)
            return
        if self.corruption is not None and self.corruption.should_drop(pkt):
            # The frame occupies the wire for its full flight time and is
            # then rejected by the NIC — it consumed bandwidth but no
            # endpoint ever sees it.
            self.sim.after(self.delay_ns, self._deliver_corrupted, pkt)
            return
        token = self._flight_seq
        self._flight_seq += 1
        self._in_flight[token] = self.sim.after(
            self.delay_ns, self._deliver, token, pkt
        )

    def _deliver(self, token: int, pkt: "Packet") -> None:
        self._in_flight.pop(token, None)
        self.packets_delivered += 1
        self.bytes_delivered += pkt.size
        self.dst.receive(pkt)

    def _deliver_corrupted(self, pkt: "Packet") -> None:
        self.counters.corrupted += 1
        self._record(pkt)

    # ------------------------------------------------------------ up / down

    def fail(self) -> None:
        """Take the link down, destroying everything currently in flight."""
        if self.down:
            return
        self.down = True
        for handle in self._in_flight.values():
            # Grab the frame before cancel() clears the event args: a
            # discarded packet still has to go back to the freelist (or the
            # keep_dropped ledger) or the pool leaks one packet per discard.
            pkt = handle.args[1] if len(handle.args) == 2 else None
            handle.cancel()
            self.counters.discarded_in_flight += 1
            if pkt is not None:
                self._record(pkt)
        self._in_flight.clear()

    def restore(self) -> None:
        """Bring the link back up; subsequent packets propagate normally."""
        self.down = False

    # -------------------------------------------------------------- helpers

    def in_flight(self) -> int:
        """Packets currently propagating (for tests/diagnostics)."""
        return len(self._in_flight)

    def _record(self, pkt: "Packet") -> None:
        if self._keep_dropped:
            self.dropped.append(pkt)
        else:
            # Nothing retains the frame: recycle it (no-op for unpooled ones).
            free_packet(pkt)


class LossyLink(FaultyLink):
    """A FaultyLink driven by a plain predicate, recording what it drops.

    This is the targeted-drop helper the §4.3 recovery tests are built on
    (drop exactly segment N, drop the first credit request, ...). It lives
    in the library so test and experiment fault paths cannot drift.
    """

    def __init__(self, link: "Link", should_drop: "Callable[[Packet], bool]") -> None:
        super().__init__(link, loss=PredicateLoss(should_drop), keep_dropped=True)


def splice(
    port: "EgressPort",
    loss: Optional[LossModel] = None,
    corruption: Optional[LossModel] = None,
    counters: Optional[FaultCounters] = None,
) -> FaultyLink:
    """Wrap ``port``'s link in a FaultyLink (idempotent) and return it.

    If the port is already spliced, the existing wrapper is reused and the
    given models replace any unset ones — so loss injection and scheduled
    failures can share a single wrapper per link.
    """
    link = port.link
    if isinstance(link, FaultyLink):
        if loss is not None:
            link.loss = loss if link.loss is None else _chain(link.loss, loss)
        if corruption is not None:
            link.corruption = (corruption if link.corruption is None
                               else _chain(link.corruption, corruption))
        return link
    faulty = FaultyLink(link, loss=loss, corruption=corruption, counters=counters)
    port.link = faulty
    return faulty


def splice_lossy(port: "EgressPort", should_drop: "Callable[[Packet], bool]") -> LossyLink:
    """Wrap ``port``'s link in a predicate-driven LossyLink and return it."""
    lossy = LossyLink(port.link, should_drop)
    port.link = lossy
    return lossy


class _chain(LossModel):
    """Drop if either of two models drops (both always step, keeping each
    model's random stream independent of the other's decisions)."""

    def __init__(self, first: LossModel, second: LossModel) -> None:
        self.first = first
        self.second = second

    def should_drop(self, pkt: "Packet") -> bool:
        a = self.first.should_drop(pkt)
        b = self.second.should_drop(pkt)
        return a or b
