"""Shared fault counters, aggregated across all injection points of a run."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FaultCounters:
    """Counts every fault the injector introduced into one simulation.

    One instance is shared by all :class:`repro.faults.link.FaultyLink`
    wrappers and failure events of a run, so experiment results carry a
    single aggregate (plain picklable data).
    """

    #: packets silently dropped by a loss model (Bernoulli / Gilbert-Elliott)
    injected_drops: int = 0
    #: packets delivered corrupted and discarded at the receiving NIC
    corrupted: int = 0
    #: packets discarded mid-propagation when their link went down
    discarded_in_flight: int = 0
    #: packets transmitted into a link that was already down
    dropped_link_down: int = 0
    #: route recomputations triggered by topology changes
    reroutes: int = 0
    link_failures: int = 0
    link_restores: int = 0

    @property
    def total_losses(self) -> int:
        """Every packet the fault subsystem removed from the network."""
        return (self.injected_drops + self.corrupted
                + self.discarded_in_flight + self.dropped_link_down)

    @property
    def any_faults(self) -> bool:
        return (self.total_losses > 0 or self.link_failures > 0
                or self.link_restores > 0)
