"""FlexPass — the paper's contribution (§4).

A FlexPass flow is split into a credit-scheduled *proactive* sub-flow
(ExpressPass loop, sized to the minimum guaranteed bandwidth w_q) and an
opportunistic *reactive* sub-flow (DCTCP loop over spare bandwidth). Both
pull segments from one shared send buffer at transmission time; a per-packet
five-state machine (Figure 4) coordinates assignment, loss recovery, and
proactive retransmission. The receiver reassembles by per-flow sequence
number and discards redundant copies.
"""

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.core.segments import SegmentState, SendBuffer
from repro.core.variants import (
    Rc3SplitParams,
    Rc3SplitReceiver,
    Rc3SplitSender,
    alt_queue_params,
)

__all__ = [
    "FlexPassParams",
    "FlexPassReceiver",
    "FlexPassSender",
    "SegmentState",
    "SendBuffer",
    "Rc3SplitParams",
    "Rc3SplitReceiver",
    "Rc3SplitSender",
    "alt_queue_params",
]
