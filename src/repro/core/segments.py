"""Per-packet state machine and shared send buffer (paper Figure 4).

Every segment of a FlexPass flow is in exactly one of five states:

* ``PENDING``        — never transmitted;
* ``SENT_REACTIVE``  — last sent via the reactive sub-flow, unacknowledged;
* ``SENT_PROACTIVE`` — last sent via the proactive sub-flow, unacknowledged;
* ``LOST``           — loss detected, awaiting proactive retransmission;
* ``ACKED``          — acknowledged on either sub-flow (terminal).

Legal transitions (all others raise, which the property tests exercise):

* PENDING -> SENT_REACTIVE (reactive window opens)
* PENDING -> SENT_PROACTIVE (credit arrives)
* SENT_REACTIVE -> SENT_PROACTIVE (credit arrives: "proactive retransmission")
* SENT_REACTIVE / SENT_PROACTIVE -> LOST (loss detected)
* LOST -> SENT_PROACTIVE (credit arrives: loss recovery — never via reactive)
* any non-ACKED -> ACKED (ACK from either sub-flow)
"""

from __future__ import annotations

import enum
import heapq
from typing import List, Optional


class SegmentState(enum.IntEnum):
    PENDING = 0
    SENT_REACTIVE = 1
    SENT_PROACTIVE = 2
    LOST = 3
    ACKED = 4


_TO_PROACTIVE_OK = (
    SegmentState.PENDING,
    SegmentState.SENT_REACTIVE,
    SegmentState.LOST,
)


class Segment:
    """One MSS-sized unit of the flow."""

    __slots__ = ("idx", "payload", "state", "last_reactive_seq", "last_proactive_seq")

    def __init__(self, idx: int, payload: int) -> None:
        self.idx = idx
        self.payload = payload
        self.state = SegmentState.PENDING
        self.last_reactive_seq = -1
        self.last_proactive_seq = -1


class SendBuffer:
    """Shared send buffer with the transmission-priority rules of §4.2.

    On credit arrival, the proactive sub-flow picks, in order: a ``LOST``
    segment (fast loss recovery), then the lowest ``PENDING`` segment (new
    data), then the oldest unacked ``SENT_REACTIVE`` segment ("proactive
    retransmission" — the tail-latency optimization). The reactive sub-flow
    only ever takes ``PENDING`` segments.
    """

    def __init__(self, payloads: List[int]) -> None:
        if not payloads:
            raise ValueError("a flow needs at least one segment")
        self.segments = [Segment(i, p) for i, p in enumerate(payloads)]
        self._next_pending = 0
        self._back_pending = len(payloads) - 1
        self._lost_heap: List[int] = []
        self._reactive_heap: List[int] = []  # candidates for proactive rtx
        self.n_acked = 0

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def all_acked(self) -> bool:
        return self.n_acked == len(self.segments)

    def state_of(self, idx: int) -> SegmentState:
        return self.segments[idx].state

    # ------------------------------------------------------------- picks

    def _advance_pending(self) -> None:
        segs = self.segments
        while self._next_pending < len(segs) and (
            segs[self._next_pending].state != SegmentState.PENDING
        ):
            self._next_pending += 1

    def peek_pending(self) -> Optional[Segment]:
        """Lowest-index PENDING segment, or None."""
        self._advance_pending()
        if self._next_pending < len(self.segments):
            return self.segments[self._next_pending]
        return None

    def peek_pending_back(self) -> Optional[Segment]:
        """Highest-index PENDING segment (the RC3 variant's reactive pick)."""
        segs = self.segments
        while self._back_pending >= 0 and (
            segs[self._back_pending].state != SegmentState.PENDING
        ):
            self._back_pending -= 1
        if self._back_pending >= 0:
            return segs[self._back_pending]
        return None

    def peek_lost(self) -> Optional[Segment]:
        """Lowest-index LOST segment, or None."""
        heap = self._lost_heap
        while heap:
            seg = self.segments[heap[0]]
            if seg.state == SegmentState.LOST:
                return seg
            heapq.heappop(heap)  # stale entry
        return None

    def peek_sent_reactive(self) -> Optional[Segment]:
        """Lowest-index unacked SENT_REACTIVE segment, or None."""
        heap = self._reactive_heap
        while heap:
            seg = self.segments[heap[0]]
            if seg.state == SegmentState.SENT_REACTIVE:
                return seg
            heapq.heappop(heap)
        return None

    def has_pending_or_lost(self) -> bool:
        return self.peek_lost() is not None or self.peek_pending() is not None

    # ------------------------------------------------------- transitions

    def mark_sent_reactive(self, idx: int, reactive_seq: int) -> None:
        seg = self.segments[idx]
        if seg.state != SegmentState.PENDING:
            raise ValueError(
                f"segment {idx}: reactive sub-flow may only send PENDING "
                f"segments, found {seg.state.name}"
            )
        seg.state = SegmentState.SENT_REACTIVE
        seg.last_reactive_seq = reactive_seq
        heapq.heappush(self._reactive_heap, idx)

    def mark_sent_proactive(self, idx: int, proactive_seq: int) -> None:
        seg = self.segments[idx]
        if seg.state not in _TO_PROACTIVE_OK:
            raise ValueError(
                f"segment {idx}: cannot send via proactive from {seg.state.name}"
            )
        seg.state = SegmentState.SENT_PROACTIVE
        seg.last_proactive_seq = proactive_seq

    def mark_lost(self, idx: int) -> bool:
        """Record a detected loss. Returns False if already ACKED/LOST (a
        stale detection), True if the segment newly entered LOST."""
        seg = self.segments[idx]
        if seg.state in (SegmentState.ACKED, SegmentState.LOST):
            return False
        if seg.state == SegmentState.PENDING:
            raise ValueError(f"segment {idx}: PENDING cannot be lost")
        seg.state = SegmentState.LOST
        heapq.heappush(self._lost_heap, idx)
        return True

    def mark_acked(self, idx: int) -> bool:
        """Returns True if the segment was newly acked."""
        seg = self.segments[idx]
        if seg.state == SegmentState.ACKED:
            return False
        if seg.state == SegmentState.PENDING:
            raise ValueError(f"segment {idx}: PENDING cannot be ACKed")
        seg.state = SegmentState.ACKED
        self.n_acked += 1
        return True

    # ------------------------------------------------------------- debug

    def state_counts(self) -> dict:
        counts = {s: 0 for s in SegmentState}
        for seg in self.segments:
            counts[seg.state] += 1
        return counts
