"""FlexPass sender and receiver (§4.2).

The sender runs two control loops over one shared :class:`SendBuffer`:

* the **proactive sub-flow** transmits exactly one packet per arriving
  credit, choosing ``LOST`` > ``PENDING`` > ``SENT_REACTIVE`` (the last is
  "proactive retransmission", the tail-latency optimization);
* the **reactive sub-flow** is a DCTCP window that only ever transmits
  ``PENDING`` segments — it never retransmits; its detected losses are
  handed to the proactive sub-flow.

Each data packet carries two sequence numbers (MPTCP-style): the per-flow
sequence used for reassembly and the per-sub-flow sequence used for
congestion control and loss detection. The receiver ACKs every packet in
its sub-flow's space and discards redundant copies at reassembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.core.segments import SegmentState, SendBuffer
from repro.net.packet import (
    ACK_WIRE_BYTES,
    CREDIT_WIRE_BYTES,
    Color,
    Dscp,
    MSS,
    Packet,
    PacketKind,
    alloc_packet,
    data_wire_size,
)
from repro.transports.base import CompletionCallback, FlowSpec, FlowStats
from repro.transports.congestion import DctcpWindow, DctcpWindowParams
from repro.transports.credit_feedback import CREDIT_PER_DATA, FeedbackParams
from repro.transports.crediting import CreditPacer
from repro.transports.sequencing import ReceiveScoreboard, SenderScoreboard
from repro.transports.timers import RetransmitTimer, RttEstimator
from repro.sim.timerwheel import CoarseTimer
from repro.sim.units import GBPS, MICROS, MILLIS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle, Simulator

#: sub-flow ids carried in Packet.subflow
PROACTIVE = 0
REACTIVE = 1


@dataclass
class FlexPassParams:
    """Endpoint configuration for a FlexPass flow."""

    #: Credit rate cap at the receiver NIC: w_q * link_rate * 84/1584.
    max_credit_rate_bps: float = 0.5 * 10 * GBPS * CREDIT_PER_DATA
    update_period_ns: int = 40 * MICROS
    feedback: FeedbackParams = field(default_factory=FeedbackParams)
    request_timeout_ns: int = 4 * MILLIS
    dupthresh: int = 3
    reactive_window: DctcpWindowParams = field(default_factory=DctcpWindowParams)
    min_rto_ns: int = 4 * MILLIS
    #: DSCP/color assignment; the "alternative queueing" variant of §4.3
    #: overrides the reactive mapping (see repro.core.variants).
    proactive_data_dscp: int = Dscp.PROACTIVE_DATA
    reactive_data_dscp: int = Dscp.REACTIVE_DATA
    reactive_data_color: int = Color.RED
    ctrl_dscp: int = Dscp.FLEX_CONTROL
    ack_dscp: int = Dscp.FLEX_CONTROL
    #: ablation switches
    enable_proactive_rtx: bool = True
    enable_reactive: bool = True
    #: The paper's design needs no reactive RTO: proactive retransmission
    #: covers reactive tail losses (§4.2), which is how FlexPass achieves
    #: zero timeouts. Enable only to ablate that claim.
    enable_reactive_rto: bool = False
    #: Reactive congestion controller: "dctcp" (the paper's choice), or the
    #: §4.3-extensibility alternatives "reno" (loss-based) / "delay"
    #: (latency-based). See repro.transports.reactive_variants.
    reactive_algorithm: str = "dctcp"
    #: Credit allocation for the proactive sub-flow: "expresspass" (the
    #: paper's choice — per-flow pacing + per-link rate-limited credit
    #: queues + loss feedback) or "phost" (per-host round-robin token
    #: allocator; assumes a congestion-free core, §4.3 extensibility).
    credit_allocator: str = "expresspass"


class FlexPassSender:
    """Sender endpoint: shared send buffer + two sub-flows."""

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: FlexPassParams = FlexPassParams()) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.buffer = SendBuffer(
            [spec.segment_payload(i) for i in range(spec.n_segments)]
        )
        # reactive sub-flow machinery (its own sequence space)
        if params.reactive_algorithm == "dctcp":
            self.window = DctcpWindow(params.reactive_window)
        else:
            from repro.transports.reactive_variants import make_reactive_window

            self.window = make_reactive_window(params.reactive_algorithm)
        self.r_scoreboard = SenderScoreboard(dupthresh=params.dupthresh)
        self.r_rtt = RttEstimator(min_rto_ns=params.min_rto_ns)
        self.r_timer = RetransmitTimer(sim, self.r_rtt, self._on_reactive_timeout)
        self._rmap: List[int] = []  # reactive seq -> segment idx
        # proactive sub-flow machinery (credit space)
        self.p_scoreboard = SenderScoreboard(dupthresh=params.dupthresh)
        self.p_rtt = RttEstimator(min_rto_ns=params.min_rto_ns)
        self.p_timer = RetransmitTimer(sim, self.p_rtt, self._on_proactive_timeout)
        self._pmap: List[int] = []  # proactive seq -> segment idx
        # Coarse watchdog (4 ms): wheel-backed on the default credit plane.
        self._request_timer = CoarseTimer(sim, self._request_timeout)
        self._got_credit = False
        self.done = False
        spec.src.register_sender(spec.flow_id, self)

    # --------------------------------------------------------------- API

    def start(self) -> None:
        self.stats.start_ns = self.sim.now
        self._send_request()
        if self.params.enable_reactive:
            # Unlike the proactive sub-flow, the reactive sub-flow can use
            # the first RTT before any credit arrives (§4.2 / Aeolus [20]).
            self._pump_reactive()

    @property
    def all_acked(self) -> bool:
        return self.buffer.all_acked

    # ----------------------------------------------------- credit request

    def _send_request(self) -> None:
        req = alloc_packet(
            PacketKind.CREDIT_REQUEST, self.spec.flow_id,
            self.spec.src.id, self.spec.dst.id, CREDIT_WIRE_BYTES,
            dscp=self.params.ctrl_dscp, meta=self.spec.size_bytes,
        )
        self.spec.src.send(req)
        self._request_timer.arm(self.params.request_timeout_ns)

    def _request_timeout(self) -> None:
        if self.done or self._got_credit:
            return
        self.stats.request_retries += 1
        self._send_request()

    # -------------------------------------------------------------- demux

    def on_packet(self, pkt: Packet) -> None:
        if self.done:
            return
        if pkt.kind == PacketKind.CREDIT:
            self._on_credit(pkt)
        elif pkt.kind == PacketKind.ACK:
            if pkt.subflow == PROACTIVE:
                self._on_proactive_ack(pkt)
            else:
                self._on_reactive_ack(pkt)

    # ------------------------------------------------- proactive sub-flow

    def _on_credit(self, credit: Packet) -> None:
        self.stats.credits_received += 1
        if not self._got_credit:
            self._got_credit = True
            self._request_timer.cancel()
        seg, kind = self._pick_for_proactive()
        if seg is None:
            self.stats.credits_wasted += 1
            return
        self.stats.credited_sends += 1
        if kind == "lost":
            self.stats.retransmissions += 1
        elif kind == "reactive":
            self.stats.proactive_retransmissions += 1
        pseq = len(self._pmap)
        self._pmap.append(seg.idx)
        self.buffer.mark_sent_proactive(seg.idx, pseq)
        self.p_scoreboard.on_send(pseq, self.sim.now)
        pkt = alloc_packet(
            PacketKind.DATA, self.spec.flow_id, self.spec.src.id, self.spec.dst.id,
            data_wire_size(seg.payload), payload=seg.payload,
            dscp=self.params.proactive_data_dscp, color=Color.GREEN,
            ecn_capable=False, seq=pseq, flow_seq=seg.idx,
            subflow=PROACTIVE, sent_at=self.sim.now, meta=credit.seq,
        )
        self.stats.packets_sent += 1
        self.spec.src.send(pkt)
        self.p_timer.arm_if_idle()

    def _pick_for_proactive(self):
        """Transmission priority of §4.2: Lost > Pending > Sent-as-reactive."""
        seg = self.buffer.peek_lost()
        if seg is not None:
            return seg, "lost"
        seg = self.buffer.peek_pending()
        if seg is not None:
            return seg, "pending"
        if self.params.enable_proactive_rtx:
            seg = self.buffer.peek_sent_reactive()
            if seg is not None:
                return seg, "reactive"
        return None, ""

    def _on_proactive_ack(self, pkt: Packet) -> None:
        if pkt.meta is not None and pkt.sent_at >= 0:
            self.p_rtt.update(self.sim.now - pkt.sent_at)
        sack = pkt.sack + (pkt.seq,) if pkt.seq >= 0 else pkt.sack
        newly_acked, newly_lost = self.p_scoreboard.on_ack(pkt.ack, sack)
        for pseq in newly_acked:
            idx = self._pmap[pseq]
            seg = self.buffer.segments[idx]
            if self.buffer.mark_acked(idx) and seg.last_reactive_seq >= 0:
                # Implicit cross-sub-flow ack: the reactive copy no longer
                # needs a reactive ACK (it may have been dropped) — without
                # this, a spurious reactive RTO would fire at the flow tail.
                self.r_scoreboard.remove(seg.last_reactive_seq)
        if self.r_scoreboard.in_flight == 0:
            self.r_timer.cancel()
        for pseq in newly_lost:
            idx = self._pmap[pseq]
            seg = self.buffer.segments[idx]
            # Only the *latest* proactive copy's fate matters.
            if (seg.state == SegmentState.SENT_PROACTIVE
                    and seg.last_proactive_seq == pseq):
                self.buffer.mark_lost(idx)
        if newly_acked:
            self.p_timer.on_progress()
        if self.p_scoreboard.in_flight == 0:
            self.p_timer.cancel()
        self._after_ack()

    def _on_proactive_timeout(self) -> None:
        """§4.3 recovery timer: non-congestion proactive losses. Declare the
        outstanding copies lost and re-request credits to resume recovery."""
        if self.done or self.all_acked:
            return
        self.stats.timeouts += 1
        for pseq in self.p_scoreboard.declare_all_lost():
            idx = self._pmap[pseq]
            seg = self.buffer.segments[idx]
            if (seg.state == SegmentState.SENT_PROACTIVE
                    and seg.last_proactive_seq == pseq):
                self.buffer.mark_lost(idx)
        if self._request_timer is None:
            self._send_request()

    # -------------------------------------------------- reactive sub-flow

    def _next_reactive_segment(self):
        """Which PENDING segment the reactive sub-flow sends next. FlexPass
        takes the front; the RC3 variant overrides to take the back."""
        return self.buffer.peek_pending()

    def _pump_reactive(self) -> None:
        if not self.params.enable_reactive:
            return
        while self.r_scoreboard.in_flight < self.window.allowed_in_flight():
            seg = self._next_reactive_segment()
            if seg is None:
                break
            rseq = len(self._rmap)
            self._rmap.append(seg.idx)
            self.buffer.mark_sent_reactive(seg.idx, rseq)
            self.r_scoreboard.on_send(rseq, self.sim.now)
            pkt = alloc_packet(
                PacketKind.DATA, self.spec.flow_id,
                self.spec.src.id, self.spec.dst.id,
                data_wire_size(seg.payload), payload=seg.payload,
                dscp=self.params.reactive_data_dscp,
                color=self.params.reactive_data_color,
                ecn_capable=True, seq=rseq, flow_seq=seg.idx,
                subflow=REACTIVE, sent_at=self.sim.now, meta=-1,
            )
            self.stats.packets_sent += 1
            self.spec.src.send(pkt)
        if self.params.enable_reactive_rto and self.r_scoreboard.in_flight > 0:
            self.r_timer.arm_if_idle()

    def _on_reactive_ack(self, pkt: Packet) -> None:
        if pkt.meta is not None and pkt.sent_at >= 0:
            sample = self.sim.now - pkt.sent_at
            self.r_rtt.update(sample)
            on_rtt = getattr(self.window, "on_rtt_sample", None)
            if on_rtt is not None:
                on_rtt(float(sample))  # delay-based reactive variant
        sack = pkt.sack + (pkt.seq,) if pkt.seq >= 0 else pkt.sack
        newly_acked, newly_lost = self.r_scoreboard.on_ack(pkt.ack, sack)
        for rseq in newly_acked:
            idx = self._rmap[rseq]
            seg = self.buffer.segments[idx]
            if self.buffer.mark_acked(idx) and seg.last_proactive_seq >= 0:
                # Implicit cross-sub-flow ack (see _on_proactive_ack).
                self.p_scoreboard.remove(seg.last_proactive_seq)
            self.window.on_ack(rseq, pkt.ce, len(self._rmap))
        if self.p_scoreboard.in_flight == 0:
            self.p_timer.cancel()
        if newly_lost:
            # Cut the window per DCTCP, mark segments for proactive recovery,
            # and keep sliding the window edge (§4.2) — the scoreboard already
            # removed the lost seqs from the in-flight set.
            self.window.on_loss()
            for rseq in newly_lost:
                idx = self._rmap[rseq]
                seg = self.buffer.segments[idx]
                if (seg.state == SegmentState.SENT_REACTIVE
                        and seg.last_reactive_seq == rseq):
                    self.buffer.mark_lost(idx)
        if newly_acked and self.params.enable_reactive_rto:
            self.r_timer.on_progress()
        if self.r_scoreboard.in_flight == 0:
            self.r_timer.cancel()
        self._pump_reactive()
        self._after_ack()

    def _on_reactive_timeout(self) -> None:
        """Ablation-only backstop: the proactive sub-flow recovers reactive
        tail losses, so FlexPass needs no reactive RTO (§4.2)."""
        if self.done or self.all_acked or not self.params.enable_reactive_rto:
            return
        self.stats.timeouts += 1
        for rseq in self.r_scoreboard.declare_all_lost():
            idx = self._rmap[rseq]
            seg = self.buffer.segments[idx]
            if (seg.state == SegmentState.SENT_REACTIVE
                    and seg.last_reactive_seq == rseq):
                self.buffer.mark_lost(idx)
        self.window.on_timeout()
        self._pump_reactive()

    # ------------------------------------------------------------- common

    def _after_ack(self) -> None:
        if self.all_acked and not self.done:
            self._finish()

    def _finish(self) -> None:
        self.done = True
        self.r_timer.cancel()
        self.p_timer.cancel()
        self._request_timer.cancel()
        self.spec.src.unregister_sender(self.spec.flow_id)


class FlexPassReceiver:
    """Receiver endpoint: reassembly + per-sub-flow ACKs + credit pacing."""

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: FlexPassParams = FlexPassParams(),
                 on_complete: Optional[CompletionCallback] = None) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.on_complete = on_complete
        self.flow_board = ReceiveScoreboard()  # per-flow space: reassembly
        self.p_board = ReceiveScoreboard()     # proactive sub-flow space
        self.r_board = ReceiveScoreboard()     # reactive sub-flow space
        if params.credit_allocator == "phost":
            from repro.transports.phost_credits import PHostCreditSource

            self.pacer = PHostCreditSource(
                sim, spec.flow_id, spec.dst, spec.src.id, stats,
                params.max_credit_rate_bps,
            )
        elif params.credit_allocator == "expresspass":
            self.pacer = CreditPacer(
                sim, spec.flow_id, spec.dst, spec.src.id, stats,
                params.max_credit_rate_bps, params.update_period_ns,
                params.feedback,
            )
        else:
            raise ValueError(
                f"unknown credit allocator {params.credit_allocator!r}; "
                "choose 'expresspass' or 'phost'"
            )
        self._complete = False
        spec.dst.register_receiver(spec.flow_id, self)

    # ------------------------------------------------------------ intake

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.CREDIT_REQUEST:
            if self._complete:
                # The sender is stuck on a dropped ACK; refresh its view.
                self._send_summary_acks()
            else:
                self.pacer.start()
        elif pkt.kind == PacketKind.DATA:
            self._on_data(pkt)

    def _on_data(self, pkt: Packet) -> None:
        if pkt.subflow == PROACTIVE:
            self.pacer.note_data_received(pkt.meta if pkt.meta is not None else -1)
            self.p_board.add(pkt.seq)
            self._send_ack(pkt, PROACTIVE, self.p_board)
        else:
            self.r_board.add(pkt.seq)
            self._send_ack(pkt, REACTIVE, self.r_board)
        fresh = self.flow_board.add(pkt.flow_seq)
        if fresh:
            self.stats.delivered_bytes += pkt.payload
            if pkt.subflow == PROACTIVE:
                self.stats.proactive_bytes += pkt.payload
            else:
                self.stats.reactive_bytes += pkt.payload
            self._track_reorder()
            if self.flow_board.received_count() == self.spec.n_segments:
                self._finish()
        else:
            # Redundant copy (e.g., proactive retransmission raced the
            # reactive original): discard at reassembly (§4.2).
            self.stats.duplicate_bytes += pkt.payload

    def _track_reorder(self) -> None:
        held = self.flow_board.received_count() - self.flow_board.cum
        reorder_bytes = held * MSS
        if reorder_bytes > self.stats.max_reorder_bytes:
            self.stats.max_reorder_bytes = reorder_bytes

    # -------------------------------------------------------------- acks

    def _send_ack(self, data: Packet, subflow: int, board: ReceiveScoreboard) -> None:
        ack = alloc_packet(
            PacketKind.ACK, self.spec.flow_id, self.spec.dst.id, self.spec.src.id,
            ACK_WIRE_BYTES, dscp=self.params.ack_dscp,
            ack=board.cum, sack=board.sack(),
            seq=data.seq, subflow=subflow, sent_at=data.sent_at, meta=1,
        )
        if subflow == REACTIVE:
            ack.ce = data.ce  # per-packet CE echo feeds the DCTCP loop
        self.spec.dst.send(ack)

    def _send_summary_acks(self) -> None:
        for subflow, board in ((PROACTIVE, self.p_board), (REACTIVE, self.r_board)):
            ack = alloc_packet(
                PacketKind.ACK, self.spec.flow_id,
                self.spec.dst.id, self.spec.src.id,
                ACK_WIRE_BYTES, dscp=self.params.ack_dscp,
                ack=board.cum, sack=board.sack(), subflow=subflow,
            )
            self.spec.dst.send(ack)

    def _finish(self) -> None:
        self._complete = True
        self.stats.complete_ns = self.sim.now
        self.pacer.stop()
        if self.on_complete is not None:
            self.on_complete(self.spec, self.stats)
