"""Design-alternative variants of FlexPass, evaluated in §4.3 / Figure 5.

Two alternatives the paper considers and rejects:

* **RC3-style flow splitting** [33]: the proactive loop transmits from the
  *front* of the flow and the reactive loop from the *end*, so the two never
  duplicate data — at the cost of a reordering buffer up to half the flow
  size and the need to know the flow length up front (Figure 5a).
* **Alternative queueing**: reactive sub-flow packets share Q2 with legacy
  traffic instead of living in Q1 under selective dropping — reactive
  packets then suffer legacy burstiness, inflating delay, reorder-buffer
  size, and redundant retransmissions (Figure 5b).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.net.packet import Color, Dscp


@dataclass
class Rc3SplitParams(FlexPassParams):
    """FlexPass with RC3's front/back split: no proactive retransmission of
    reactive data (the loops never overlap by construction)."""

    def __post_init__(self) -> None:
        self.enable_proactive_rtx = False


class Rc3SplitSender(FlexPassSender):
    """Proactive from the front, reactive from the back (RC3 [33])."""

    def _next_reactive_segment(self):
        return self.buffer.peek_pending_back()


#: RC3's receiver is unchanged: reassembly by per-flow sequence number.
Rc3SplitReceiver = FlexPassReceiver


def alt_queue_params(base: FlexPassParams) -> FlexPassParams:
    """The §4.3 alternative: reactive sub-flow data mapped into the legacy
    queue (Q2), uncolored — no selective dropping applies to it there."""
    return replace(
        base,
        reactive_data_dscp=Dscp.LEGACY,
        reactive_data_color=Color.GREEN,
    )
