"""Command-line interface: reproduce any paper figure from the shell.

Examples::

    python -m repro.cli list
    python -m repro.cli figure fig09
    python -m repro.cli sweep --schemes naive flexpass --deployments 0 0.5 1
    python -m repro.cli sweep start --journal sweeps/demo --store sqlite:results.db
    python -m repro.cli sweep resume --journal sweeps/demo   # after kill -9
    python -m repro.cli sweep status --journal sweeps/demo
    python -m repro.cli run --scheme flexpass --deployment 1.0 --load 0.6

The CLI is a thin wrapper over :mod:`repro.experiments.figures` and
:mod:`repro.experiments.sweep`; everything it prints is available
programmatically.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.audit.matrix import MATRIX_SCHEMES, MATRIX_TOPOLOGIES, run_matrix
from repro.audit.replay import (
    compare_credit_planes,
    compare_engines,
    format_replay_report,
    replay_config,
)
from repro.sim.engine import ENGINE_BACKENDS
from repro.sim.timerwheel import CREDIT_PLANES
from repro.experiments.config import SchemeName
from repro.metrics.telemetry import TelemetryConfig, TelemetrySeries
from repro.experiments.figures import (
    failure_recovery,
    fig01a_expresspass_vs_dctcp,
    fig01b_homa_vs_dctcp,
    fig07_subflow_throughput,
    fig08_incast,
    fig09_coexistence,
)
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import (
    default_sweep_config,
    deployment_sweep,
    fig05a_rc3_comparison,
    fig10_rows,
    fig12_rows,
    fig13_rows,
    fig17_seldrop_sweep,
    fig18_wq_sweep,
    print_grid,
    queue_occupancy_study,
)
from repro.faults.plan import (
    FaultPlan,
    LinkFailureSpec,
    LinkLossSpec,
    SiteFailureSpec,
)
from repro.metrics.summary import degraded_title, print_table
from repro.net.topology import ClosSpec
from repro.sim.units import MILLIS


def _figure_fig01(base) -> None:
    fig01a_expresspass_vs_dctcp().print_report()
    fig01b_homa_vs_dctcp().print_report()


def _figure_fig05(base) -> None:
    results = fig05a_rc3_comparison(base)
    print_table("Figure 5(a): FlexPass vs RC3 splitting",
                ("scheme", "p99 small (ms)", "avg max reorder (kB)"),
                [(r.scheme, r.p99_small_ms, r.avg_max_reorder_kb)
                 for r in results])


def _figure_fig07(base) -> None:
    for scenario in ("one_flexpass", "two_flexpass", "dctcp_vs_flexpass"):
        fig07_subflow_throughput(scenario).print_report()


def _figure_fig08(base) -> None:
    fig08_incast().print_report()


def _figure_fig09(base) -> None:
    xp = fig09_coexistence("expresspass")
    fp = fig09_coexistence("flexpass")
    xp.print_report()
    fp.print_report()
    print_table("Figure 9(c): starvation time", ("scheme", "legacy starved"),
                [("ExpressPass", f"{xp.starvation('dctcp'):.2%}"),
                 ("FlexPass", f"{fp.starvation('dctcp'):.2%}")])


def _figure_fig10(base) -> None:
    grid = deployment_sweep(base)
    print_grid("Figure 10", fig10_rows(grid),
               ("scheme", "deployed", "p99 small (ms)", "avg (ms)",
                "censored"))
    print_grid("Figure 12", fig12_rows(grid),
               ("scheme", "deployed", "legacy p99", "upgraded p99"))
    print_grid("Figure 13", fig13_rows(grid),
               ("scheme", "deployed", "legacy stddev", "upgraded stddev"))


def _figure_fig17(base) -> None:
    points = fig17_seldrop_sweep(base)
    print_table("Figure 17: selective-dropping threshold",
                ("threshold (kB)", "p99 small (ms)", "avg (ms)"), points)


def _figure_fig18(base) -> None:
    points = fig18_wq_sweep(base)
    print_table("Figure 18: w_q sweep",
                ("w_q", "legacy degradation", "p99 at full (ms)"),
                [(w, f"{d:+.0%}", p) for w, d, p in points])


def _figure_failure_recovery(base) -> None:
    failure_recovery().print_report()


def _figure_queue(base) -> None:
    rows = queue_occupancy_study(base)
    print_table("Bounded queue (§6.2)",
                ("deployed", "avg kB", "p90 kB", "avg red kB", "p90 red kB"),
                [(f"{d:.0%}", a, p, ar, pr) for d, a, p, ar, pr in rows])


FIGURES = {
    "fig01": _figure_fig01,
    "fig05": _figure_fig05,
    "fig07": _figure_fig07,
    "fig08": _figure_fig08,
    "fig09": _figure_fig09,
    "fig10": _figure_fig10,  # also prints 12 and 13
    "fig17": _figure_fig17,
    "fig18": _figure_fig18,
    "queue": _figure_queue,
    "failure-recovery": _figure_failure_recovery,
}


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--ms", type=int, default=10, help="simulated ms")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workload", default="websearch")
    parser.add_argument("--size-scale", type=float, default=8.0)
    parser.add_argument("--paper-scale", action="store_true",
                        help="192-host 40G Clos, unscaled sizes (slow)")


def _base_config(args):
    overrides = dict(
        load=args.load, sim_time_ns=args.ms * MILLIS, seed=args.seed,
        workload=args.workload, size_scale=args.size_scale,
    )
    if args.paper_scale:
        overrides.update(clos=ClosSpec.paper_scale(), size_scale=1.0)
    plan = _fault_plan_from_args(args)
    if plan is not None:
        overrides["faults"] = plan
    if getattr(args, "max_events", None) is not None:
        overrides["max_events"] = args.max_events
    if getattr(args, "max_wall_seconds", None) is not None:
        overrides["max_wall_seconds"] = args.max_wall_seconds
    return default_sweep_config(**overrides)


def _add_fault_args(parser: argparse.ArgumentParser,
                    ontology: bool = False) -> None:
    g = parser.add_argument_group("fault injection / watchdog")
    faults_help = ("loss specs as key=value[,key=value...]: "
                   "model=bernoulli|gilbert rate=P links=GLOB "
                   "kinds=data/credit/... corrupt=0|1 burst_start=P "
                   "burst_end=P (e.g. --faults rate=0.01,kinds=data)")
    if ontology:
        # A bare --faults (no specs) picks the fabric's first inter-region
        # backbone link by ontology name and downs it mid-run.
        g.add_argument("--faults", nargs="*", metavar="SPEC", default=None,
                       help=faults_help + "; bare --faults downs the first "
                            "inter-region backbone link mid-run")
    else:
        g.add_argument("--faults", nargs="+", metavar="SPEC", default=None,
                       help=faults_help)
    g.add_argument(
        "--fault-link-down", nargs="+", action="append", default=None,
        metavar="ARG", help="A B DOWN_MS [UP_MS]: fail the A<->B link at "
                            "DOWN_MS, optionally repair at UP_MS")
    if ontology:
        g.add_argument(
            "--fault-site", nargs="+", action="append", default=None,
            metavar="ARG", help="TARGET DOWN_MS [UP_MS]: fail every link of "
                                "an ontology group (site/region) or single "
                                "node named TARGET")
    g.add_argument("--max-events", type=int, default=None,
                   help="watchdog: abort after this many simulated events")
    g.add_argument("--max-wall-seconds", type=float, default=None,
                   help="watchdog: abort after this much real time")


_LOSS_SPEC_KEYS = {
    "links": str, "model": str, "rate": float, "burst_start": float,
    "burst_end": float, "rate_good": float,
    "corrupt": lambda v: v.lower() in ("1", "true", "yes"),
    "kinds": lambda v: tuple(k for k in v.split("/") if k),
}


def _parse_loss_spec(text: str) -> LinkLossSpec:
    kwargs = {}
    for item in text.split(","):
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--faults: expected key=value, got {item!r}")
        convert = _LOSS_SPEC_KEYS.get(key)
        if convert is None:
            raise SystemExit(f"--faults: unknown key {key!r} "
                             f"(choose from {sorted(_LOSS_SPEC_KEYS)})")
        kwargs[key] = convert(value)
    return LinkLossSpec(**kwargs)


def _parse_link_down(values) -> LinkFailureSpec:
    if len(values) not in (3, 4):
        raise SystemExit("--fault-link-down takes: A B DOWN_MS [UP_MS]")
    a, b = values[0], values[1]
    down_ns = int(float(values[2]) * MILLIS)
    up_ns = int(float(values[3]) * MILLIS) if len(values) == 4 else None
    return LinkFailureSpec(a=a, b=b, down_ns=down_ns, up_ns=up_ns)


def _parse_fault_site(values) -> SiteFailureSpec:
    if len(values) not in (2, 3):
        raise SystemExit("--fault-site takes: TARGET DOWN_MS [UP_MS]")
    down_ns = int(float(values[1]) * MILLIS)
    up_ns = int(float(values[2]) * MILLIS) if len(values) == 3 else None
    return SiteFailureSpec(target=values[0], down_ns=down_ns, up_ns=up_ns)


def _fault_plan_from_args(args) -> Optional[FaultPlan]:
    losses = tuple(_parse_loss_spec(s) for s in (getattr(args, "faults", None) or ()))
    failures = tuple(_parse_link_down(v)
                     for v in (getattr(args, "fault_link_down", None) or ()))
    site_failures = tuple(_parse_fault_site(v)
                          for v in (getattr(args, "fault_site", None) or ()))
    if not losses and not failures and not site_failures:
        return None
    return FaultPlan(losses=losses, failures=failures,
                     site_failures=site_failures)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FlexPass (EuroSys'23) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures")

    p_fig = sub.add_parser("figure", help="reproduce one figure")
    p_fig.add_argument("name", choices=sorted(FIGURES))
    _add_config_args(p_fig)

    p_sweep = sub.add_parser(
        "sweep",
        help="deployment sweep: inline, or durable via start/resume/status")
    p_sweep.add_argument(
        "action", nargs="?", choices=("start", "resume", "status"),
        default=None,
        help="omit for an inline in-process sweep; 'start' shards the grid "
             "through the durable fabric (journal + result store, "
             "kill-safe), 'resume' continues a killed or partial sweep, "
             "'status' inspects the journal without running anything")
    p_sweep.add_argument("--schemes", nargs="+",
                         default=["naive", "owf", "ly", "flexpass"])
    p_sweep.add_argument("--deployments", type=float, nargs="+",
                         default=[0.0, 0.25, 0.5, 0.75, 1.0])
    _add_config_args(p_sweep)
    _add_fabric_args(p_sweep)

    p_run = sub.add_parser("run", help="single experiment")
    p_run.add_argument("--scheme", default="flexpass",
                       choices=[s.value for s in SchemeName])
    p_run.add_argument("--deployment", type=float, default=1.0)
    _add_config_args(p_run)
    _add_fault_args(p_run)
    _add_telemetry_args(p_run)

    p_clos = sub.add_parser(
        "clos",
        help="paper-scale Clos deployment scenario (§6.2, Figs 10-11): "
             "40G fabric in paper shape, unscaled flow sizes")
    p_clos.add_argument("--hosts", type=int, default=192,
                        help="fabric size; multiple of 24 (one paper pod)")
    p_clos.add_argument("--full-load", action="store_true",
                        help="run the generator at load 1.0 (paper's "
                             "saturation operating point; default 0.5)")
    p_clos.add_argument("--scheme", default="flexpass",
                        choices=[s.value for s in SchemeName])
    p_clos.add_argument("--deployment", type=float, default=1.0)
    p_clos.add_argument("--ms", type=int, default=2, help="simulated ms")
    p_clos.add_argument("--seed", type=int, default=1)

    p_topo = sub.add_parser(
        "topo",
        help="declarative topology specs: validate, show, or run one "
             "(YAML/JSON file or azure-style CSV directory)")
    p_topo.add_argument("action", choices=("validate", "show", "run"),
                        help="validate: load + strict checks; show: print "
                             "the fabric's ontology; run: simulate a scheme "
                             "over it")
    p_topo.add_argument("spec", help="spec path (.yaml/.yml/.json or a "
                                     "directory of CSV tables)")
    p_topo.add_argument("--scheme", default="flexpass",
                        choices=[s.value for s in SchemeName])
    p_topo.add_argument("--deployment", type=float, default=1.0)
    p_topo.add_argument("--load", type=float, default=0.5)
    p_topo.add_argument("--ms", type=int, default=2, help="simulated ms")
    p_topo.add_argument("--seed", type=int, default=1)
    p_topo.add_argument("--workload", default="websearch")
    p_topo.add_argument("--size-scale", type=float, default=8.0)
    p_topo.add_argument("--locality", type=float, default=0.8,
                        metavar="FRACTION",
                        help="fraction of traffic kept inside the sender's "
                             "region (-1 disables the locality matrix)")
    p_topo.add_argument("--cache", metavar="DIR", default=".sim-cache",
                        help="experiment cache directory ('none' disables); "
                             "identical spec+config is served from it")
    _add_fault_args(p_topo, ontology=True)

    p_wl = sub.add_parser(
        "workloads",
        help="streaming traffic-generator suite: list building blocks, "
             "describe a composition, sample a flow stream, or sweep "
             "load x locality x burstiness across schemes")
    p_wl.add_argument(
        "action", choices=("list", "describe", "sample", "sweep"),
        help="list: building blocks + spec grammar; describe: resolve a "
             "composition against a stub fabric; sample: stream flows "
             "(digest / bounded-memory checks); sweep: simulate the grid")
    g = p_wl.add_argument_group("traffic composition")
    g.add_argument("--sizes", default="empirical",
                   help="size model spec (see 'repro workloads list')")
    g.add_argument("--arrivals", default="poisson",
                   help="arrival process spec (poisson | pareto:alpha= | "
                        "onoff:on_us=,off_us=)")
    g.add_argument("--locality", default="uniform",
                   help="pair picker spec (uniform | grouped:intra= | "
                        "matrix:intra=)")
    g.add_argument("--workload", default="websearch",
                   help="default empirical CDF for 'empirical' size specs")
    g.add_argument("--size-scale", type=float, default=8.0)
    g.add_argument("--load", type=float, default=0.5)
    g.add_argument("--seed", type=int, default=1)
    g.add_argument("--incast-share", type=float, default=0.0, metavar="F",
                   help="add a synchronized-incast source carrying this "
                        "fraction of the offered load")
    g.add_argument("--coflow-share", type=float, default=0.0, metavar="F",
                   help="add a coflow (scatter-gather jobs) source carrying "
                        "this fraction of the offered load")
    g.add_argument("--coflow-fanout", type=int, default=4)
    g.add_argument("--request-kb", type=float, default=8.0,
                   help="incast/coflow request size in kB (unscaled)")
    g = p_wl.add_argument_group("stub fabric (describe/sample)")
    g.add_argument("--hosts", type=int, default=32)
    g.add_argument("--groups", type=int, default=4,
                   help="racks the stub hosts are partitioned into")
    g.add_argument("--rate-gbps", type=float, default=10.0,
                   help="stub access-link rate the load is relative to")
    g = p_wl.add_argument_group("sampling (sample)")
    g.add_argument("--flows", type=int, default=None,
                   help="stop after exactly N flows (default: --ms horizon)")
    g.add_argument("--ms", type=int, default=2, help="simulated ms horizon")
    g.add_argument("--show", type=int, default=0, metavar="N",
                   help="print the first N flows")
    g.add_argument("--digest", action="store_true",
                   help="print the stream digest (count/bytes/sha256)")
    g.add_argument("--check-memory", action="store_true",
                   help="trace allocations while streaming and fail if the "
                        "peak exceeds --memory-budget-mb (proves the "
                        "generator is constant-memory)")
    g.add_argument("--memory-budget-mb", type=float, default=64.0)
    g = p_wl.add_argument_group("grid (sweep)")
    g.add_argument("--schemes", nargs="+", default=["dctcp", "flexpass"],
                   choices=[s.value for s in SchemeName])
    g.add_argument("--loads", type=float, nargs="+", default=None,
                   help="grid loads (default: the single --load)")
    g.add_argument("--localities", nargs="+", default=None,
                   help="grid locality specs (default: the single "
                        "--locality)")
    g.add_argument("--arrival-grid", nargs="+", default=None,
                   help="grid arrival specs (default: the single "
                        "--arrivals)")

    p_audit = sub.add_parser(
        "audit", help="correctness audit: invariant matrix or replay cell")
    p_audit.add_argument(
        "--schemes", nargs="+", default=list(MATRIX_SCHEMES),
        choices=[s.value for s in SchemeName],
        help="transport schemes to audit")
    p_audit.add_argument(
        "--topos", nargs="+", default=list(MATRIX_TOPOLOGIES),
        choices=sorted(MATRIX_TOPOLOGIES),
        help="fabric shapes to audit")
    p_audit.add_argument("--ms", type=int, default=2, help="simulated ms")
    p_audit.add_argument("--seed", type=int, default=1)
    p_audit.add_argument("--load", type=float, default=0.5)
    p_audit.add_argument(
        "--replay", action="store_true",
        help="determinism cell: run the first scheme x topo twice (through "
             "worker pickling and a cache round-trip) and compare digests")
    p_audit.add_argument(
        "--engine", choices=sorted(ENGINE_BACKENDS), default=None,
        help="pin the event-engine backend for this audit (exported as "
             "REPRO_SIM_ENGINE so worker subprocesses inherit it)")
    p_audit.add_argument(
        "--compare-engines", action="store_true",
        help="engine-equivalence matrix: run every scheme x topo cell once "
             "per engine backend and require bit-identical event digests")
    p_audit.add_argument(
        "--credit-plane", choices=sorted(CREDIT_PLANES), default=None,
        help="pin the credit-plane backend for this audit (exported as "
             "REPRO_CREDIT_PLANE so worker subprocesses inherit it)")
    p_audit.add_argument(
        "--compare-credit-planes", action="store_true",
        help="credit-plane equivalence matrix: run every scheme x topo "
             "cell once per credit plane (legacy vs wheel) and require "
             "bit-identical event digests")
    return parser


def _add_fabric_args(parser: argparse.ArgumentParser) -> None:
    g = parser.add_argument_group(
        "durable sweep fabric (start/resume/status)")
    g.add_argument("--journal", metavar="DIR", default=None,
                   help="journal directory: the durable work queue and the "
                        "unit of resume (required for start/resume/status)")
    g.add_argument("--store", metavar="SPEC", default=None,
                   help="result store: a directory, or sqlite:PATH / *.db "
                        "for the concurrent-writer SQLite backend "
                        "(default: <journal>/store)")
    g.add_argument("--loads", type=float, nargs="+", default=None,
                   help="grid loads (default: the single --load)")
    g.add_argument("--seeds", type=int, nargs="+", default=None,
                   help="grid seeds (default: the single --seed)")
    g.add_argument("--processes", type=int, default=None)
    g.add_argument("--max-retries", type=int, default=2,
                   help="extra attempts per failing cell before it is "
                        "reported as failed (sweep still completes)")
    g.add_argument("--retry-base-s", type=float, default=1.0,
                   help="backoff base: retry N waits base*2^(N-1) + jitter")
    g.add_argument("--lease-s", type=float, default=300.0,
                   help="per-cell wall-clock lease; an expired lease "
                        "re-queues the cell")
    g.add_argument("--heartbeat-s", type=float, default=5.0,
                   help="worker heartbeat period (renews the lease)")


def _fabric_from_args(args):
    from repro.experiments.fabric import FabricConfig, SweepFabric

    if not args.journal:
        raise SystemExit(f"repro sweep {args.action}: --journal DIR is "
                         f"required")
    return SweepFabric(
        args.journal,
        store=args.store,
        config=FabricConfig(
            processes=args.processes,
            max_retries=args.max_retries,
            retry_base_s=args.retry_base_s,
            # Decorrelate backoff jitter from the simulation seed (the
            # grid sweeps args.seed directly) while staying deterministic
            # per invocation.
            retry_seed=args.seed ^ 0x5EED5EED,
            lease_s=args.lease_s,
            heartbeat_s=args.heartbeat_s,
        ),
    )


def _fabric_grid(args) -> List:
    """The durable-sweep grid: seeds x loads x schemes x deployments.

    Mirrors :func:`repro.experiments.sweep.deployment_sweep`: the
    0%-deployment point degenerates to pure DCTCP for every scheme, so it
    is emitted as the *same* DCTCP config — the fabric's content-hash
    dedup then simulates it once per (seed, load) and serves the rest
    from the store.
    """
    base = _base_config(args)
    schemes = [SchemeName(s) for s in args.schemes]
    loads = args.loads if args.loads else [args.load]
    seeds = args.seeds if args.seeds else [args.seed]
    configs = []
    for seed in seeds:
        for load in loads:
            for scheme in schemes:
                for dep in args.deployments:
                    if dep == 0.0:
                        cfg = base.with_(scheme=SchemeName.DCTCP,
                                         deployment=0.0, load=load,
                                         seed=seed)
                    else:
                        cfg = base.with_(scheme=scheme, deployment=dep,
                                         load=load, seed=seed)
                    configs.append(cfg)
    return configs


def _print_fabric_results(results, report) -> None:
    from repro.experiments.parallel import FailedResult
    from repro.experiments.sweep import SweepCell

    rows = []
    for res in results:
        cfg = res.config
        if isinstance(res, FailedResult):
            rows.append((cfg.scheme.value, f"{cfg.deployment:.0%}",
                         cfg.load, cfg.seed, "FAILED", "-",
                         f"{res.error[:40]} (x{res.attempts})"))
        else:
            cell = SweepCell.from_result(res)
            rows.append((cfg.scheme.value, f"{cfg.deployment:.0%}",
                         cfg.load, cfg.seed, cell.p99_small_ms,
                         cell.avg_all_ms, cell.censored))
    print_table(
        f"Durable sweep {report.sweep_id} [{report.status}]",
        ("scheme", "deployed", "load", "seed", "p99 small (ms)",
         "avg (ms)", "censored / error"),
        rows)
    print(f"\ncells: {report.completed}/{report.total} completed, "
          f"{report.executed} simulated, {report.store_hits} store hits, "
          f"{report.retries} retries, {report.expired_leases} expired "
          f"leases, {report.wall_seconds:.1f}s wall")
    print(f"store: {report.store}")


def _run_sweep_fabric(args) -> int:
    from repro.experiments.fabric import JournalError, sweep_status

    if args.action == "status":
        if not args.journal:
            raise SystemExit("repro sweep status: --journal DIR is required")
        try:
            status = sweep_status(args.journal, lease_s=args.lease_s)
        except JournalError as exc:
            raise SystemExit(f"repro sweep status: {exc}")
        print_table(
            f"Sweep {status['sweep_id']} @ {args.journal}",
            ("field", "value"),
            [("store", status["store"]),
             ("salt", status["salt"]),
             ("cells", status["cells"]),
             ("executions", status["executions"])]
            + sorted(status["by_status"].items()))
        for cell in status["exhausted"]:
            print(f"  exhausted cell {cell['index']} "
                  f"(x{cell['attempts']}): {cell['error']}")
        return 0

    fabric = _fabric_from_args(args)
    try:
        if args.action == "start":
            results = fabric.run(_fabric_grid(args))
        else:  # resume: grid comes from the journal snapshot
            results = fabric.run()
    except JournalError as exc:
        raise SystemExit(f"repro sweep {args.action}: {exc}")
    report = fabric.last_report
    _print_fabric_results(results, report)
    print(f"completion report: {fabric.journal.report_path}")
    return 0 if report.status == "complete" else 1


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    g = parser.add_argument_group("telemetry")
    g.add_argument("--telemetry", action="store_true",
                   help="sample time-series during the run, print a "
                        "sparkline summary, and export JSON + CSV")
    g.add_argument("--telemetry-out", default="telemetry", metavar="DIR",
                   help="directory for telemetry.json/telemetry.csv")
    g.add_argument("--telemetry-interval-us", type=float, default=100.0,
                   help="sampling cadence in microseconds")
    g.add_argument("--telemetry-ports", default="tor_uplinks",
                   choices=("tor_uplinks", "all", "none"),
                   help="which switch ports get per-queue series")


def _telemetry_config(args) -> Optional[TelemetryConfig]:
    if not getattr(args, "telemetry", False):
        return None
    return TelemetryConfig(
        interval_ns=max(1, int(args.telemetry_interval_us * 1000)),
        ports=args.telemetry_ports,
    )


def _report_telemetry(series: TelemetrySeries, out_dir: str,
                      max_port_series: int = 12) -> None:
    """Print the sparkline summary and write JSON/CSV exports."""
    names = series.names()
    shown = [n for n in names if not n.startswith("port.")]
    port_names = [n for n in names if n.startswith("port.")]
    shown += port_names[:max_port_series]
    print("\n== telemetry ==")
    rows = [(n, k, mean, peak, spark) for n, k, mean, peak, spark
            in series.summary_rows(shown)]
    print_table(f"{len(names)} series @ {series.interval_ns / 1000:g} µs",
                ("series", "kind", "mean", "max", "timeline"), rows)
    hidden = len(port_names) - max_port_series
    if hidden > 0:
        print(f"... {hidden} more port series (see exports)")
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, "telemetry.json")
    csv_path = os.path.join(out_dir, "telemetry.csv")
    series.write_json(json_path)
    series.write_csv(csv_path)
    print(f"telemetry written to {json_path} and {csv_path}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(FIGURES):
            print(name)
        return 0
    if args.command == "figure":
        FIGURES[args.name](_base_config(args))
        return 0
    if args.command == "sweep":
        if args.action is not None:
            return _run_sweep_fabric(args)
        base = _base_config(args)
        schemes = tuple(SchemeName(s) for s in args.schemes)
        grid = deployment_sweep(base, schemes, tuple(args.deployments))
        print_grid("Deployment sweep", fig10_rows(grid),
                   ("scheme", "deployed", "p99 small (ms)", "avg (ms)",
                    "censored"))
        print_grid("By traffic group", fig12_rows(grid),
                   ("scheme", "deployed", "legacy p99", "upgraded p99"))
        return 0
    if args.command == "run":
        base = _base_config(args)
        cfg = base.with_(scheme=SchemeName(args.scheme),
                         deployment=args.deployment,
                         telemetry=_telemetry_config(args))
        res = run_experiment(cfg, sample_q1=True)
        s_all, s_small = res.fct(), res.fct(small=True)
        rows = [
            ("flows completed", f"{res.completed}/{len(res.records)}"),
            ("flows censored (no FCT)", s_all.censored),
            ("avg FCT (ms)", s_all.avg_ms),
            ("p99 small FCT (ms)", s_small.p99_ms),
            ("small flows censored", s_small.censored),
            ("timeouts", res.total_timeouts),
            ("Q1 avg (kB)", res.q1_avg_kb),
            ("Q1 p90 (kB)", res.q1_p90_kb),
            ("selective drops", res.counters.dropped_selective),
            ("ECN marks", res.counters.ecn_marked),
            ("events simulated", res.events_run),
            ("wall time (s)", res.wall_seconds),
        ]
        fc = res.fault_counters
        if fc.any_faults:
            rows += [
                ("faults injected", fc.injected_drops),
                ("packets corrupted", fc.corrupted),
                ("link-down losses",
                 fc.discarded_in_flight + fc.dropped_link_down),
                ("reroutes", fc.reroutes),
            ]
        if res.aborted:
            rows.append(("aborted", res.abort_reason))
        print_table(
            degraded_title(
                f"{cfg.scheme.value} @ {cfg.deployment:.0%} deployment", res),
            ("metric", "value"),
            rows,
        )
        if res.telemetry is not None:
            _report_telemetry(res.telemetry, args.telemetry_out)
        return 0
    if args.command == "clos":
        return _run_clos(args)
    if args.command == "topo":
        return _run_topo(args)
    if args.command == "workloads":
        return _run_workloads(args)
    if args.command == "audit":
        return _run_audit(args)
    return 1  # pragma: no cover


def _run_topo(args) -> int:
    """The ``repro topo`` subcommand: validate/show/run a declarative spec."""
    from repro.experiments.cache import ExperimentCache
    from repro.experiments.scenarios import regional_fabric_config
    from repro.net.fabric import TopologySpecError, load_topology_spec

    try:
        spec = load_topology_spec(args.spec)
    except TopologySpecError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1

    if args.action == "validate":
        print(f"OK: {spec.name}: {len(spec.sites)} sites, "
              f"{len(spec.hosts())} hosts, {len(spec.switches())} switches, "
              f"{len(spec.links)} links "
              f"({len(spec.inter_region_links())} inter-region)")
        return 0

    if args.action == "show":
        site_rows = [(s.name, s.region or "-",
                      sum(1 for n in spec.nodes if n.site == s.name))
                     for s in spec.sites]
        if site_rows:
            print_table(f"{spec.name}: sites", ("site", "region", "nodes"),
                        site_rows)
        node_rows = [(n.name, n.kind, n.site or "-", n.tier)
                     for n in spec.nodes]
        print_table(f"{spec.name}: nodes", ("node", "kind", "site", "tier"),
                    node_rows)
        link_rows = [(l.label, f"{l.rate_bps / 1e9:g}G",
                      f"{l.delay_ns / 1000:g}us", l.region or "-")
                     for l in spec.links]
        print_table(f"{spec.name}: links", ("link", "rate", "delay", "tag"),
                    link_rows)
        return 0

    # action == "run"
    faults = _fault_plan_from_args(args)
    if faults is None and args.faults is not None:
        # Bare --faults: down the first inter-region backbone link by its
        # ontology name for the middle third of the run.
        backbones = spec.inter_region_links()
        if not backbones:
            print("INVALID: bare --faults needs an inter-region link to "
                  "target and the spec has none", file=sys.stderr)
            return 1
        link = backbones[0]
        horizon = args.ms * MILLIS
        faults = FaultPlan(failures=(LinkFailureSpec(
            a=link.a, b=link.b, down_ns=horizon // 3,
            up_ns=2 * horizon // 3),))
        print(f"fault plan: backbone link {link.label} down "
              f"[{horizon // 3 / 1e6:g} ms, {2 * horizon // 3 / 1e6:g} ms)")
    cfg = regional_fabric_config(
        spec, scheme=SchemeName(args.scheme), load=args.load,
        sim_time_ns=args.ms * MILLIS, seed=args.seed,
        locality_intra=None if args.locality < 0 else args.locality,
        workload=args.workload, size_scale=args.size_scale,
        deployment=args.deployment, faults=faults,
        max_events=args.max_events, max_wall_seconds=args.max_wall_seconds,
    )
    cache = None if args.cache == "none" else ExperimentCache(args.cache)
    res = cache.get(cfg) if cache is not None else None
    cached = res is not None
    if cached:
        print(f"served from experiment cache ({cache.describe()})")
    else:
        res = run_experiment(cfg)
        if cache is not None and cache.put(cfg, res):
            print(f"cached result in {cache.describe()}")
    s_all, s_small = res.fct(), res.fct(small=True)
    rows = [
        ("fabric", f"{spec.name}: {len(spec.hosts())} hosts / "
                   f"{len(spec.links)} links"),
        ("flows completed", f"{res.completed}/{len(res.records)}"),
        ("avg FCT (ms)", s_all.avg_ms),
        ("p99 small FCT (ms)", s_small.p99_ms),
        ("timeouts", res.total_timeouts),
        ("events simulated", res.events_run),
        ("wall time (s)", res.wall_seconds),
    ]
    fc = res.fault_counters
    if fc.any_faults:
        rows += [
            ("link-down losses",
             fc.discarded_in_flight + fc.dropped_link_down),
            ("reroutes", fc.reroutes),
        ]
    if res.aborted:
        rows.append(("aborted", res.abort_reason))
    print_table(
        degraded_title(
            f"{spec.name}: {cfg.scheme.value} @ load {cfg.load:.0%}", res),
        ("metric", "value"),
        rows,
    )
    return 1 if res.aborted else 0


def _run_clos(args) -> int:
    """The ``repro clos`` subcommand: §6.2 paper-scale deployment run."""
    from repro.experiments.scenarios import paper_scale_config

    cfg = paper_scale_config(
        hosts=args.hosts, full_load=args.full_load,
        scheme=SchemeName(args.scheme), sim_time_ns=args.ms * MILLIS,
        seed=args.seed, deployment=args.deployment,
    )
    res = run_experiment(cfg)
    s_all, s_small = res.fct(), res.fct(small=True)
    ev_rate = res.events_run / res.wall_seconds if res.wall_seconds else 0.0
    rows = [
        ("hosts", cfg.clos.n_hosts),
        ("load", cfg.load),
        ("flows completed", f"{res.completed}/{len(res.records)}"),
        ("avg FCT (ms)", s_all.avg_ms),
        ("p99 small FCT (ms)", s_small.p99_ms),
        ("events simulated", res.events_run),
        ("events/sec", int(ev_rate)),
        ("wall time (s)", res.wall_seconds),
    ]
    if res.aborted:
        rows.append(("aborted", res.abort_reason))
    print_table(
        degraded_title(
            f"paper-scale Clos: {cfg.scheme.value} @ "
            f"{cfg.deployment:.0%} deployment, load {cfg.load:.0%}", res),
        ("metric", "value"),
        rows,
    )
    return 1 if res.aborted else 0


def _workloads_traffic(args):
    """Build the TrafficConfig described by the workloads flags."""
    from repro.workloads.gen import SourceConfig, TrafficConfig

    main_share = 1.0 - args.incast_share - args.coflow_share
    if main_share <= 0.0:
        raise SystemExit("repro workloads: --incast-share + --coflow-share "
                         "must leave a positive share for the open-loop "
                         "source")
    request_bytes = max(1, int(args.request_kb * 1000))
    sources = [SourceConfig(
        name="bg", kind="open", sizes=args.sizes, arrivals=args.arrivals,
        locality=args.locality, load_share=main_share)]
    if args.incast_share > 0.0:
        sources.append(SourceConfig(
            name="incast", kind="incast", load_share=args.incast_share,
            request_bytes=request_bytes, role="fg"))
    if args.coflow_share > 0.0:
        sources.append(SourceConfig(
            name="jobs", kind="coflow", sizes=args.sizes,
            load_share=args.coflow_share, fanout=args.coflow_fanout,
            request_bytes=request_bytes))
    return TrafficConfig(tuple(sources))


def _workloads_sources(args, sim_time_ns: int):
    """Instantiate the composition against the stub fabric."""
    from repro.workloads.gen import build_sources, stub_groups

    groups = stub_groups(args.hosts, args.groups)
    hosts = [h for g in groups for h in g]
    return build_sources(
        _workloads_traffic(args), hosts, groups, load=args.load,
        rate_bps=args.rate_gbps * 1e9, sim_time_ns=sim_time_ns,
        size_scale=args.size_scale, default_workload=args.workload)


def _run_workloads(args) -> int:
    """The ``repro workloads`` subcommand: the streaming generator suite."""
    from repro.sim.rng import RngRegistry
    from repro.workloads.distributions import WORKLOADS
    from repro.workloads.gen import merge_sources, stream_digest

    if args.action == "list":
        print_table(
            "size models (--sizes)", ("spec", "meaning"),
            [("empirical[:W]", "paper CDF (W defaults to --workload)")]
            + [(name, "empirical workload CDF") for name in sorted(WORKLOADS)]
            + [("lognormal:mean_kb=60,sigma=1.5", "parametric lognormal"),
               ("pareto:min_kb=1,alpha=1.3,max_mb=100",
                "bounded heavy-tail"),
               ("bimodal:small_kb=2,large_mb=1,large_frac=0.05,sigma=0.5",
                "mice + elephants mixture")])
        print_table(
            "arrival processes (--arrivals)", ("spec", "meaning"),
            [("poisson", "memoryless (the paper's default)"),
             ("pareto:alpha=1.5", "heavy-tailed gaps, same long-run rate"),
             ("onoff:on_us=100,off_us=900",
              "Markov-modulated bursts, same long-run rate")])
        print_table(
            "pair pickers (--locality)", ("spec", "meaning"),
            [("uniform", "all-to-all (the paper's default)"),
             ("grouped:intra=0.8", "keep a fraction inside the rack/region"),
             ("matrix:intra=0.7",
              "full group x group matrix (uniform off-diagonal)")])
        print_table(
            "extra sources", ("flag", "meaning"),
            [("--incast-share F", "synchronized incast at F of the load"),
             ("--coflow-share F",
              "scatter-gather jobs; replies released on request "
              "completion")])
        return 0

    if args.action == "sweep":
        return _run_workloads_sweep(args)

    horizon = args.ms * MILLIS if args.flows is None else (1 << 62)
    sources = _workloads_sources(args, horizon)

    if args.action == "describe":
        rows = []
        for src in sources:
            arrivals = getattr(src, "arrivals", None)
            rate = arrivals.rate_per_ns if arrivals is not None else 0.0
            rows.append((src.name, src.describe(),
                         f"{rate * 1e3:.4g}/us"))
        print_table(
            f"{args.hosts} stub hosts in {args.groups} groups @ "
            f"{args.rate_gbps:g} Gbps, load {args.load:g}, "
            f"size_scale {args.size_scale:g}",
            ("source", "composition", "rate"), rows)
        return 0

    # action == "sample"
    import itertools

    stream = merge_sources(sources, RngRegistry(args.seed))
    if args.flows is not None:
        stream = itertools.islice(stream, args.flows)
    if args.show > 0:
        def _display(it, limit):
            shown = 0
            for t in it:
                if shown < limit:
                    print(f"  {t.start_ns:>12} ns  #{t.flow_id:<9} "
                          f"{t.src.id:>4} -> {t.dst.id:<4} "
                          f"{t.size_bytes:>9} B  {t.role}"
                          + (f"  +{len(t.children)} child"
                             if t.children else ""))
                    shown += 1
                yield t
        stream = _display(stream, args.show)
    tracer = None
    if args.check_memory:
        import tracemalloc
        tracemalloc.start()
        tracer = tracemalloc
    digest = stream_digest(stream)
    if tracer is not None:
        _, peak = tracer.get_traced_memory()
        tracer.stop()
        peak_mb = peak / 1e6
        budget = args.memory_budget_mb
        print(f"peak traced memory: {peak_mb:.1f} MB over {digest.flows} "
              f"flows (budget {budget:g} MB)")
        if peak_mb > budget:
            print(f"FAIL: generator exceeded the constant-memory budget",
                  file=sys.stderr)
            return 1
    if args.digest:
        print(f"flows={digest.flows} bytes={digest.total_bytes} "
              f"sha256={digest.sha256}")
    elif not args.show:
        print(f"streamed {digest.flows} flows "
              f"({digest.total_bytes / 1e6:.1f} MB offered)")
    return 0


def _run_workloads_sweep(args) -> int:
    """load x locality x burstiness grid across schemes."""
    loads = args.loads if args.loads else [args.load]
    localities = args.localities if args.localities else [args.locality]
    arrival_specs = args.arrival_grid if args.arrival_grid \
        else [args.arrivals]
    rows = []
    for load in loads:
        for locality in localities:
            for arrivals in arrival_specs:
                ns = argparse.Namespace(**vars(args))
                ns.load, ns.locality, ns.arrivals = load, locality, arrivals
                traffic = _workloads_traffic(ns)
                for scheme in args.schemes:
                    cfg = default_sweep_config(
                        scheme=SchemeName(scheme),
                        deployment=0.0 if scheme == "dctcp" else 1.0,
                        load=load, seed=args.seed,
                        sim_time_ns=args.ms * MILLIS,
                        size_scale=args.size_scale,
                        workload=args.workload, traffic=traffic)
                    res = run_experiment(cfg)
                    s_all, s_small = res.fct(), res.fct(small=True)
                    rows.append((scheme, load, locality, arrivals,
                                 f"{res.completed}/{len(res.records)}",
                                 s_small.p99_ms, s_all.avg_ms))
    print_grid("workloads sweep", rows,
               ("scheme", "load", "locality", "arrivals", "flows",
                "p99 small (ms)", "avg (ms)"))
    return 0


def _run_audit(args) -> int:
    """The ``repro audit`` subcommand: invariant matrix or replay cell.

    Exits nonzero on any invariant violation, aborted cell, or digest
    divergence, so CI can gate on it directly.
    """
    horizon_ns = args.ms * MILLIS
    if args.engine:
        # Exported (not just passed down) so run_many worker subprocesses
        # audit on the same backend as the parent.
        os.environ["REPRO_SIM_ENGINE"] = args.engine
    if args.credit_plane:
        os.environ["REPRO_CREDIT_PLANE"] = args.credit_plane
    if args.compare_credit_planes:
        from repro.audit.matrix import matrix_config

        failed = 0
        rows = []
        for topo in args.topos:
            for scheme in args.schemes:
                cfg = matrix_config(scheme, topo, sim_time_ns=horizon_ns,
                                    seed=args.seed, load=args.load)
                report = compare_credit_planes(cfg)
                rows.append((topo, scheme,
                             "MATCH" if report.match else "DIVERGED",
                             report.total_events, report.epochs))
                if not report.match:
                    failed += 1
                    print(f"\n{topo} x {scheme}:")
                    print(format_replay_report(report))
        print_table("Credit-plane digest-equivalence matrix (legacy vs wheel)",
                    ("topology", "scheme", "digests", "events", "epochs"),
                    rows)
        if failed:
            print(f"\n{failed}/{len(rows)} cells DIVERGED between "
                  f"credit planes")
            return 1
        print(f"\nall {len(rows)} cells digest-identical across credit planes")
        return 0
    if args.compare_engines:
        from repro.audit.matrix import matrix_config

        failed = 0
        rows = []
        for topo in args.topos:
            for scheme in args.schemes:
                cfg = matrix_config(scheme, topo, sim_time_ns=horizon_ns,
                                    seed=args.seed, load=args.load)
                report = compare_engines(cfg)
                rows.append((topo, scheme,
                             "MATCH" if report.match else "DIVERGED",
                             report.total_events, report.epochs))
                if not report.match:
                    failed += 1
                    print(f"\n{topo} x {scheme}:")
                    print(format_replay_report(report))
        print_table("Engine digest-equivalence matrix (heap vs calendar)",
                    ("topology", "scheme", "digests", "events", "epochs"),
                    rows)
        if failed:
            print(f"\n{failed}/{len(rows)} cells DIVERGED between engines")
            return 1
        print(f"\nall {len(rows)} cells digest-identical across engines")
        return 0
    if args.replay:
        from repro.audit.matrix import matrix_config

        scheme, topo = args.schemes[0], args.topos[0]
        cfg = matrix_config(scheme, topo, sim_time_ns=horizon_ns,
                            seed=args.seed, load=args.load)
        print(f"replay cell: {scheme} x {topo}, {args.ms} ms horizon")
        report = replay_config(cfg)
        print(format_replay_report(report))
        return 0 if report.match else 1
    cells = run_matrix(schemes=tuple(args.schemes),
                       topologies=tuple(args.topos),
                       sim_time_ns=horizon_ns, seed=args.seed,
                       load=args.load)
    rows = [
        (c.topology, c.scheme,
         "OK" if c.ok else ("ABORTED" if c.aborted else "FAIL"),
         c.checks, c.checkpoints, f"{c.completed}/{c.flows}",
         len(c.violations))
        for c in cells
    ]
    print_table("Invariant audit matrix",
                ("topology", "scheme", "status", "checks", "checkpoints",
                 "flows", "violations"),
                rows)
    failed = [c for c in cells if not c.ok]
    for c in failed:
        print(f"\n{c.topology} x {c.scheme}:")
        for v in c.violations:
            print(f"  {v}")
    if failed:
        print(f"\n{len(failed)}/{len(cells)} cells FAILED")
        return 1
    print(f"\nall {len(cells)} cells passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
