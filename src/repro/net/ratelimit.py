"""Token-bucket rate limiter for credit-queue pacing.

ExpressPass (and hence FlexPass) rate-limits the credit queue so that the
data packets the credits trigger consume at most the reserved fraction of
the link (§4.1). The limiter is a standard token bucket: tokens accrue at
``rate_bps`` up to ``bucket_bytes``; a packet may depart once the bucket
holds its full size.
"""

from __future__ import annotations

import math

from repro.sim.units import SECONDS


class TokenBucket:
    """Byte-granularity token bucket over the integer-ns clock."""

    __slots__ = ("rate_bps", "bucket_bytes", "_tokens", "_last_ns")

    def __init__(self, rate_bps: int, bucket_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError("token bucket rate must be positive")
        if bucket_bytes <= 0:
            raise ValueError("token bucket depth must be positive")
        self.rate_bps = rate_bps
        self.bucket_bytes = bucket_bytes
        self._tokens = float(bucket_bytes)
        self._last_ns = 0

    def _refill(self, now_ns: int) -> None:
        if now_ns > self._last_ns:
            self._tokens = min(
                self.bucket_bytes,
                self._tokens + (now_ns - self._last_ns) * self.rate_bps / (8.0 * SECONDS),
            )
            self._last_ns = now_ns

    def tokens(self, now_ns: int) -> float:
        """Tokens (bytes) available at ``now_ns``."""
        self._refill(now_ns)
        return self._tokens

    def can_send(self, now_ns: int, nbytes: int) -> bool:
        return self.tokens(now_ns) >= nbytes

    def consume(self, now_ns: int, nbytes: int) -> None:
        """Spend tokens for a departing packet. Caller must check first."""
        self._refill(now_ns)
        if self._tokens < nbytes:
            raise RuntimeError("token bucket overdrawn; call can_send first")
        self._tokens -= nbytes

    def eligible_at(self, now_ns: int, nbytes: int) -> int:
        """Earliest time at which ``nbytes`` tokens will be available.

        Uses ceiling division: when the deficit divides the rate exactly the
        returned instant is exact, not one nanosecond late — an ``int(x)+1``
        rounding here systematically overshoots and drifts a paced credit
        queue below its reserved rate over long runs.
        """
        self._refill(now_ns)
        deficit = nbytes - self._tokens
        if deficit <= 0:
            return now_ns
        rate = self.rate_bps
        wait_ns = math.ceil(deficit * 8.0 * SECONDS / rate)
        # Float guard: make sure the bucket really covers nbytes at the
        # returned instant (the refill at now+wait must not round down).
        if self._tokens + wait_ns * rate / (8.0 * SECONDS) < nbytes:
            wait_ns += 1
        return now_ns + wait_ns
