"""Token-bucket rate limiter for credit-queue pacing.

ExpressPass (and hence FlexPass) rate-limits the credit queue so that the
data packets the credits trigger consume at most the reserved fraction of
the link (§4.1). The limiter is a standard token bucket: tokens accrue at
``rate_bps`` up to ``bucket_bytes``; a packet may depart once the bucket
holds its full size.

Tokens are tracked as exact integers in units of one byte / (8 * SECONDS)
— one unit is what ``rate_bps = 1`` accrues per nanosecond — so refilling
is path-independent: probing ``tokens()`` at intermediate instants can
never change whether ``can_send`` holds at a later instant. The float
implementation this replaces drifted by rounding once per refill, which
broke ``can_send(eligible_at(t, n), n)`` whenever another query touched
the bucket between ``t`` and the wake.
"""

from __future__ import annotations

from repro.sim.units import SECONDS

#: integer token units per byte (unit = smallest accrual of rate_bps=1/ns)
_UNITS_PER_BYTE = 8 * SECONDS


class TokenBucket:
    """Byte-granularity token bucket over the integer-ns clock."""

    __slots__ = ("rate_bps", "bucket_bytes", "_units", "_last_ns")

    def __init__(self, rate_bps: int, bucket_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError("token bucket rate must be positive")
        if bucket_bytes <= 0:
            raise ValueError("token bucket depth must be positive")
        self.rate_bps = int(rate_bps)
        self.bucket_bytes = bucket_bytes
        self._units = bucket_bytes * _UNITS_PER_BYTE
        self._last_ns = 0

    def _refill(self, now_ns: int) -> None:
        if now_ns > self._last_ns:
            self._units = min(
                self.bucket_bytes * _UNITS_PER_BYTE,
                self._units + (now_ns - self._last_ns) * self.rate_bps,
            )
            self._last_ns = now_ns

    def tokens(self, now_ns: int) -> float:
        """Tokens (bytes) available at ``now_ns``."""
        self._refill(now_ns)
        return self._units / _UNITS_PER_BYTE

    def can_send(self, now_ns: int, nbytes: int) -> bool:
        self._refill(now_ns)
        return self._units >= nbytes * _UNITS_PER_BYTE

    def consume(self, now_ns: int, nbytes: int) -> None:
        """Spend tokens for a departing packet. Caller must check first."""
        self._refill(now_ns)
        need = nbytes * _UNITS_PER_BYTE
        if self._units < need:
            raise RuntimeError("token bucket overdrawn; call can_send first")
        self._units -= need

    def eligible_at(self, now_ns: int, nbytes: int) -> int:
        """Earliest time at which ``nbytes`` tokens will be available.

        Exact ceiling division on integers: when the deficit divides the
        rate the returned instant is on the nanosecond (no systematic +1 ns
        that would drift a paced credit queue below its reserved rate), and
        ``can_send(eligible_at(t, n), n)`` always holds, regardless of any
        intermediate refills.
        """
        self._refill(now_ns)
        deficit = nbytes * _UNITS_PER_BYTE - self._units
        if deficit <= 0:
            return now_ns
        return now_ns + (deficit + self.rate_bps - 1) // self.rate_bps
