"""End host: a NIC egress port plus per-flow transport endpoint demux.

The paper treats the NIC as "a special type of edge switch" (§4.3 footnote):
the FlexPass queue configuration (credit queue pacing, DWRR, selective
dropping) applies to the host uplink as well, which the topology builders
honor by constructing host NIC ports with the same queue stack as switch
ports.

The host is also the packet pool's sink: once an endpoint has consumed a
delivered packet (endpoints copy what they need; none retain the object),
the host releases it back to the pool — as it does for strays and for
packets its own NIC refuses (DESIGN.md §6d).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, TYPE_CHECKING

from repro.net.node import Node
from repro.net.packet import Packet, PacketKind, free_packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort
    from repro.sim.engine import Simulator


class Endpoint(Protocol):
    """Anything that can consume packets addressed to a flow endpoint.

    Endpoints are expected to copy what they need out of the packet during
    ``on_packet``; the host recycles it afterwards. An endpoint that instead
    retains the object (test recorders, traces) must set a truthy
    ``retains_packets`` attribute to keep the host's hands off it.
    """

    def on_packet(self, pkt: Packet) -> None: ...


#: Indexed by ``PacketKind`` value: True when the packet is feedback to the
#: *sender* side of a flow (ACK/CREDIT/GRANT), False when the *receiver*
#: consumes it (DATA/CREDIT_REQUEST/CREDIT_STOP). A tuple lookup replaces
#: two frozenset membership tests on the per-delivery path.
_KIND_TO_SENDER = (
    False,  # DATA
    True,   # ACK
    True,   # CREDIT
    False,  # CREDIT_REQUEST
    False,  # CREDIT_STOP
    True,   # GRANT
)
assert len(_KIND_TO_SENDER) == len(PacketKind)


class Host(Node):
    """A server with one uplink."""

    # _phost_allocator: lazily-attached per-host credit allocator singleton
    # (see transports/phost_credits.py); a named slot now that Host has no
    # __dict__. _credit_plane: lazily-attached per-host CreditPlane registry
    # (see transports/credit_plane.py), same pattern.
    __slots__ = ("_senders", "_receivers", "stray_packets", "_nic",
                 "_phost_allocator", "_credit_plane")

    def __init__(self, sim: "Simulator", node_id: int, name: str) -> None:
        super().__init__(sim, node_id, name)
        self._senders: Dict[int, Endpoint] = {}
        self._receivers: Dict[int, Endpoint] = {}
        self.stray_packets = 0
        self._nic: Optional["EgressPort"] = None

    # -------------------------------------------------------------- wiring

    @property
    def nic_port(self) -> "EgressPort":
        """The single uplink port."""
        nic = self._nic
        if nic is None:
            if len(self.ports) != 1:
                raise RuntimeError(f"host {self.name} has {len(self.ports)} ports")
            self._nic = nic = next(iter(self.ports.values()))
        return nic

    def register_sender(self, flow_id: int, endpoint: Endpoint) -> None:
        if flow_id in self._senders:
            raise ValueError(f"flow {flow_id} already has a sender at {self.name}")
        self._senders[flow_id] = endpoint

    def register_receiver(self, flow_id: int, endpoint: Endpoint) -> None:
        if flow_id in self._receivers:
            raise ValueError(f"flow {flow_id} already has a receiver at {self.name}")
        self._receivers[flow_id] = endpoint

    def unregister_sender(self, flow_id: int) -> None:
        self._senders.pop(flow_id, None)

    def unregister_receiver(self, flow_id: int) -> None:
        self._receivers.pop(flow_id, None)

    # ---------------------------------------------------------------- I/O

    def send(self, pkt: Packet) -> bool:
        """Hand a packet to the NIC. Returns False if the NIC dropped it."""
        if self.nic_port.enqueue(pkt):
            return True
        free_packet(pkt)  # refused at admission (e.g., credit-queue cap)
        return False

    def receive(self, pkt: Packet) -> None:
        if _KIND_TO_SENDER[pkt.kind]:
            endpoint = self._senders.get(pkt.flow_id)
        else:
            endpoint = self._receivers.get(pkt.flow_id)
        if endpoint is None:
            # Late feedback for a finished flow (e.g., wasted credits still in
            # flight when the sender deregistered). Expected; just count it.
            self.stray_packets += 1
        else:
            endpoint.on_packet(pkt)
            if getattr(endpoint, "retains_packets", False):
                return
        # The endpoint has copied out what it needs; recycle pooled packets
        # (the guard keeps hand-built packets off the two-call release path).
        if pkt._pooled:
            free_packet(pkt)
