"""End host: a NIC egress port plus per-flow transport endpoint demux.

The paper treats the NIC as "a special type of edge switch" (§4.3 footnote):
the FlexPass queue configuration (credit queue pacing, DWRR, selective
dropping) applies to the host uplink as well, which the topology builders
honor by constructing host NIC ports with the same queue stack as switch
ports.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, TYPE_CHECKING

from repro.net.node import Node
from repro.net.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort
    from repro.sim.engine import Simulator


class Endpoint(Protocol):
    """Anything that can consume packets addressed to a flow endpoint."""

    def on_packet(self, pkt: Packet) -> None: ...


#: Packet kinds that are feedback to the *sender* side of a flow.
_TO_SENDER = frozenset(
    {PacketKind.ACK, PacketKind.CREDIT, PacketKind.GRANT}
)
#: Packet kinds consumed by the *receiver* side of a flow.
_TO_RECEIVER = frozenset(
    {PacketKind.DATA, PacketKind.CREDIT_REQUEST, PacketKind.CREDIT_STOP}
)


class Host(Node):
    """A server with one uplink."""

    def __init__(self, sim: "Simulator", node_id: int, name: str) -> None:
        super().__init__(sim, node_id, name)
        self._senders: Dict[int, Endpoint] = {}
        self._receivers: Dict[int, Endpoint] = {}
        self.stray_packets = 0

    # -------------------------------------------------------------- wiring

    @property
    def nic_port(self) -> "EgressPort":
        """The single uplink port."""
        if len(self.ports) != 1:
            raise RuntimeError(f"host {self.name} has {len(self.ports)} ports")
        return next(iter(self.ports.values()))

    def register_sender(self, flow_id: int, endpoint: Endpoint) -> None:
        if flow_id in self._senders:
            raise ValueError(f"flow {flow_id} already has a sender at {self.name}")
        self._senders[flow_id] = endpoint

    def register_receiver(self, flow_id: int, endpoint: Endpoint) -> None:
        if flow_id in self._receivers:
            raise ValueError(f"flow {flow_id} already has a receiver at {self.name}")
        self._receivers[flow_id] = endpoint

    def unregister_sender(self, flow_id: int) -> None:
        self._senders.pop(flow_id, None)

    def unregister_receiver(self, flow_id: int) -> None:
        self._receivers.pop(flow_id, None)

    # ---------------------------------------------------------------- I/O

    def send(self, pkt: Packet) -> bool:
        """Hand a packet to the NIC. Returns False if the NIC dropped it."""
        return self.nic_port.enqueue(pkt)

    def receive(self, pkt: Packet) -> None:
        if pkt.kind in _TO_SENDER:
            endpoint = self._senders.get(pkt.flow_id)
        elif pkt.kind in _TO_RECEIVER:
            endpoint = self._receivers.get(pkt.flow_id)
        else:  # pragma: no cover - enum is exhaustive today
            endpoint = None
        if endpoint is None:
            # Late feedback for a finished flow (e.g., wasted credits still in
            # flight when the sender deregistered). Expected; just count it.
            self.stray_packets += 1
            return
        endpoint.on_packet(pkt)
