"""Store-and-forward egress port.

The port is where the paper's switch mechanics compose: an arriving packet is
classified by DSCP into one of the port's queues, passes per-queue admission
(selective dropping, static caps), then shared-buffer admission (dynamic
threshold), and finally waits for the two-level scheduler to pick it. The
port serializes exactly one packet at a time onto its link.

Hot-path structure (PR 3): transmissions are *coalesced* — at transmit start
the port schedules the packet's arrival at the far end as one event
(``link.carry_after``) and only schedules a second "wire free" event when
something will actually need the wire at that instant (backlog remains, or a
monitor wants the exact serialization-end callback). A pass-through packet on
an idle port therefore costs one scheduled event per hop instead of two.

Burst dequeue (PR 7): on a pacer-free, monitor-free port a backlog drains in
bursts of up to :data:`EgressPort.BURST` packets per serve event — each
packet's far-end arrival is scheduled at its own cumulative serialization
end, so wire timing is unchanged, but the port pays one Python-level serve
event per burst instead of one per packet (DESIGN.md §6h).
Shared-buffer bytes are released when the packet leaves its queue (transmit
start): the buffer tracks *queued* bytes, the serializer slot is free
(DESIGN.md §6d).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.scheduler import PortScheduler, QueueSchedule
from repro.sim.units import tx_time_ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle, Simulator

#: Called with (now_ns, packet) when a packet finishes serializing.
TxMonitor = Callable[[int, Packet], None]


class EgressPort:
    """An output port: classifier + queues + scheduler + serializer."""

    __slots__ = ("sim", "name", "rate_bps", "buffer", "scheduler", "_queues",
                 "classifier", "link", "monitors", "dropped_unclassified",
                 "_wake_handle", "_serve_pending", "_free_at", "_tx_cache",
                 "_sched_next", "_has_backlog", "_q_unpaced", "_multi",
                 "_batch_ok", "_buf_admit", "_buf_release", "_next_batch")

    #: max packets committed to the wire per serve event (burst dequeue)
    BURST = 8

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        rate_bps: int,
        buffer,  # SharedBuffer or UnlimitedBuffer
        schedules: List[QueueSchedule],
        classifier: Dict[int, int],
        link: Link,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("port rate must be positive")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.buffer = buffer
        self.scheduler = PortScheduler(schedules)
        # The scheduler's ``queues`` property builds a fresh list per call;
        # enqueue runs per packet, so index a cached copy instead.
        self._queues = self.scheduler.queues
        self.classifier = classifier
        self.link = link
        self.monitors: List[TxMonitor] = []
        self.dropped_unclassified = 0
        self._wake_handle: Optional["EventHandle"] = None
        #: a "serve the next packet" event is queued (wire busy + work waiting)
        self._serve_pending = False
        #: the wire is serializing until this instant
        self._free_at = 0
        #: serialization delay per wire size — few distinct sizes per run
        self._tx_cache: Dict[int, int] = {}
        #: bound-method caches; the scheduler and buffer never change after
        #: construction (link splicing swaps ``self.link``, never these)
        self._sched_next = self.scheduler.next
        self._has_backlog = self.scheduler.has_backlog
        self._next_batch = self.scheduler.next_batch
        self._buf_admit = buffer.try_admit
        self._buf_release = buffer.release
        #: per-queue-index flag: eligible for cut-through (no pacer)
        self._q_unpaced = [s.pacer is None for s in schedules]
        self._multi = len(schedules) > 1
        #: burst dequeue is valid only on a fully pacer-free port
        self._batch_ok = self.scheduler.unpaced

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized onto the link."""
        return self.sim._now < self._free_at

    # ------------------------------------------------------------------ RX

    def enqueue(self, pkt: Packet) -> bool:
        """Admit a packet into this port. Returns False if dropped."""
        qidx = self.classifier.get(pkt.dscp)
        if qidx is None:
            # A packet whose class has no queue is a wiring bug in the
            # scenario; dropping silently would mask it.
            raise KeyError(
                f"port {self.name}: no queue configured for DSCP {pkt.dscp}"
            )
        queue = self._queues[qidx]
        now = self.sim._now
        if (not queue._fifo and not self._serve_pending
                and now >= self._free_at
                and self._q_unpaced[qidx] and not self.monitors
                and not (self._multi and self._has_backlog())):
            # Cut-through: idle wire, fully drained port, unpaced target
            # queue, no exact tx-end observers — transmit right away without
            # a FIFO round trip or a scheduler visit. Admission, stats, and
            # ECN marking are byte-identical to the queued path (zero
            # residence time), and with every queue empty the scheduler
            # could only have picked this packet anyway.
            return self._cut_through(qidx, queue, pkt)
        if not (queue.trivial_admit or queue.admit(pkt)):
            return False
        if not self._buf_admit(queue.byte_count, pkt.size):
            queue.count_buffer_drop()
            return False
        queue.push(pkt)
        if self._wake_handle is not None:
            # A new packet can beat a paced queue's projected wake time;
            # re-evaluate from scratch.
            self._wake_handle.cancel()
            self._wake_handle = None
        if not self._serve_pending:
            if now >= self._free_at:
                self._serve()
            else:
                # Wire busy with nothing scheduled at its release (the
                # in-flight packet left an empty backlog behind): arm the
                # serve event this packet now needs.
                self._serve_pending = True
                self.sim.post_at(self._free_at, self._serve_event)
        return True

    def _cut_through(self, qidx: int, queue, pkt: Packet) -> bool:
        """Admit-and-transmit for a packet meeting an idle, empty port."""
        if not (queue.trivial_admit or queue.admit(pkt)):
            return False
        size = pkt.size
        buf = self.buffer
        # Same two checks as ``SharedBuffer.try_admit``, but the pool is
        # never charged: the packet leaves its queue the instant it enters.
        free = buf.capacity - buf.used
        if size > free or size > buf.alpha * free:
            buf.drops += 1
            queue.count_buffer_drop()
            return False
        queue.record_transit(pkt)
        if self._multi:
            self.scheduler.note_cut_through(qidx)
        txt = self._tx_cache.get(size)
        if txt is None:
            txt = tx_time_ns(size, self.rate_bps)
            self._tx_cache[size] = txt
        self._free_at = self.sim._now + txt
        self.link.carry_after(txt, pkt)
        return True

    # ------------------------------------------------------------------ TX

    def _kick(self) -> None:
        """(Re)start the transmit loop if the wire is idle."""
        if self._wake_handle is not None:
            self._wake_handle.cancel()
            self._wake_handle = None
        if not self._serve_pending and self.sim._now >= self._free_at:
            self._serve()

    def _serve_event(self) -> None:
        self._serve_pending = False
        self._serve()

    def _on_wake(self) -> None:
        self._wake_handle = None
        if not self._serve_pending and self.sim._now >= self._free_at:
            self._serve()

    def _serve(self) -> None:
        """Start the next transmission(s). Call only when the wire is idle."""
        sim = self.sim
        now = sim._now
        pkt, wake = self._sched_next(now)
        if pkt is None:
            if wake is not None:
                self._wake_handle = sim.at(max(wake, now), self._on_wake)
            return
        size = pkt.size
        tx_cache = self._tx_cache
        txt = tx_cache.get(size)
        if txt is None:
            txt = tx_time_ns(size, self.rate_bps)
            tx_cache[size] = txt
        # The packet left its queue: its bytes stop counting against the
        # shared buffer now (the buffer limits *queued* bytes).
        self._buf_release(size)
        if self.monitors:
            # Exact serialization-end semantics for monitors: a dedicated
            # tx-done event fires them at the moment the wire goes idle.
            self._free_at = now + txt
            self._serve_pending = True
            sim.post(txt, self._tx_done, pkt)
            return
        link = self.link
        link.carry_after(txt, pkt)
        if self._batch_ok and self._has_backlog():
            # Burst dequeue: commit up to BURST packets back-to-back onto
            # the wire in ONE serve event instead of one event per packet.
            # Each packet's arrival is scheduled at its own serialization
            # end (cumulative offset), so wire timing — and therefore every
            # downstream arrival instant — is identical to serving them one
            # at a time; only the dequeue bookkeeping moves earlier, to the
            # burst start. Valid only because this port has no pacers (the
            # scheduler's pick sequence is time-independent) and no
            # monitors (no exact per-packet tx-end observers).
            buf_release = self._buf_release
            for pkt in self._next_batch(now, self.BURST - 1):
                size = pkt.size
                ptxt = tx_cache.get(size)
                if ptxt is None:
                    ptxt = tx_time_ns(size, self.rate_bps)
                    tx_cache[size] = ptxt
                buf_release(size)
                txt += ptxt
                link.carry_after(txt, pkt)
        self._free_at = now + txt
        if self._has_backlog():
            self._serve_pending = True
            sim.post(txt, self._serve_event)
        # else: coalesced fast path — no tx-done event; the next enqueue
        # (or nothing) decides what happens when the wire frees.

    def _tx_done(self, pkt: Packet) -> None:
        self._serve_pending = False
        now = self.sim.now
        for monitor in self.monitors:
            monitor(now, pkt)
        self.link.carry(pkt)
        self._serve()

    # ------------------------------------------------------------- helpers

    def backlog_bytes(self) -> int:
        return self.scheduler.total_backlog()

    def queue(self, idx: int):
        return self.scheduler.queue(idx)
