"""Store-and-forward egress port.

The port is where the paper's switch mechanics compose: an arriving packet is
classified by DSCP into one of the port's queues, passes per-queue admission
(selective dropping, static caps), then shared-buffer admission (dynamic
threshold), and finally waits for the two-level scheduler to pick it. The
port serializes exactly one packet at a time onto its link.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.scheduler import PortScheduler, QueueSchedule
from repro.sim.units import tx_time_ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle, Simulator

#: Called with (now_ns, packet) when a packet finishes serializing.
TxMonitor = Callable[[int, Packet], None]


class EgressPort:
    """An output port: classifier + queues + scheduler + serializer."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        rate_bps: int,
        buffer,  # SharedBuffer or UnlimitedBuffer
        schedules: List[QueueSchedule],
        classifier: Dict[int, int],
        link: Link,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("port rate must be positive")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.buffer = buffer
        self.scheduler = PortScheduler(schedules)
        # The scheduler's ``queues`` property builds a fresh list per call;
        # enqueue runs per packet, so index a cached copy instead.
        self._queues = self.scheduler.queues
        self.classifier = classifier
        self.link = link
        self.busy = False
        self.monitors: List[TxMonitor] = []
        self.dropped_unclassified = 0
        self._wake_handle: Optional["EventHandle"] = None

    # ------------------------------------------------------------------ RX

    def enqueue(self, pkt: Packet) -> bool:
        """Admit a packet into this port. Returns False if dropped."""
        qidx = self.classifier.get(pkt.dscp)
        if qidx is None:
            # A packet whose class has no queue is a wiring bug in the
            # scenario; dropping silently would mask it.
            raise KeyError(
                f"port {self.name}: no queue configured for DSCP {pkt.dscp}"
            )
        queue = self._queues[qidx]
        if not queue.admit(pkt):
            return False
        if not self.buffer.try_admit(queue.byte_count, pkt.size):
            queue.count_buffer_drop()
            return False
        queue.push(pkt)
        if not self.busy:
            self._kick()
        return True

    # ------------------------------------------------------------------ TX

    def _kick(self) -> None:
        """(Re)start the transmit loop if the wire is idle."""
        if self._wake_handle is not None:
            self._wake_handle.cancel()
            self._wake_handle = None
        self._try_transmit()

    def _try_transmit(self) -> None:
        if self.busy:
            return
        pkt, wake = self.scheduler.next(self.sim.now)
        if pkt is not None:
            self.busy = True
            self.sim.after(tx_time_ns(pkt.size, self.rate_bps), self._tx_done, pkt)
        elif wake is not None:
            self._wake_handle = self.sim.at(max(wake, self.sim.now), self._on_wake)

    def _on_wake(self) -> None:
        self._wake_handle = None
        self._try_transmit()

    def _tx_done(self, pkt: Packet) -> None:
        self.buffer.release(pkt.size)
        self.busy = False
        now = self.sim.now
        for monitor in self.monitors:
            monitor(now, pkt)
        self.link.carry(pkt)
        self._try_transmit()

    # ------------------------------------------------------------- helpers

    def backlog_bytes(self) -> int:
        return self.scheduler.total_backlog()

    def queue(self, idx: int):
        return self.scheduler.queue(idx)
