"""Two-level egress scheduling: strict priority across classes, DWRR within.

This matches the paper's switch configuration (§4.1): the credit queue (Q0)
gets strict high priority plus a token-bucket rate limit; the FlexPass data
queue (Q1) and the legacy queue (Q2) share the residual bandwidth via
Deficit Weighted Round Robin [42].

The scheduler is pull-based: the egress port calls :meth:`PortScheduler.next`
whenever the wire goes idle. The call returns either a packet, or the
earliest future time at which one *could* become eligible (a paced queue
waiting for tokens), or neither (everything empty).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.net.packet import MSS, DATA_HEADER_BYTES, Packet
from repro.net.queues import PacketQueue
from repro.net.ratelimit import TokenBucket

#: DWRR quantum granted per round at weight 1.0 — one full-size data packet,
#: so weighted shares converge within a few rounds.
_BASE_QUANTUM = MSS + DATA_HEADER_BYTES


@dataclass
class QueueSchedule:
    """How one queue participates in scheduling."""

    queue: PacketQueue
    #: Lower number = served first. Queues with equal priority form a DWRR set.
    priority: int = 1
    #: Relative DWRR weight within the priority class.
    weight: float = 1.0
    #: Optional pacer (the ExpressPass credit-queue rate limiter).
    pacer: Optional[TokenBucket] = None


class _DwrrState:
    __slots__ = ("deficit",)

    def __init__(self) -> None:
        self.deficit = 0.0


class PortScheduler:
    """Strict-priority + DWRR scheduler over a fixed set of queues."""

    def __init__(self, schedules: List[QueueSchedule]) -> None:
        if not schedules:
            raise ValueError("a port needs at least one queue")
        self._schedules = schedules
        # Group queue indices by priority, best priority first.
        prios = sorted({s.priority for s in schedules})
        self._classes: List[List[int]] = [
            [i for i, s in enumerate(schedules) if s.priority == p] for p in prios
        ]
        self._dwrr = [_DwrrState() for _ in schedules]
        self._rr_pos = {p: 0 for p in range(len(self._classes))}

    @property
    def queues(self) -> List[PacketQueue]:
        return [s.queue for s in self._schedules]

    def queue(self, idx: int) -> PacketQueue:
        return self._schedules[idx].queue

    def total_backlog(self) -> int:
        return sum(s.queue.byte_count for s in self._schedules)

    def next(self, now_ns: int) -> Tuple[Optional[Packet], Optional[int]]:
        """Pick the next packet to transmit.

        Returns ``(packet, None)`` when a packet is ready, ``(None, t)`` when
        the only backlogged queues are paced and become eligible at ``t``,
        and ``(None, None)`` when all queues are empty.
        """
        wake: Optional[int] = None
        for class_idx, members in enumerate(self._classes):
            backlogged = [i for i in members if not self._schedules[i].queue.empty]
            if not backlogged:
                continue
            pkt, class_wake = self._serve_class(class_idx, members, now_ns)
            if pkt is not None:
                return pkt, None
            if class_wake is not None and (wake is None or class_wake < wake):
                wake = class_wake
            # A higher-priority class that is backlogged-but-paced does NOT
            # block lower classes: the port stays work-conserving (§4.1 —
            # data may use the wire while credits wait for tokens).
        return None, wake

    def _serve_class(
        self, class_idx: int, members: List[int], now_ns: int
    ) -> Tuple[Optional[Packet], Optional[int]]:
        if len(members) == 1:
            return self._serve_single(members[0], now_ns)
        return self._serve_dwrr(class_idx, members, now_ns)

    def _serve_single(
        self, idx: int, now_ns: int
    ) -> Tuple[Optional[Packet], Optional[int]]:
        sched = self._schedules[idx]
        q = sched.queue
        if q.empty:
            return None, None
        head = q.head()
        assert head is not None
        if sched.pacer is not None:
            if not sched.pacer.can_send(now_ns, head.size):
                return None, sched.pacer.eligible_at(now_ns, head.size)
            sched.pacer.consume(now_ns, head.size)
        return q.pop(), None

    def _serve_dwrr(
        self, class_idx: int, members: List[int], now_ns: int
    ) -> Tuple[Optional[Packet], Optional[int]]:
        """One-packet-at-a-time Deficit Round Robin.

        Empty queues forfeit their deficit (classic DRR), so an idle
        transport cannot bank credit and later burst past its weight.
        """
        pos = self._rr_pos[class_idx]
        n = len(members)
        wake: Optional[int] = None
        # Each pass over the backlogged set adds one quantum; with at least
        # one backlogged unpaced queue this terminates in O(max_pkt/quantum)
        # passes. Paced queues can postpone service, hence the wake fallback.
        for _ in range(n * 64):
            idx = members[pos % n]
            sched = self._schedules[idx]
            q = sched.queue
            state = self._dwrr[idx]
            if q.empty:
                state.deficit = 0.0
                pos += 1
                continue
            head = q.head()
            assert head is not None
            if state.deficit >= head.size:
                if sched.pacer is not None:
                    if not sched.pacer.can_send(now_ns, head.size):
                        t = sched.pacer.eligible_at(now_ns, head.size)
                        if wake is None or t < wake:
                            wake = t
                        pos += 1
                        continue
                    sched.pacer.consume(now_ns, head.size)
                state.deficit -= head.size
                pkt = q.pop()
                if q.empty:
                    state.deficit = 0.0
                    pos += 1
                self._rr_pos[class_idx] = pos % n
                return pkt, None
            state.deficit += _BASE_QUANTUM * sched.weight
            pos += 1
        # Only reachable when every backlogged queue in the class is paced
        # and short of tokens.
        self._rr_pos[class_idx] = pos % n
        return None, wake
