"""Two-level egress scheduling: strict priority across classes, DWRR within.

This matches the paper's switch configuration (§4.1): the credit queue (Q0)
gets strict high priority plus a token-bucket rate limit; the FlexPass data
queue (Q1) and the legacy queue (Q2) share the residual bandwidth via
Deficit Weighted Round Robin [42].

The scheduler is pull-based: the egress port calls :meth:`PortScheduler.next`
whenever the wire goes idle. The call returns either a packet, or the
earliest future time at which one *could* become eligible (a paced queue
waiting for tokens), or neither (everything empty).

``next`` runs once per transmitted packet, so it allocates nothing: each
priority class keeps a backlog counter that the member queues update on the
empty/non-empty transitions of ``push``/``pop`` (see
:meth:`repro.net.queues.PacketQueue.set_backlog_watcher`), and the DWRR loop
catches a starved small-weight queue up in O(1) bulk steps instead of one
quantum per pass (see :meth:`_serve_dwrr`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.net.packet import MSS, DATA_HEADER_BYTES, Packet
from repro.net.queues import PacketQueue
from repro.net.ratelimit import TokenBucket

#: DWRR quantum granted per round at weight 1.0 — one full-size data packet,
#: so weighted shares converge within a few rounds.
_BASE_QUANTUM = MSS + DATA_HEADER_BYTES


@dataclass
class QueueSchedule:
    """How one queue participates in scheduling."""

    queue: PacketQueue
    #: Lower number = served first. Queues with equal priority form a DWRR set.
    priority: int = 1
    #: Relative DWRR weight within the priority class. Must be positive.
    weight: float = 1.0
    #: Optional pacer (the ExpressPass credit-queue rate limiter).
    pacer: Optional[TokenBucket] = None


class _DwrrState:
    __slots__ = ("deficit",)

    def __init__(self) -> None:
        self.deficit = 0.0


class PortScheduler:
    """Strict-priority + DWRR scheduler over a fixed set of queues.

    The scheduler takes ownership of its queues' backlog watcher slot; a
    :class:`PacketQueue` can belong to at most one scheduler.
    """

    __slots__ = ("_schedules", "_classes", "_dwrr", "_rr_pos", "_backlog",
                 "_class_of", "_pos_of", "_sole_idx", "_sole_queue",
                 "_sole_unpaced", "unpaced")

    def __init__(self, schedules: List[QueueSchedule]) -> None:
        if not schedules:
            raise ValueError("a port needs at least one queue")
        for s in schedules:
            if s.weight <= 0:
                raise ValueError(
                    f"queue weight must be positive, got {s.weight} "
                    f"(a zero-weight queue would never accumulate deficit)"
                )
        self._schedules = schedules
        # Group queue indices by priority, best priority first.
        prios = sorted({s.priority for s in schedules})
        self._classes: List[List[int]] = [
            [i for i, s in enumerate(schedules) if s.priority == p] for p in prios
        ]
        self._dwrr = [_DwrrState() for _ in schedules]
        self._rr_pos = [0] * len(self._classes)
        # Per-class count of non-empty member queues, maintained by watcher
        # callbacks on the queues' empty/non-empty transitions so ``next``
        # never scans (or allocates a list of) the members.
        self._backlog = [0] * len(self._classes)
        for class_idx, members in enumerate(self._classes):
            for i in members:
                q = schedules[i].queue
                if not q.empty:
                    self._backlog[class_idx] += 1
                q.set_backlog_watcher(self._make_watcher(class_idx))
        #: reverse maps for :meth:`note_cut_through`
        self._class_of = [0] * len(schedules)
        self._pos_of = [0] * len(schedules)
        for class_idx, members in enumerate(self._classes):
            for pos, i in enumerate(members):
                self._class_of[i] = class_idx
                self._pos_of[i] = pos
        #: fast path: the ubiquitous single-queue port skips classing entirely
        self._sole_idx: Optional[int] = 0 if len(schedules) == 1 else None
        self._sole_queue: Optional[PacketQueue] = (
            schedules[0].queue if len(schedules) == 1 else None
        )
        self._sole_unpaced = (self._sole_queue is not None
                              and schedules[0].pacer is None)
        #: no queue is paced anywhere: ``next(now)`` is time-independent,
        #: which is what makes batched dequeue (:meth:`next_batch`) valid
        self.unpaced = all(s.pacer is None for s in schedules)

    def _make_watcher(self, class_idx: int):
        backlog = self._backlog

        def watcher(nonempty: bool) -> None:
            backlog[class_idx] += 1 if nonempty else -1

        return watcher

    @property
    def queues(self) -> List[PacketQueue]:
        return [s.queue for s in self._schedules]

    @property
    def schedules(self) -> Tuple[QueueSchedule, ...]:
        """The queue/priority/weight/pacer rows, in queue-index order
        (read-only view for instrumentation such as telemetry)."""
        return tuple(self._schedules)

    def queue(self, idx: int) -> PacketQueue:
        return self._schedules[idx].queue

    def total_backlog(self) -> int:
        return sum(s.queue.byte_count for s in self._schedules)

    def has_backlog(self) -> bool:
        """True when any queue holds at least one packet. O(#classes), no
        allocation — the egress port calls this once per transmission."""
        if self._sole_queue is not None:
            return not self._sole_queue.empty
        for count in self._backlog:
            if count:
                return True
        return False

    def next(self, now_ns: int) -> Tuple[Optional[Packet], Optional[int]]:
        """Pick the next packet to transmit.

        Returns ``(packet, None)`` when a packet is ready, ``(None, t)`` when
        the only backlogged queues are paced and become eligible at ``t``,
        and ``(None, None)`` when all queues are empty.
        """
        if self._sole_unpaced:
            # Single unpaced queue (every switch port in the legacy/baseline
            # configs): a bare pop, no classing, no pacer bookkeeping.
            q = self._sole_queue
            if q._fifo:
                return q.pop(), None
            return None, None
        if self._sole_idx is not None:
            return self._serve_single(self._sole_idx, now_ns)
        wake: Optional[int] = None
        backlog = self._backlog
        for class_idx, members in enumerate(self._classes):
            if not backlog[class_idx]:
                continue
            if len(members) == 1:
                pkt, class_wake = self._serve_single(members[0], now_ns)
            else:
                pkt, class_wake = self._serve_dwrr(class_idx, members, now_ns)
            if pkt is not None:
                return pkt, None
            if class_wake is not None and (wake is None or class_wake < wake):
                wake = class_wake
            # A higher-priority class that is backlogged-but-paced does NOT
            # block lower classes: the port stays work-conserving (§4.1 —
            # data may use the wire while credits wait for tokens).
        return None, wake

    def note_cut_through(self, idx: int) -> None:
        """Reproduce the state a one-packet serve through an otherwise-empty
        port would leave: the DWRR position advances past the served queue.
        (Deficits need no touch-up — every queue was empty, so every deficit
        was already forfeited to zero, and a serve that immediately drains
        its queue resets the survivor's deficit to zero as well.)"""
        class_idx = self._class_of[idx]
        members = self._classes[class_idx]
        n = len(members)
        if n > 1:
            self._rr_pos[class_idx] = (self._pos_of[idx] + 1) % n

    def next_batch(self, now_ns: int, limit: int) -> List[Packet]:
        """Dequeue up to ``limit`` ready packets at one instant.

        Valid only on a pacer-free scheduler (``unpaced``): without pacers,
        :meth:`next` depends on queue state alone — never on ``now_ns`` —
        so repeated calls at a fixed instant pick exactly the packets that
        consecutive single dequeues at later instants would have picked.
        With a pacer in play that equivalence breaks (tokens accrue between
        transmissions), so the egress port never batches a paced port.
        """
        q = self._sole_queue
        if q is not None and self._sole_unpaced:
            # The ubiquitous single-queue port: bare pops, no classing.
            batch = []
            while q._fifo and len(batch) < limit:
                batch.append(q.pop())
            return batch
        batch = []
        while len(batch) < limit:
            pkt, _ = self.next(now_ns)
            if pkt is None:
                break
            batch.append(pkt)
        return batch

    def _serve_single(
        self, idx: int, now_ns: int
    ) -> Tuple[Optional[Packet], Optional[int]]:
        sched = self._schedules[idx]
        q = sched.queue
        head = q.head()
        if head is None:
            return None, None
        pacer = sched.pacer
        if pacer is not None:
            if not pacer.can_send(now_ns, head.size):
                return None, pacer.eligible_at(now_ns, head.size)
            pacer.consume(now_ns, head.size)
        return q.pop(), None

    def _serve_dwrr(
        self, class_idx: int, members: List[int], now_ns: int
    ) -> Tuple[Optional[Packet], Optional[int]]:
        """One-packet-at-a-time Deficit Round Robin.

        Empty queues forfeit their deficit (classic DRR), so an idle
        transport cannot bank credit and later burst past its weight.

        Each full round over the members adds one ``quantum × weight`` to
        every backlogged queue still short of its head packet. Rather than
        iterating those rounds one by one — a weight-0.01 queue needs ~100
        of them per MTU, which used to overrun a fixed pass budget and
        wedge the port — a round that serves nothing is followed by a bulk
        catch-up that advances every backlogged queue's deficit by the
        number of empty rounds still needed, computed in closed form. The
        loop therefore terminates in O(1) rounds regardless of weights:
        either some queue's head becomes serveable, or every backlogged
        queue is paced-and-short-of-tokens and a wake time is returned.
        """
        pos = self._rr_pos[class_idx]
        n = len(members)
        wake: Optional[int] = None
        schedules = self._schedules
        dwrr = self._dwrr
        if n == 2:
            # Solo-backlog fast path: with one member empty, the round loop
            # below degenerates — the empty queue forfeits its deficit every
            # round while the survivor accumulates quanta until its head is
            # covered. Both effects have closed forms, so compute them
            # directly; the resulting deficits and rr position are
            # bit-identical to running the rounds one by one.
            i0, i1 = members
            f0 = schedules[i0].queue._fifo
            f1 = schedules[i1].queue._fifo
            if bool(f0) != bool(f1):
                solo, idle = (i0, i1) if f0 else (i1, i0)
                sched = schedules[solo]
                if sched.pacer is None:
                    dwrr[idle].deficit = 0.0
                    state = dwrr[solo]
                    q = sched.queue
                    size = q.head().size
                    d = state.deficit
                    if d < size:
                        quantum = _BASE_QUANTUM * sched.weight
                        d += math.ceil((size - d) / quantum) * quantum
                    state.deficit = d - size
                    pkt = q.pop()
                    pos = members.index(solo)
                    if q.empty:
                        state.deficit = 0.0
                        pos += 1
                    self._rr_pos[class_idx] = pos % n
                    return pkt, None
        while True:
            progressed = False  # any deficit grew this round
            for _ in range(n):
                idx = members[pos % n]
                sched = schedules[idx]
                q = sched.queue
                state = dwrr[idx]
                head = q.head()
                if head is None:
                    state.deficit = 0.0
                    pos += 1
                    continue
                if state.deficit < head.size:
                    state.deficit += _BASE_QUANTUM * sched.weight
                    progressed = True
                    pos += 1
                    continue
                pacer = sched.pacer
                if pacer is not None:
                    if not pacer.can_send(now_ns, head.size):
                        t = pacer.eligible_at(now_ns, head.size)
                        if wake is None or t < wake:
                            wake = t
                        pos += 1
                        continue
                    pacer.consume(now_ns, head.size)
                state.deficit -= head.size
                pkt = q.pop()
                if q.empty:
                    state.deficit = 0.0
                    pos += 1
                self._rr_pos[class_idx] = pos % n
                return pkt, None
            if not progressed:
                # Every backlogged queue already holds enough deficit but is
                # paced and short of tokens: report the earliest wake time.
                self._rr_pos[class_idx] = pos % n
                return None, wake
            # Bulk catch-up: the smallest number of further whole rounds any
            # backlogged queue needs before its deficit covers its head.
            rounds: Optional[int] = None
            for idx in members:
                sched = schedules[idx]
                head = sched.queue.head()
                if head is None:
                    continue
                need = head.size - dwrr[idx].deficit
                if need <= 0:
                    if sched.pacer is None:
                        # An unpaced queue that crossed its head size after
                        # its visit this round serves on the very next one:
                        # there are no empty rounds to skip.
                        rounds = 1
                        break
                    # Paced and short of tokens: it cannot serve at this
                    # instant no matter how many rounds pass — it does not
                    # bound the jump.
                    continue
                r = math.ceil(need / (_BASE_QUANTUM * sched.weight))
                if rounds is None or r < rounds:
                    rounds = r
            if rounds is not None and rounds > 1:
                # Only queues still short of their head accumulate in the
                # skipped rounds (a paced queue with sufficient deficit does
                # not bank further quanta round over round), and by choice of
                # ``rounds`` none of them crosses its head size early, so the
                # jump is exactly equivalent to running the rounds one by one.
                extra = rounds - 1
                for idx in members:
                    sched = schedules[idx]
                    head = sched.queue.head()
                    state = dwrr[idx]
                    if head is not None and state.deficit < head.size:
                        state.deficit += extra * _BASE_QUANTUM * sched.weight
