"""Switch: routes packets to egress ports via ECMP over shortest paths."""

from __future__ import annotations

from typing import Dict, Tuple, TYPE_CHECKING

from repro.net.node import Node
from repro.net.packet import free_packet
from repro.net.routing import ecmp_index

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.buffering import SharedBuffer
    from repro.net.packet import Packet
    from repro.net.port import EgressPort
    from repro.sim.engine import Simulator


class Switch(Node):
    """A shared-buffer switch.

    Routing state (``next_hops``) is installed by the topology after all
    links exist. All egress ports of the switch draw from one shared buffer,
    which is what makes the dynamic-threshold scheme meaningful.

    ``install_routes`` precomputes two per-destination fast tables so the
    per-packet path never recomputes ECMP for single-path destinations and
    never chases ``ports[peer]`` dict lookups: destinations with one next
    hop map straight to their egress port, multi-hop destinations to a tuple
    of ports indexed by the symmetric ECMP hash.
    """

    __slots__ = ("buffer", "next_hops", "ecmp_salt", "routing_failures",
                 "_route_single", "_route_multi")

    def __init__(
        self, sim: "Simulator", node_id: int, name: str, buffer: "SharedBuffer"
    ) -> None:
        super().__init__(sim, node_id, name)
        self.buffer = buffer
        #: destination host id -> sorted tuple of next-hop peer node ids
        self.next_hops: Dict[int, Tuple[int, ...]] = {}
        #: fabric tier (ToR=1, agg=2, core=3): decorrelates ECMP decisions
        #: across tiers while keeping forward/reverse paths mirrored.
        self.ecmp_salt = 0
        self.routing_failures = 0
        #: dst -> egress port, for destinations with exactly one next hop
        self._route_single: Dict[int, "EgressPort"] = {}
        #: dst -> tuple of egress ports (ECMP members, sorted by peer id)
        self._route_multi: Dict[int, Tuple["EgressPort", ...]] = {}

    def install_routes(self, next_hops: Dict[int, Tuple[int, ...]]) -> None:
        """Set the next-hop table and rebuild the per-packet fast tables."""
        self.next_hops = next_hops
        single: Dict[int, "EgressPort"] = {}
        multi: Dict[int, Tuple["EgressPort", ...]] = {}
        ports = self.ports
        for dst, hops in next_hops.items():
            if len(hops) == 1:
                single[dst] = ports[hops[0]]
            else:
                multi[dst] = tuple(ports[peer] for peer in hops)
        self._route_single = single
        self._route_multi = multi

    def receive(self, pkt: "Packet") -> None:
        dst = pkt.dst
        port = self._route_single.get(dst)
        if port is None:
            choices = self._route_multi.get(dst)
            if choices is None:
                # Indicates broken topology wiring; make it loud in stats but
                # do not crash a long sweep for one stray packet.
                self.routing_failures += 1
                free_packet(pkt)
                return
            port = choices[ecmp_index(pkt.flow_id, pkt.src, dst, len(choices),
                                      self.ecmp_salt)]
        if not port.enqueue(pkt):
            free_packet(pkt)  # dropped at admission; the queue counted it
