"""Switch: routes packets to egress ports via ECMP over shortest paths."""

from __future__ import annotations

from typing import Dict, Tuple, TYPE_CHECKING

from repro.net.node import Node
from repro.net.routing import ecmp_index

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.buffering import SharedBuffer
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator


class Switch(Node):
    """A shared-buffer switch.

    Routing state (``next_hops``) is installed by the topology after all
    links exist. All egress ports of the switch draw from one shared buffer,
    which is what makes the dynamic-threshold scheme meaningful.
    """

    def __init__(
        self, sim: "Simulator", node_id: int, name: str, buffer: "SharedBuffer"
    ) -> None:
        super().__init__(sim, node_id, name)
        self.buffer = buffer
        #: destination host id -> sorted tuple of next-hop peer node ids
        self.next_hops: Dict[int, Tuple[int, ...]] = {}
        #: fabric tier (ToR=1, agg=2, core=3): decorrelates ECMP decisions
        #: across tiers while keeping forward/reverse paths mirrored.
        self.ecmp_salt = 0
        self.routing_failures = 0

    def receive(self, pkt: "Packet") -> None:
        hops = self.next_hops.get(pkt.dst)
        if not hops:
            # Indicates broken topology wiring; make it loud in stats but do
            # not crash a long sweep for one stray packet.
            self.routing_failures += 1
            return
        peer = hops[ecmp_index(pkt.flow_id, pkt.src, pkt.dst, len(hops),
                               self.ecmp_salt)]
        self.ports[peer].enqueue(pkt)
