"""Per-queue admission, marking, and accounting.

A :class:`PacketQueue` implements the paper's per-queue switch features:

* **RED/ECN marking** — instantaneous-queue-length marking as DCTCP
  configures it (mark when the post-enqueue occupancy exceeds K), with an
  optional RED ramp.
* **Selective (color-aware) dropping** — RED-colored packets are dropped
  once the queue's red-byte occupancy crosses a threshold, while GREEN
  packets survive until the whole queue hits its cap (§4.1, §5).
* **Static byte cap** — e.g., the <1 kB credit-queue buffer ExpressPass
  requires.

Shared-buffer dynamic thresholds live one level up (:mod:`repro.net.buffering`)
because they need switch-wide state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.net.packet import Color, Packet


@dataclass
class QueueConfig:
    """Configuration of one egress queue."""

    name: str = "q"
    #: Static byte cap; ``None`` means only the shared buffer limits growth.
    capacity_bytes: Optional[int] = None
    #: ECN marking threshold in bytes (DCTCP K). ``None`` disables marking.
    ecn_threshold_bytes: Optional[int] = None
    #: If set, RED-style probabilistic marking ramps from ``ecn_threshold``
    #: to ``red_max_bytes``; otherwise marking is a hard threshold.
    red_max_bytes: Optional[int] = None
    #: Selective-dropping threshold for RED-colored bytes. ``None`` disables.
    selective_drop_bytes: Optional[int] = None


@dataclass
class QueueStats:
    """Drop/mark counters, exposed to experiments."""

    enqueued: int = 0
    dequeued: int = 0
    dropped_cap: int = 0
    dropped_selective: int = 0
    dropped_buffer: int = 0
    ecn_marked: int = 0
    bytes_enqueued: int = 0
    max_bytes: int = 0
    max_red_bytes: int = 0


class PacketQueue:
    """A FIFO byte queue with ECN marking and selective dropping."""

    __slots__ = ("config", "stats", "_fifo", "byte_count", "red_bytes",
                 "_mark_rng", "_backlog_watcher", "_marking", "trivial_admit")

    def __init__(self, config: QueueConfig, mark_rng=None) -> None:
        self.config = config
        self.stats = QueueStats()
        self._fifo: Deque[Packet] = deque()
        self.byte_count = 0
        self.red_bytes = 0
        self._mark_rng = mark_rng  # only needed when red_max_bytes is set
        self._backlog_watcher = None
        #: precomputed so the per-push path skips a call when ECN is off
        self._marking = config.ecn_threshold_bytes is not None
        #: with no cap and no selective threshold, admit() is identically
        #: True — the egress port skips the call on its per-packet path
        self.trivial_admit = (config.capacity_bytes is None
                              and config.selective_drop_bytes is None)

    def set_backlog_watcher(self, watcher) -> None:
        """Register ``watcher(nonempty: bool)``, called on every transition
        between empty and non-empty. A scheduler uses this to keep per-class
        backlog counts without scanning its queues on each dequeue; a queue
        supports at most one watcher (re-registering replaces it)."""
        self._backlog_watcher = watcher

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def empty(self) -> bool:
        return not self._fifo

    def head(self) -> Optional[Packet]:
        return self._fifo[0] if self._fifo else None

    def admit(self, pkt: Packet) -> bool:
        """Run this queue's own admission checks (not the shared buffer).

        Returns False (and counts the drop) if the packet must be discarded.
        """
        cfg = self.config
        if cfg.selective_drop_bytes is not None and pkt.color == Color.RED:
            if self.red_bytes + pkt.size > cfg.selective_drop_bytes:
                self.stats.dropped_selective += 1
                return False
        if cfg.capacity_bytes is not None:
            if self.byte_count + pkt.size > cfg.capacity_bytes:
                self.stats.dropped_cap += 1
                return False
        return True

    def push(self, pkt: Packet) -> None:
        """Enqueue an admitted packet, applying ECN marking."""
        if self._marking and pkt.ecn_capable:
            self._maybe_mark(pkt)
        self._fifo.append(pkt)
        if len(self._fifo) == 1 and self._backlog_watcher is not None:
            self._backlog_watcher(True)
        self.byte_count += pkt.size
        if pkt.color == Color.RED:
            self.red_bytes += pkt.size
        st = self.stats
        st.enqueued += 1
        st.bytes_enqueued += pkt.size
        if self.byte_count > st.max_bytes:
            st.max_bytes = self.byte_count
        if self.red_bytes > st.max_red_bytes:
            st.max_red_bytes = self.red_bytes

    def pop(self) -> Packet:
        """Dequeue the head packet."""
        pkt = self._fifo.popleft()
        if not self._fifo and self._backlog_watcher is not None:
            self._backlog_watcher(False)
        self.byte_count -= pkt.size
        if pkt.color == Color.RED:
            self.red_bytes -= pkt.size
        self.stats.dequeued += 1
        return pkt

    def count_buffer_drop(self) -> None:
        """Record a drop decided by the shared-buffer manager."""
        self.stats.dropped_buffer += 1

    def record_transit(self, pkt: Packet) -> None:
        """Account for a packet that passes straight through this queue with
        zero residence time (the egress port's cut-through fast path).

        Produces exactly the counters and ECN marking a ``push`` followed by
        an immediate ``pop`` would, without touching the FIFO or the
        backlog watcher (the queue never becomes non-empty).
        """
        if self._marking and pkt.ecn_capable:
            self._maybe_mark(pkt)
        size = pkt.size
        st = self.stats
        st.enqueued += 1
        st.dequeued += 1
        st.bytes_enqueued += size
        occupancy = self.byte_count + size
        if occupancy > st.max_bytes:
            st.max_bytes = occupancy
        if pkt.color == Color.RED:
            red = self.red_bytes + size
            if red > st.max_red_bytes:
                st.max_red_bytes = red

    def _maybe_mark(self, pkt: Packet) -> None:
        cfg = self.config
        if cfg.ecn_threshold_bytes is None or not pkt.ecn_capable:
            return
        # DCTCP marking rule: mark when the instantaneous queue length
        # *including the arriving packet* exceeds K (strictly greater — a
        # queue sitting exactly at K is not over threshold).
        occupancy = self.byte_count + pkt.size
        if cfg.red_max_bytes is not None and cfg.red_max_bytes > cfg.ecn_threshold_bytes:
            # RED ramp: linear marking probability between min and max.
            if occupancy <= cfg.ecn_threshold_bytes:
                return
            if occupancy < cfg.red_max_bytes:
                span = cfg.red_max_bytes - cfg.ecn_threshold_bytes
                prob = (occupancy - cfg.ecn_threshold_bytes) / span
                if self._mark_rng is None or self._mark_rng.random() >= prob:
                    return
            # above red_max: always mark
        elif occupancy <= cfg.ecn_threshold_bytes:
            return
        pkt.ce = True
        self.stats.ecn_marked += 1
