"""Instantiate a :class:`TopologySpec` into a wired, routed fabric.

``build_from_spec`` reuses the exact ``Topology.add_host / add_switch /
connect`` machinery the hand-written builders use, so a Clos expressed as a
spec (see :func:`clos_to_topology_spec`) creates nodes in the same order,
gets the same node ids, and therefore reproduces the hand-built audit
digests bit for bit.

The returned :class:`FabricHandle` duck-types :class:`repro.net.topology.Clos`
where the experiment runner needs it (``topo``, ``hosts``, ``racks()``,
``rack_of``, ``tor_uplinks()``) and adds ontology lookups: named nodes,
inter-region backbone links, and site/region groupings for locality-aware
workloads and fault plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.fabric.spec import LinkSpec, NodeSpec, SiteSpec, TopologySpec
from repro.net.host import Host
from repro.net.port import EgressPort
from repro.net.switch import Switch
from repro.net.topology import ClosSpec, QueueFactory, Topology
from repro.sim.engine import Simulator

__all__ = ["FabricHandle", "build_from_spec", "clos_to_topology_spec"]


@dataclass
class FabricHandle:
    """A built declarative fabric with ontology-aware lookups."""

    topo: Topology
    spec: TopologySpec
    _racks: List[List[Host]] = field(default_factory=list)
    _rack_tors: List[Switch] = field(default_factory=list)
    _rack_index: Dict[int, int] = field(default_factory=dict)  # host id -> rack

    # ------------------------------------------------ runner duck-typing

    @property
    def hosts(self) -> List[Host]:
        return self.topo.hosts

    def racks(self) -> List[List[Host]]:
        """Hosts grouped by their access switch, in switch-creation order."""
        return self._racks

    def rack_of(self, host: Host) -> int:
        try:
            return self._rack_index[host.id]
        except KeyError:
            raise ValueError(f"host {host.name} not in any rack") from None

    def tor_uplinks(self) -> List[EgressPort]:
        """Access-switch -> upstream-switch ports (core-load taps)."""
        ports = []
        for tor in self._rack_tors:
            for peer in self.topo.neighbors(tor):
                if isinstance(peer, Switch):
                    ports.append(self.topo.port(tor, peer))
        return ports

    # -------------------------------------------------- ontology lookups

    def node(self, name: str):
        return self.topo.node_by_name(name)

    def site_of(self, name: str) -> str:
        return self.spec.site_of(name)

    def region_of(self, name: str) -> str:
        return self.spec.region_of(name)

    def inter_region_links(self) -> Tuple[LinkSpec, ...]:
        return self.spec.inter_region_links()

    def hosts_by_region(self) -> Dict[str, List[Host]]:
        """Region -> hosts, in host-creation order (regionless under '')."""
        out: Dict[str, List[Host]] = {}
        for node in self.spec.nodes:
            if node.kind != "host":
                continue
            region = self.spec.region_of_site(node.site)
            out.setdefault(region, []).append(self.topo.node_by_name(node.name))
        return out

    @property
    def access_rate_bps(self) -> int:
        return self.spec.access_rate_bps()


def build_from_spec(
    sim: Simulator, make_queues: QueueFactory, spec: Optional[TopologySpec] = None
) -> FabricHandle:
    """Wire up a validated :class:`TopologySpec` and compute routes.

    Nodes are created in spec order (node ids — and hence audit digests and
    ECMP hashes — follow the spec), switches get ``ecmp_salt`` from their
    tier, and site/region groupings are published on
    ``Topology.node_groups`` so fault plans can address whole sites.
    """
    if spec is None:
        raise ValueError("build_from_spec requires an explicit TopologySpec")
    spec.validate()
    topo = Topology(sim, make_queues)
    for node in spec.nodes:
        if node.kind == "host":
            topo.add_host(node.name)
        else:
            sw = topo.add_switch(node.name, node.buffer_bytes, node.buffer_alpha)
            if node.tier:
                sw.ecmp_salt = node.tier
    for link in spec.links:
        topo.connect(topo.node_by_name(link.a), topo.node_by_name(link.b),
                     link.rate_bps, link.delay_ns)
    topo.finalize()

    # Site/region groups for ontology-addressed fault plans.
    by_site: Dict[str, List[str]] = {}
    by_region: Dict[str, List[str]] = {}
    for node in spec.nodes:
        if node.site:
            by_site.setdefault(node.site, []).append(node.name)
            region = spec.region_of_site(node.site)
            if region:
                by_region.setdefault(region, []).append(node.name)
    for site, members in by_site.items():
        topo.node_groups[f"site:{site}"] = tuple(members)
    for region, members in by_region.items():
        topo.node_groups[f"region:{region}"] = tuple(members)

    handle = FabricHandle(topo, spec)
    _index_racks(handle)
    return handle


def _index_racks(handle: FabricHandle) -> None:
    """Group hosts under their access switch, ordered by switch id.

    Matches ``Clos.racks()`` (which sorts ``hosts_by_tor`` by ToR id) so a
    Clos-shaped spec yields identical rack ordering for deployment plans.
    """
    topo = handle.topo
    by_tor: Dict[int, List[Host]] = {}
    tor_by_id: Dict[int, Switch] = {}
    for host in topo.hosts:
        access = [p for p in topo.neighbors(host) if isinstance(p, Switch)]
        if not access:
            continue  # isolated host: validated specs can't produce this
        tor = access[0]
        by_tor.setdefault(tor.id, []).append(host)
        tor_by_id[tor.id] = tor
    for tor_id in sorted(by_tor):
        rack_idx = len(handle._racks)
        handle._racks.append(by_tor[tor_id])
        handle._rack_tors.append(tor_by_id[tor_id])
        for host in by_tor[tor_id]:
            handle._rack_index[host.id] = rack_idx


def clos_to_topology_spec(clos: ClosSpec, name: str = "clos") -> TopologySpec:
    """Express a :class:`ClosSpec` as a declarative spec.

    Node emission order mirrors ``build_clos`` exactly — cores first, then
    per pod: aggs, ToRs, then each ToR's hosts — so ``build_from_spec``
    assigns identical node ids and the fabrics are digest-equivalent.
    """
    nodes: List[NodeSpec] = []
    links: List[LinkSpec] = []
    n_cores = clos.aggs_per_pod * clos.cores_per_group

    def switch(sw_name: str, tier: int) -> None:
        nodes.append(NodeSpec(name=sw_name, kind="switch", tier=tier,
                              buffer_bytes=clos.buffer_bytes,
                              buffer_alpha=clos.buffer_alpha))

    for c in range(n_cores):
        switch(f"core{c}", tier=3)
    host_delay = clos.link_delay_ns + clos.host_delay_ns
    for p in range(clos.n_pods):
        for a in range(clos.aggs_per_pod):
            switch(f"agg{p}.{a}", tier=2)
        for t in range(clos.tors_per_pod):
            switch(f"tor{p}.{t}", tier=1)
        for a in range(clos.aggs_per_pod):
            for g in range(clos.cores_per_group):
                links.append(LinkSpec(
                    a=f"agg{p}.{a}", b=f"core{a * clos.cores_per_group + g}",
                    rate_bps=clos.rate_bps, delay_ns=clos.link_delay_ns))
        for t in range(clos.tors_per_pod):
            for a in range(clos.aggs_per_pod):
                links.append(LinkSpec(
                    a=f"tor{p}.{t}", b=f"agg{p}.{a}",
                    rate_bps=clos.rate_bps, delay_ns=clos.link_delay_ns))
            for h in range(clos.hosts_per_tor):
                host_name = f"h{p}.{t}.{h}"
                nodes.append(NodeSpec(name=host_name, kind="host"))
                links.append(LinkSpec(
                    a=host_name, b=f"tor{p}.{t}",
                    rate_bps=clos.rate_bps, delay_ns=host_delay))
    return TopologySpec(name=name, nodes=tuple(nodes),
                        links=tuple(links)).validate()
