"""Declarative topology ingestion: the ontology, loaders, and builder.

Importing this package registers the "fabric" topology kind, so
``repro.net.topology.build("fabric", sim, make_queues, spec)`` works — the
registry also imports it lazily on first use of that kind.
"""

from repro.net.fabric.build import FabricHandle, build_from_spec, clos_to_topology_spec
from repro.net.fabric.spec import (
    LinkSpec,
    NodeSpec,
    SiteSpec,
    TopologySpec,
    TopologySpecError,
    load_topology_spec,
    parse_delay_ns,
    parse_rate_bps,
)
from repro.net.topology import register_topology

__all__ = [
    "FabricHandle",
    "LinkSpec",
    "NodeSpec",
    "SiteSpec",
    "TopologySpec",
    "TopologySpecError",
    "build_from_spec",
    "clos_to_topology_spec",
    "load_topology_spec",
    "parse_delay_ns",
    "parse_rate_bps",
]

# replace=True keeps importlib.reload / repeated imports idempotent.
register_topology("fabric", TopologySpec, build_from_spec, replace=True)
