"""Declarative topology ontology: sites, nodes, links.

The schema follows the autonomous-network ontology style — typed tables of
data centers, routers, and transport links with capacities and latencies —
flattened into three frozen dataclasses:

* :class:`SiteSpec` — a named site (data center) with an optional region.
* :class:`NodeSpec` — a host or switch, optionally placed at a site; the
  ``tier`` doubles as the switch's ECMP salt (ToR=1, agg=2, core=3).
* :class:`LinkSpec` — an undirected link with rate/delay and an optional
  region tag (e.g. ``wan`` for inter-DC backbones).

A :class:`TopologySpec` is frozen and picklable, so it content-hashes into
the experiment-cache key exactly like :class:`repro.net.topology.ClosSpec`
does. Loaders accept YAML, JSON, CSV directories (azure-style headers), or
plain dicts; serialization is normalized so dict → YAML → spec → YAML is
byte-identical.
"""

from __future__ import annotations

import csv
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "LinkSpec",
    "NodeSpec",
    "SiteSpec",
    "TopologySpec",
    "TopologySpecError",
    "load_topology_spec",
    "parse_delay_ns",
    "parse_rate_bps",
]


class TopologySpecError(ValueError):
    """A topology spec failed validation or parsing."""


# ------------------------------------------------------------- unit parsing

_QUANTITY_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")

_RATE_UNITS = {
    "": 1,
    "bps": 1,
    "k": 10**3,
    "kbps": 10**3,
    "m": 10**6,
    "mbps": 10**6,
    "g": 10**9,
    "gbps": 10**9,
    "t": 10**12,
    "tbps": 10**12,
}

_DELAY_UNITS = {
    "": 1,
    "ns": 1,
    "us": 10**3,
    "ms": 10**6,
    "s": 10**9,
}


def _parse_quantity(value, units: Mapping[str, int], what: str) -> int:
    if isinstance(value, bool):
        raise TopologySpecError(f"{what}: expected a number, got {value!r}")
    if isinstance(value, (int, float)):
        return int(value)
    if isinstance(value, str):
        m = _QUANTITY_RE.match(value)
        if m:
            unit = m.group(2).lower()
            if unit in units:
                return int(float(m.group(1)) * units[unit])
        raise TopologySpecError(
            f"{what}: cannot parse {value!r} "
            f"(units: {', '.join(u for u in sorted(units) if u)})")
    raise TopologySpecError(f"{what}: expected a number or string, got {value!r}")


def parse_rate_bps(value, what: str = "rate") -> int:
    """``40_000_000_000``, ``"40G"``, ``"40Gbps"``, ``"250Mbps"`` -> bps."""
    return _parse_quantity(value, _RATE_UNITS, what)


def parse_delay_ns(value, what: str = "delay") -> int:
    """``4000``, ``"4us"``, ``"1ms"``, ``"500ns"`` -> ns."""
    return _parse_quantity(value, _DELAY_UNITS, what)


# ---------------------------------------------------------------- ontology


@dataclass(frozen=True)
class SiteSpec:
    """A named site (data center), optionally grouped into a region."""

    name: str
    region: str = ""


@dataclass(frozen=True)
class NodeSpec:
    """A host or switch. ``tier`` is the switch's ECMP salt (hosts: 0)."""

    name: str
    kind: str = "switch"  # "host" | "switch"
    site: str = ""
    tier: int = 0
    buffer_bytes: int = 4_500_000
    buffer_alpha: float = 0.25


@dataclass(frozen=True)
class LinkSpec:
    """An undirected link ``a <-> b`` with per-direction rate and delay."""

    a: str
    b: str
    rate_bps: int
    delay_ns: int
    region: str = ""

    @property
    def label(self) -> str:
        return f"{self.a}<->{self.b}"


@dataclass(frozen=True)
class TopologySpec:
    """A complete declarative fabric. Frozen, picklable, cache-hashable."""

    name: str = "fabric"
    sites: Tuple[SiteSpec, ...] = ()
    nodes: Tuple[NodeSpec, ...] = ()
    links: Tuple[LinkSpec, ...] = ()

    # ----------------------------------------------------------- queries

    def node_names(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self.nodes)

    def hosts(self) -> Tuple[NodeSpec, ...]:
        return tuple(n for n in self.nodes if n.kind == "host")

    def switches(self) -> Tuple[NodeSpec, ...]:
        return tuple(n for n in self.nodes if n.kind == "switch")

    def site_of(self, node_name: str) -> str:
        for n in self.nodes:
            if n.name == node_name:
                return n.site
        raise KeyError(f"no node named {node_name!r}")

    def region_of_site(self, site_name: str) -> str:
        for s in self.sites:
            if s.name == site_name:
                return s.region
        return ""

    def region_of(self, node_name: str) -> str:
        return self.region_of_site(self.site_of(node_name))

    def inter_region_links(self) -> Tuple[LinkSpec, ...]:
        """Links whose endpoints sit in different (non-empty) regions."""
        out = []
        for link in self.links:
            ra, rb = self.region_of(link.a), self.region_of(link.b)
            if ra != rb or (link.region and ra == rb == ""):
                out.append(link)
        return tuple(out)

    def access_rate_bps(self) -> int:
        """Reference rate for scheme parameters: the fastest host access link.

        Credit-based schemes pace against the host NIC rate; for uniform
        fabrics this equals every access link's rate.
        """
        host_names = {n.name for n in self.nodes if n.kind == "host"}
        rates = [l.rate_bps for l in self.links
                 if l.a in host_names or l.b in host_names]
        if not rates:
            rates = [l.rate_bps for l in self.links]
        if not rates:
            raise TopologySpecError("topology has no links to derive a rate from")
        return max(rates)

    # -------------------------------------------------------- validation

    def validate(self) -> "TopologySpec":
        """Check referential integrity; return self so calls chain."""
        if not self.nodes:
            raise TopologySpecError("topology has no nodes")
        site_names = set()
        for site in self.sites:
            if not site.name:
                raise TopologySpecError("site with empty name")
            if site.name in site_names:
                raise TopologySpecError(f"duplicate site {site.name!r}")
            site_names.add(site.name)
        node_names = set()
        for node in self.nodes:
            if not node.name:
                raise TopologySpecError("node with empty name")
            if node.name in node_names:
                raise TopologySpecError(f"duplicate node {node.name!r}")
            node_names.add(node.name)
            if node.kind not in ("host", "switch"):
                raise TopologySpecError(
                    f"node {node.name!r}: kind must be 'host' or 'switch', "
                    f"got {node.kind!r}")
            if node.site and node.site not in site_names:
                raise TopologySpecError(
                    f"node {node.name!r}: unknown site {node.site!r}")
            if node.kind == "switch" and node.buffer_bytes <= 0:
                raise TopologySpecError(
                    f"node {node.name!r}: buffer_bytes must be positive, "
                    f"got {node.buffer_bytes}")
        if not self.links:
            raise TopologySpecError("topology has no links")
        seen_edges = set()
        for link in self.links:
            for end in (link.a, link.b):
                if end not in node_names:
                    raise TopologySpecError(
                        f"link {link.label}: unknown endpoint {end!r}")
            if link.a == link.b:
                raise TopologySpecError(
                    f"link {link.label} joins a node to itself")
            edge = (min(link.a, link.b), max(link.a, link.b))
            if edge in seen_edges:
                raise TopologySpecError(f"duplicate link {link.label}")
            seen_edges.add(edge)
            if link.rate_bps <= 0:
                raise TopologySpecError(
                    f"link {link.label}: rate must be positive, got {link.rate_bps}")
            if link.delay_ns <= 0:
                raise TopologySpecError(
                    f"link {link.label}: delay must be positive, got {link.delay_ns}")
        return self

    # ----------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Normalized plain-dict form (rates in bps, delays in ns).

        Field order and default-omission are fixed, so two equal specs
        serialize to identical dicts and ``to_yaml`` round-trips
        byte-identically.
        """
        d: dict = {"name": self.name}
        if self.sites:
            d["sites"] = [_site_dict(s) for s in self.sites]
        d["nodes"] = [_node_dict(n) for n in self.nodes]
        d["links"] = [_link_dict(l) for l in self.links]
        return d

    def to_yaml(self) -> str:
        yaml = _yaml()
        return yaml.safe_dump(self.to_dict(), sort_keys=False,
                              default_flow_style=False)

    @classmethod
    def from_dict(cls, data: Mapping) -> "TopologySpec":
        if not isinstance(data, Mapping):
            raise TopologySpecError(
                f"topology document must be a mapping, got {type(data).__name__}")
        _check_keys(data, {"name", "sites", "nodes", "links"}, "topology")
        sites = tuple(_site_from(e, i) for i, e in
                      enumerate(_seq(data.get("sites", ()), "sites")))
        nodes = tuple(_node_from(e, i) for i, e in
                      enumerate(_seq(data.get("nodes", ()), "nodes")))
        links = tuple(_link_from(e, i) for i, e in
                      enumerate(_seq(data.get("links", ()), "links")))
        spec = cls(name=str(data.get("name", "fabric")),
                   sites=sites, nodes=nodes, links=links)
        return spec.validate()

    @classmethod
    def from_yaml(cls, text: str) -> "TopologySpec":
        yaml = _yaml()
        return cls.from_dict(yaml.safe_load(text))

    @classmethod
    def from_csv_dir(cls, path) -> "TopologySpec":
        """Load azure-ontology-style CSV tables from a directory.

        Recognized files (first match wins): ``sites.csv`` /
        ``datacenters.csv``, ``nodes.csv`` / ``routers.csv``, ``links.csv``.
        Headers accept both our names and the azure ontology's
        (``DataCenterId``, ``RouterId``, ``SourceRouterId``,
        ``TargetRouterId``, ``CapacityGbps``, ``LatencyMs`` ...).
        """
        root = Path(path)
        sites_rows = _read_csv(root, ("sites.csv", "datacenters.csv"))
        node_rows = _read_csv(root, ("nodes.csv", "routers.csv"))
        link_rows = _read_csv(root, ("links.csv",))
        if node_rows is None:
            raise TopologySpecError(
                f"{root}: missing nodes.csv (or routers.csv)")
        if link_rows is None:
            raise TopologySpecError(f"{root}: missing links.csv")
        data = {
            "name": root.name,
            "sites": [_alias_row(r, _SITE_ALIASES) for r in (sites_rows or [])],
            "nodes": [_alias_row(r, _NODE_ALIASES) for r in node_rows],
            "links": [_alias_row(r, _LINK_ALIASES) for r in link_rows],
        }
        if not data["sites"]:
            del data["sites"]
        return cls.from_dict(data)


# ------------------------------------------------------------ dict helpers


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - present in dev/CI images
        raise TopologySpecError(
            "PyYAML is required for YAML topology specs "
            "(use from_dict/from_csv_dir, or install pyyaml)") from exc
    return yaml


def _check_keys(entry: Mapping, allowed: set, what: str) -> None:
    unknown = set(entry) - allowed
    if unknown:
        raise TopologySpecError(
            f"{what}: unknown field(s) {', '.join(sorted(map(repr, unknown)))}")


def _seq(value, what: str) -> Sequence:
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        raise TopologySpecError(f"{what} must be a list")
    return value


def _entry(value, what: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise TopologySpecError(f"{what} must be a mapping, got {value!r}")
    return value


def _site_from(e, i: int) -> SiteSpec:
    e = _entry(e, f"sites[{i}]")
    _check_keys(e, {"name", "region"}, f"sites[{i}]")
    if "name" not in e:
        raise TopologySpecError(f"sites[{i}]: missing 'name'")
    return SiteSpec(name=str(e["name"]), region=str(e.get("region", "")))


def _node_from(e, i: int) -> NodeSpec:
    e = _entry(e, f"nodes[{i}]")
    _check_keys(e, {"name", "kind", "site", "tier",
                    "buffer_bytes", "buffer_alpha"}, f"nodes[{i}]")
    if "name" not in e:
        raise TopologySpecError(f"nodes[{i}]: missing 'name'")
    return NodeSpec(
        name=str(e["name"]),
        kind=str(e.get("kind", "switch")),
        site=str(e.get("site", "")),
        tier=int(e.get("tier", 0)),
        buffer_bytes=int(e.get("buffer_bytes", 4_500_000)),
        buffer_alpha=float(e.get("buffer_alpha", 0.25)),
    )


def _link_from(e, i: int) -> LinkSpec:
    e = _entry(e, f"links[{i}]")
    _check_keys(e, {"a", "b", "rate", "rate_bps", "delay", "delay_ns",
                    "region"}, f"links[{i}]")
    for k in ("a", "b"):
        if k not in e:
            raise TopologySpecError(f"links[{i}]: missing {k!r}")
    what = f"links[{i}] {e['a']}<->{e['b']}"
    if "rate" in e and "rate_bps" in e:
        raise TopologySpecError(f"{what}: give 'rate' or 'rate_bps', not both")
    if "delay" in e and "delay_ns" in e:
        raise TopologySpecError(f"{what}: give 'delay' or 'delay_ns', not both")
    rate = e.get("rate_bps", e.get("rate"))
    delay = e.get("delay_ns", e.get("delay"))
    if rate is None:
        raise TopologySpecError(f"{what}: missing 'rate'")
    if delay is None:
        raise TopologySpecError(f"{what}: missing 'delay'")
    return LinkSpec(
        a=str(e["a"]),
        b=str(e["b"]),
        rate_bps=parse_rate_bps(rate, f"{what} rate"),
        delay_ns=parse_delay_ns(delay, f"{what} delay"),
        region=str(e.get("region", "")),
    )


def _site_dict(s: SiteSpec) -> dict:
    d: dict = {"name": s.name}
    if s.region:
        d["region"] = s.region
    return d


def _node_dict(n: NodeSpec) -> dict:
    d: dict = {"name": n.name, "kind": n.kind}
    if n.site:
        d["site"] = n.site
    if n.tier:
        d["tier"] = n.tier
    if n.kind == "switch":
        if n.buffer_bytes != 4_500_000:
            d["buffer_bytes"] = n.buffer_bytes
        if n.buffer_alpha != 0.25:
            d["buffer_alpha"] = n.buffer_alpha
    return d


def _link_dict(l: LinkSpec) -> dict:
    d: dict = {"a": l.a, "b": l.b, "rate_bps": l.rate_bps,
               "delay_ns": l.delay_ns}
    if l.region:
        d["region"] = l.region
    return d


# ------------------------------------------------------------- CSV loading

_SITE_ALIASES = {
    "name": "name", "region": "region",
    "datacenterid": "name", "datacenter": "name",
}
_NODE_ALIASES = {
    "name": "name", "kind": "kind", "site": "site", "tier": "tier",
    "buffer_bytes": "buffer_bytes", "buffer_alpha": "buffer_alpha",
    "routerid": "name", "router": "name",
    "datacenterid": "site", "datacenter": "site",
}
_LINK_ALIASES = {
    "a": "a", "b": "b", "rate": "rate", "rate_bps": "rate_bps",
    "delay": "delay", "delay_ns": "delay_ns", "region": "region",
    "sourcerouterid": "a", "source": "a",
    "targetrouterid": "b", "target": "b",
    "capacitygbps": "__capacity_gbps", "latencyms": "__latency_ms",
    "linkid": None,
}


def _read_csv(root: Path, names: Iterable[str]) -> Optional[List[dict]]:
    for name in names:
        p = root / name
        if p.is_file():
            with p.open(newline="") as fh:
                return [dict(row) for row in csv.DictReader(fh)]
    return None


def _alias_row(row: Mapping[str, str], aliases: Mapping[str, Optional[str]]) -> dict:
    out: dict = {}
    for raw_key, value in row.items():
        if raw_key is None or value is None or value == "":
            continue
        key = aliases.get(raw_key.strip().lower())
        if key is None:
            if raw_key.strip().lower() in aliases:
                continue  # explicitly ignored column (e.g. LinkId)
            raise TopologySpecError(f"unknown CSV column {raw_key!r}")
        out[key] = value.strip()
    # Azure units: capacities in Gbps, latencies in ms.
    if "__capacity_gbps" in out:
        out["rate"] = f"{out.pop('__capacity_gbps')}Gbps"
    if "__latency_ms" in out:
        out["delay"] = f"{out.pop('__latency_ms')}ms"
    return out


# ------------------------------------------------------------- file loader


def load_topology_spec(path) -> TopologySpec:
    """Load and validate a spec from YAML/JSON file or CSV directory."""
    p = Path(path)
    if p.is_dir():
        return TopologySpec.from_csv_dir(p)
    if not p.is_file():
        raise TopologySpecError(f"no such topology spec: {p}")
    text = p.read_text()
    if p.suffix.lower() == ".json":
        return TopologySpec.from_dict(json.loads(text))
    return TopologySpec.from_yaml(text)
