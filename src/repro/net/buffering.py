"""Shared-buffer management with dynamic thresholds.

Implements the dynamic buffer scheme of Choudhury & Hahne [10] that the
paper's simulations configure ("egress dynamic buffer threshold 1/4"): a
queue may grow up to ``alpha`` times the *remaining free* shared buffer.
Every egress queue of a switch draws from one :class:`SharedBuffer`.
"""

from __future__ import annotations


class SharedBuffer:
    """Switch-wide packet buffer with Choudhury–Hahne dynamic thresholds."""

    __slots__ = ("capacity", "alpha", "used", "drops")

    def __init__(self, capacity_bytes: int, alpha: float = 0.25) -> None:
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        if alpha <= 0:
            raise ValueError("dynamic threshold alpha must be positive")
        self.capacity = capacity_bytes
        self.alpha = alpha
        self.used = 0
        self.drops = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def threshold(self) -> float:
        """Current per-queue occupancy limit."""
        return self.alpha * self.free

    def try_admit(self, queue_bytes: int, pkt_bytes: int) -> bool:
        """Admit ``pkt_bytes`` into a queue currently holding ``queue_bytes``.

        Applies both the dynamic per-queue threshold and the hard capacity.
        On success the bytes are charged to the shared pool.
        """
        used = self.used + pkt_bytes
        if used > self.capacity:
            self.drops += 1
            return False
        # inline ``threshold()`` — this runs once per admitted packet
        if queue_bytes + pkt_bytes > self.alpha * (self.capacity - self.used):
            self.drops += 1
            return False
        self.used = used
        return True

    def release(self, pkt_bytes: int) -> None:
        """Return bytes to the pool when a packet departs."""
        self.used -= pkt_bytes
        if self.used < 0:
            raise RuntimeError("shared buffer accounting went negative")


class UnlimitedBuffer:
    """A no-op buffer for host NICs, which model deep sender queues."""

    __slots__ = ("used", "drops")

    capacity = 1 << 62
    alpha = 1.0

    def __init__(self) -> None:
        self.used = 0
        self.drops = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def threshold(self) -> float:
        return float(self.capacity)

    def try_admit(self, queue_bytes: int, pkt_bytes: int) -> bool:
        self.used += pkt_bytes
        return True

    def release(self, pkt_bytes: int) -> None:
        # Same guard as SharedBuffer: a negative occupancy means a packet
        # was released twice (or released without being admitted), and
        # letting it go silently negative masks the double-release.
        self.used -= pkt_bytes
        if self.used < 0:
            raise RuntimeError("shared buffer accounting went negative")
