"""Packet model.

One concrete :class:`Packet` class serves every protocol in the repo. The
alternative — a class per packet type — buys little type safety in a
simulator and costs allocation time on the hottest path. Transports interpret
the generic fields (``seq``, ``ack``, ``sack`` …) in their own sequence
spaces.

Wire sizes follow the paper's implementation section: a FlexPass data packet
carries Ethernet + IP + UDP + an 18-byte FlexPass header (84 bytes of
overhead including inter-frame gap), and credits/ACKs are minimum-size
84-byte frames, matching ExpressPass's credit sizing.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

#: Maximum segment size — application payload bytes per data packet.
MSS = 1500

#: Per-packet wire overhead for data packets (Ethernet + preamble/IFG + IP +
#: UDP + FlexPass header), and full wire size of minimum-size frames.
DATA_HEADER_BYTES = 84
CREDIT_WIRE_BYTES = 84
ACK_WIRE_BYTES = 84


class PacketKind(enum.IntEnum):
    """What role a packet plays in its protocol."""

    DATA = 0
    ACK = 1
    CREDIT = 2
    CREDIT_REQUEST = 3
    CREDIT_STOP = 4
    GRANT = 5  # Homa scheduled-data grant


class Dscp(enum.IntEnum):
    """Traffic classes (DSCP code points) used to map packets to queues.

    The paper uses five DSCP values (§5): proactive data, reactive data,
    credit, FlexPass control, and legacy. Homa's eight priority levels get
    their own range for the Figure 1(b) motivation experiment.
    """

    CREDIT = 0
    PROACTIVE_DATA = 1
    REACTIVE_DATA = 2
    FLEX_CONTROL = 3
    LEGACY = 4
    HOMA_BASE = 8  # HOMA_BASE + p for priority level p in [0, 7]


class Color(enum.IntEnum):
    """Packet color for color-aware (selective) dropping, §4.1/§5.

    GREEN packets are only dropped when the whole queue exceeds its limit;
    RED packets are dropped as soon as the queue's red-byte occupancy crosses
    the selective-dropping threshold.
    """

    GREEN = 0
    RED = 1


class Packet:
    """A packet in flight.

    Attributes double as protocol header fields; which ones are meaningful
    depends on ``kind`` and the owning transport:

    * ``seq``     — per-sub-flow sequence number (segment units) of DATA, or
      the sequence of the credit for CREDIT packets.
    * ``flow_seq``— per-flow sequence number used for reassembly (FlexPass
      carries both, like MPTCP; plain transports set it equal to ``seq``).
    * ``ack``     — cumulative ACK (next expected seq) on ACK packets.
    * ``sack``    — tuple of selectively-acked seqs above ``ack``.
    * ``subflow`` — 0 = proactive, 1 = reactive (FlexPass), else 0.
    * ``meta``    — small protocol-specific payload (e.g., flow size on a
      credit request, credit sequence echo on data).
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "size",
        "payload",
        "dscp",
        "color",
        "ecn_capable",
        "ce",
        "seq",
        "flow_seq",
        "ack",
        "sack",
        "subflow",
        "sent_at",
        "meta",
    )

    def __init__(
        self,
        kind: PacketKind,
        flow_id: int,
        src: int,
        dst: int,
        size: int,
        *,
        payload: int = 0,
        dscp: int = Dscp.LEGACY,
        color: int = Color.GREEN,
        ecn_capable: bool = False,
        seq: int = -1,
        flow_seq: int = -1,
        ack: int = -1,
        sack: Tuple[int, ...] = (),
        subflow: int = 0,
        sent_at: int = -1,
        meta: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size  # wire bytes, headers included
        self.payload = payload  # application bytes carried
        self.dscp = dscp
        self.color = color
        self.ecn_capable = ecn_capable
        self.ce = False  # congestion-experienced mark, set by switches
        self.seq = seq
        self.flow_seq = flow_seq
        self.ack = ack
        self.sack = sack
        self.subflow = subflow
        self.sent_at = sent_at
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.kind.name} flow={self.flow_id} {self.src}->{self.dst} "
            f"seq={self.seq} fseq={self.flow_seq} size={self.size}B"
            f"{' CE' if self.ce else ''}>"
        )


def data_wire_size(payload_bytes: int) -> int:
    """Wire size of a data packet carrying ``payload_bytes``."""
    return payload_bytes + DATA_HEADER_BYTES
