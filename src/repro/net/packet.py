"""Packet model.

One concrete :class:`Packet` class serves every protocol in the repo. The
alternative — a class per packet type — buys little type safety in a
simulator and costs allocation time on the hottest path. Transports interpret
the generic fields (``seq``, ``ack``, ``sack`` …) in their own sequence
spaces.

Wire sizes follow the paper's implementation section: a FlexPass data packet
carries Ethernet + IP + UDP + an 18-byte FlexPass header (84 bytes of
overhead including inter-frame gap), and credits/ACKs are minimum-size
84-byte frames, matching ExpressPass's credit sizing.
"""

from __future__ import annotations

import enum
import os
from typing import List, Optional, Tuple

#: Maximum segment size — application payload bytes per data packet.
MSS = 1500

#: Per-packet wire overhead for data packets (Ethernet + preamble/IFG + IP +
#: UDP + FlexPass header), and full wire size of minimum-size frames.
DATA_HEADER_BYTES = 84
CREDIT_WIRE_BYTES = 84
ACK_WIRE_BYTES = 84


class PacketKind(enum.IntEnum):
    """What role a packet plays in its protocol."""

    DATA = 0
    ACK = 1
    CREDIT = 2
    CREDIT_REQUEST = 3
    CREDIT_STOP = 4
    GRANT = 5  # Homa scheduled-data grant


class Dscp(enum.IntEnum):
    """Traffic classes (DSCP code points) used to map packets to queues.

    The paper uses five DSCP values (§5): proactive data, reactive data,
    credit, FlexPass control, and legacy. Homa's eight priority levels get
    their own range for the Figure 1(b) motivation experiment.
    """

    CREDIT = 0
    PROACTIVE_DATA = 1
    REACTIVE_DATA = 2
    FLEX_CONTROL = 3
    LEGACY = 4
    HOMA_BASE = 8  # HOMA_BASE + p for priority level p in [0, 7]


class Color(enum.IntEnum):
    """Packet color for color-aware (selective) dropping, §4.1/§5.

    GREEN packets are only dropped when the whole queue exceeds its limit;
    RED packets are dropped as soon as the queue's red-byte occupancy crosses
    the selective-dropping threshold.
    """

    GREEN = 0
    RED = 1


class Packet:
    """A packet in flight.

    Attributes double as protocol header fields; which ones are meaningful
    depends on ``kind`` and the owning transport:

    * ``seq``     — per-sub-flow sequence number (segment units) of DATA, or
      the sequence of the credit for CREDIT packets.
    * ``flow_seq``— per-flow sequence number used for reassembly (FlexPass
      carries both, like MPTCP; plain transports set it equal to ``seq``).
    * ``ack``     — cumulative ACK (next expected seq) on ACK packets.
    * ``sack``    — tuple of selectively-acked seqs above ``ack``.
    * ``subflow`` — 0 = proactive, 1 = reactive (FlexPass), else 0.
    * ``meta``    — small protocol-specific payload (e.g., flow size on a
      credit request, credit sequence echo on data).
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "size",
        "payload",
        "dscp",
        "color",
        "ecn_capable",
        "ce",
        "seq",
        "flow_seq",
        "ack",
        "sack",
        "subflow",
        "sent_at",
        "meta",
        "_pooled",
    )

    def __init__(
        self,
        kind: PacketKind,
        flow_id: int,
        src: int,
        dst: int,
        size: int,
        *,
        payload: int = 0,
        dscp: int = Dscp.LEGACY,
        color: int = Color.GREEN,
        ecn_capable: bool = False,
        seq: int = -1,
        flow_seq: int = -1,
        ack: int = -1,
        sack: Tuple[int, ...] = (),
        subflow: int = 0,
        sent_at: int = -1,
        meta: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size  # wire bytes, headers included
        self.payload = payload  # application bytes carried
        self.dscp = dscp
        self.color = color
        self.ecn_capable = ecn_capable
        self.ce = False  # congestion-experienced mark, set by switches
        self.seq = seq
        self.flow_seq = flow_seq
        self.ack = ack
        self.sack = sack
        self.subflow = subflow
        self.sent_at = sent_at
        self.meta = meta
        self._pooled = False  # True only while checked out of a PacketPool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.kind.name} flow={self.flow_id} {self.src}->{self.dst} "
            f"seq={self.seq} fseq={self.flow_seq} size={self.size}B"
            f"{' CE' if self.ce else ''}>"
        )


def data_wire_size(payload_bytes: int) -> int:
    """Wire size of a data packet carrying ``payload_bytes``."""
    return payload_bytes + DATA_HEADER_BYTES


# --------------------------------------------------------------------- pool

#: Field values a released packet is stamped with in debug mode. Any of them
#: leaking into protocol logic blows up loudly (negative sizes, absurd ids).
_POISON = -0x7D15EA5E  # "poisoned"


class PacketPool:
    """A freelist of :class:`Packet` objects for the simulation hot path.

    A simulation at Clos-sweep scale churns through millions of packets whose
    lifetime is a handful of events (host TX -> a few queues -> receiver
    sink). Recycling them through a pool skips the allocator on the hottest
    path; ``acquire`` re-runs ``Packet.__init__`` so a reused packet is
    indistinguishable from a fresh one.

    Ownership rules (see DESIGN.md §6d):

    * ``acquire`` transfers ownership to the caller; the packet flows through
      the fabric with its events.
    * The *final consumer* releases: the host that delivered it to an
      endpoint, or whatever dropped it (switch routing failure, a full
      queue, a failed link).
    * ``release`` is a no-op for packets not checked out of a pool, so
      drop/deliver sites can release unconditionally and hand-built test
      packets stay untouched.

    In debug mode (``debug=True``, or ``REPRO_PACKET_POOL_DEBUG=1`` for the
    default pool) released packets are *poisoned*: every header field is
    stamped with an absurd sentinel so any use-after-release surfaces as a
    loud nonsense value, and releasing the same packet twice raises.
    """

    __slots__ = ("max_size", "debug", "_free", "acquired", "released",
                 "reused")

    def __init__(self, max_size: int = 8192, debug: bool = False) -> None:
        if max_size < 0:
            raise ValueError("pool max_size must be nonnegative")
        self.max_size = max_size
        self.debug = debug
        self._free: List[Packet] = []
        self.acquired = 0
        self.released = 0
        self.reused = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(
        self,
        kind: PacketKind,
        flow_id: int,
        src: int,
        dst: int,
        size: int,
        **kwargs,
    ) -> Packet:
        """Check a packet out of the pool (or allocate a fresh one)."""
        self.acquired += 1
        free = self._free
        if free:
            pkt = free.pop()
            self.reused += 1
            if self.debug and pkt.kind != _POISON:
                raise RuntimeError(
                    "packet pool corruption: a pooled packet was mutated "
                    "after release (use-after-release)"
                )
            Packet.__init__(pkt, kind, flow_id, src, dst, size, **kwargs)
        else:
            pkt = Packet(kind, flow_id, src, dst, size, **kwargs)
        pkt._pooled = True
        return pkt

    def release(self, pkt: Packet) -> None:
        """Return a packet to the pool.

        Safe to call on any packet: hand-built (non-pooled) packets are
        ignored, so every drop/deliver site can release unconditionally.
        """
        if not pkt._pooled:
            if self.debug and pkt.kind == _POISON:
                raise RuntimeError(
                    f"double release of pooled packet {id(pkt):#x}"
                )
            return
        pkt._pooled = False
        self.released += 1
        if self.debug:
            self._poison(pkt)
        if len(self._free) < self.max_size:
            self._free.append(pkt)

    @staticmethod
    def _poison(pkt: Packet) -> None:
        pkt.kind = _POISON  # type: ignore[assignment]
        pkt.flow_id = _POISON
        pkt.src = _POISON
        pkt.dst = _POISON
        pkt.size = _POISON
        pkt.payload = _POISON
        pkt.seq = _POISON
        pkt.flow_seq = _POISON
        pkt.ack = _POISON
        pkt.sack = ()
        pkt.meta = None

    @staticmethod
    def is_poisoned(pkt: Packet) -> bool:
        """True if ``pkt`` carries the released-packet stamp (debug mode)."""
        return pkt.kind == _POISON


#: Process-wide default pool. Each worker process of a sweep gets its own
#: copy (module state does not cross ``multiprocessing`` boundaries).
_DEFAULT_POOL = PacketPool(
    debug=bool(os.environ.get("REPRO_PACKET_POOL_DEBUG"))
)


def packet_pool() -> PacketPool:
    """The process-wide default pool (stats, debug flag, tests)."""
    return _DEFAULT_POOL


def alloc_packet(
    kind: PacketKind, flow_id: int, src: int, dst: int, size: int, **kwargs
) -> Packet:
    """Acquire a packet from the default pool — drop-in for ``Packet(...)``
    on transport TX paths."""
    return _DEFAULT_POOL.acquire(kind, flow_id, src, dst, size, **kwargs)


def free_packet(pkt: Packet) -> None:
    """Release a packet to the default pool (no-op for non-pooled packets)."""
    _DEFAULT_POOL.release(pkt)
