"""Shortest-path routing with symmetric-hash ECMP.

ExpressPass requires credits to traverse the reverse of the data path so the
per-link credit rate limiters meter the right links. The paper therefore uses
"ECMP routing with symmetric hash" (§6.2). We reproduce that: the ECMP hash
key is invariant under swapping source and destination, and each node's
next-hop list toward a destination is sorted by node id, so the forward and
reverse paths of a flow mirror each other in a symmetric Clos.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Tuple

_MASK64 = (1 << 64) - 1


def edge_key(a: int, b: int) -> Tuple[int, int]:
    """Canonical (undirected) identity of the a<->b link."""
    return (a, b) if a <= b else (b, a)


def filter_adjacency(
    adjacency: Dict[int, List[int]],
    down_edges: FrozenSet[Tuple[int, int]],
) -> Dict[int, List[int]]:
    """Adjacency with the given (canonical-key) edges removed.

    This is how routing reacts to link failures: the physical wiring stays
    in the topology, but routes are recomputed over the surviving edges.
    """
    if not down_edges:
        return adjacency
    return {
        node: [nb for nb in neighbors if edge_key(node, nb) not in down_edges]
        for node, neighbors in adjacency.items()
    }


def compute_next_hops(
    adjacency: Dict[int, List[int]], destinations: Iterable[int]
) -> Dict[int, Dict[int, Tuple[int, ...]]]:
    """All equal-cost next hops toward each destination.

    ``adjacency`` maps node id -> neighbor ids. Returns
    ``next_hops[node][dst] = (neighbor ids on shortest paths, sorted)``.
    """
    next_hops: Dict[int, Dict[int, Tuple[int, ...]]] = {n: {} for n in adjacency}
    for dst in destinations:
        dist = _bfs_distances(adjacency, dst)
        for node, neighbors in adjacency.items():
            if node == dst:
                continue
            d = dist.get(node)
            if d is None:
                continue  # unreachable; scenario wiring error surfaces later
            hops = tuple(sorted(nb for nb in neighbors if dist.get(nb) == d - 1))
            if hops:
                next_hops[node][dst] = hops
    return next_hops


def _bfs_distances(adjacency: Dict[int, List[int]], src: int) -> Dict[int, int]:
    dist = {src: 0}
    frontier = deque([src])
    while frontier:
        node = frontier.popleft()
        for nb in adjacency[node]:
            if nb not in dist:
                dist[nb] = dist[node] + 1
                frontier.append(nb)
    return dist


def ecmp_index(flow_id: int, src: int, dst: int, n_choices: int,
               salt: int = 0) -> int:
    """Deterministic, direction-symmetric ECMP choice.

    The key hashes the unordered endpoint pair plus the flow id, so a flow's
    data packets and its reverse-direction credits/ACKs resolve to the same
    index into (sorted) equal-cost next-hop lists.

    ``salt`` decorrelates decisions made at different *tiers* of the fabric
    (ToR vs agg): without it, the same hash picks the same index at every
    hop and a host pair can only ever reach a fraction of its equal-cost
    paths. Symmetry is preserved as long as mirrored decisions (the up-hop
    at the source-side tier and at the destination-side tier) use the same
    salt, which tier-based salting guarantees on a symmetric Clos.
    """
    if n_choices <= 0:
        raise ValueError("no next hops to choose from")
    if n_choices == 1:
        return 0
    lo, hi = (src, dst) if src <= dst else (dst, src)
    # A multiply-xorshift mixer (not CRC32: CRC is linear, so a salt change
    # XORs the same constant into every hash and per-salt choices stay
    # perfectly correlated — exactly the imbalance the salt must break).
    key = (flow_id * 0x9E3779B97F4A7C15
           + lo * 0xBF58476D1CE4E5B9
           + hi * 0x94D049BB133111EB
           + salt * 0xD6E8FEB86659FD93) & _MASK64
    key ^= key >> 33
    key = (key * 0xFF51AFD7ED558CCD) & _MASK64
    key ^= key >> 33
    key = (key * 0xC4CEB9FE1A85EC53) & _MASK64
    key ^= key >> 33
    return key % n_choices
