"""Network substrate: packets, queues, ports, switches, hosts, topologies.

This package is the stand-in for ns-2 in the original artifact. It models a
datacenter fabric at packet granularity: every data packet, ACK, and credit is
an object that traverses store-and-forward switch egress ports with
multi-queue scheduling (strict priority + DWRR), RED/ECN marking, color-aware
selective dropping, shared-buffer dynamic thresholds, and token-bucket credit
rate limiting — the switch feature set §4.1 and §5 of the paper require.
"""

from repro.net.packet import (
    ACK_WIRE_BYTES,
    CREDIT_WIRE_BYTES,
    DATA_HEADER_BYTES,
    MSS,
    Color,
    Dscp,
    Packet,
    PacketKind,
)
from repro.net.host import Host
from repro.net.link import Link
from repro.net.port import EgressPort
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.scheduler import PortScheduler, QueueSchedule
from repro.net.switch import Switch
from repro.net.topology import Topology, build_clos, build_dumbbell, build_star

__all__ = [
    "ACK_WIRE_BYTES",
    "CREDIT_WIRE_BYTES",
    "DATA_HEADER_BYTES",
    "MSS",
    "Color",
    "Dscp",
    "Packet",
    "PacketKind",
    "Host",
    "Link",
    "EgressPort",
    "PacketQueue",
    "QueueConfig",
    "PortScheduler",
    "QueueSchedule",
    "Switch",
    "Topology",
    "build_clos",
    "build_dumbbell",
    "build_star",
]
