"""Network substrate: packets, queues, ports, switches, hosts, topologies.

This package is the stand-in for ns-2 in the original artifact. It models a
datacenter fabric at packet granularity: every data packet, ACK, and credit is
an object that traverses store-and-forward switch egress ports with
multi-queue scheduling (strict priority + DWRR), RED/ECN marking, color-aware
selective dropping, shared-buffer dynamic thresholds, and token-bucket credit
rate limiting — the switch feature set §4.1 and §5 of the paper require.

The stable public API is what ``__all__`` lists below. Topologies resolve
through a registry (:func:`build` / :func:`register_topology`): the classic
shapes ("dumbbell", "star", "clos") register here, and the declarative
ontology loader (:mod:`repro.net.fabric`, lazily imported) registers the
"fabric" kind — its names (``TopologySpec``, ``build_from_spec``,
``load_topology_spec``, ...) are importable from this package too. Anything
imported from other submodules directly is internal and may move.
"""

import importlib

from repro.net.packet import (
    ACK_WIRE_BYTES,
    CREDIT_WIRE_BYTES,
    DATA_HEADER_BYTES,
    MSS,
    Color,
    Dscp,
    Packet,
    PacketKind,
)
from repro.net.host import Host
from repro.net.link import Link
from repro.net.port import EgressPort
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.scheduler import PortScheduler, QueueSchedule
from repro.net.switch import Switch
from repro.net.topology import (
    Clos,
    ClosSpec,
    Dumbbell,
    DumbbellSpec,
    Star,
    StarSpec,
    Topology,
    build,
    build_clos,
    build_dumbbell,
    build_star,
    register_topology,
    spec_class,
    topology_kinds,
)

__all__ = [
    "ACK_WIRE_BYTES",
    "CREDIT_WIRE_BYTES",
    "DATA_HEADER_BYTES",
    "MSS",
    "Color",
    "Dscp",
    "Packet",
    "PacketKind",
    "Host",
    "Link",
    "EgressPort",
    "PacketQueue",
    "QueueConfig",
    "PortScheduler",
    "QueueSchedule",
    "Switch",
    "Topology",
    "Clos",
    "ClosSpec",
    "Dumbbell",
    "DumbbellSpec",
    "Star",
    "StarSpec",
    "build",
    "build_clos",
    "build_dumbbell",
    "build_star",
    "register_topology",
    "spec_class",
    "topology_kinds",
    # provided lazily by repro.net.fabric (see __getattr__)
    "FabricHandle",
    "LinkSpec",
    "NodeSpec",
    "SiteSpec",
    "TopologySpec",
    "TopologySpecError",
    "build_from_spec",
    "clos_to_topology_spec",
    "load_topology_spec",
]

#: submodules reachable lazily as attributes (``repro.net.routing`` etc.)
_SUBMODULES = ("buffering", "fabric", "host", "link", "node", "packet",
               "port", "queues", "ratelimit", "routing", "scheduler",
               "switch", "topology")

#: names forwarded from repro.net.fabric on first access, so importing
#: repro.net stays cheap for users who never touch declarative topologies
_FABRIC_NAMES = frozenset({
    "FabricHandle", "LinkSpec", "NodeSpec", "SiteSpec", "TopologySpec",
    "TopologySpecError", "build_from_spec", "clos_to_topology_spec",
    "load_topology_spec",
})


def __getattr__(name):
    if name in _FABRIC_NAMES:
        value = getattr(importlib.import_module("repro.net.fabric"), name)
        globals()[name] = value
        return value
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.net.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_SUBMODULES) | set(globals()))
