"""Point-to-point link: fixed propagation delay toward a destination node."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator


class Link:
    """One direction of a cable: delivers packets to ``dst`` after ``delay``."""

    __slots__ = ("sim", "dst", "delay_ns", "packets_delivered", "bytes_delivered")

    def __init__(self, sim: "Simulator", dst: "Node", delay_ns: int) -> None:
        if delay_ns < 0:
            raise ValueError("propagation delay must be nonnegative")
        self.sim = sim
        self.dst = dst
        self.delay_ns = delay_ns
        self.packets_delivered = 0
        self.bytes_delivered = 0

    def carry(self, pkt: "Packet") -> None:
        """Propagate a fully-serialized packet to the far end."""
        self.packets_delivered += 1
        self.bytes_delivered += pkt.size
        self.sim.post(self.delay_ns, self.dst.receive, pkt)

    def carry_after(self, extra_ns: int, pkt: "Packet") -> None:
        """Propagate ``pkt``, which finishes serializing ``extra_ns`` from now.

        This is the coalesced fast path: the egress port calls it at
        *transmit start*, folding serialization and propagation into one
        scheduled event (arrival at ``now + extra_ns + delay_ns``) instead of
        the serialize-then-propagate pair. :class:`repro.faults.link.FaultyLink`
        overrides it to keep making its loss decisions at serialization end.
        """
        self.sim.post(extra_ns + self.delay_ns, self._deliver, pkt)

    def _deliver(self, pkt: "Packet") -> None:
        self.packets_delivered += 1
        self.bytes_delivered += pkt.size
        self.dst.receive(pkt)
