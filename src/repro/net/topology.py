"""Topology construction: dumbbell, star (incast / two-to-one), 3-tier Clos.

A :class:`Topology` owns the nodes and wiring. Queue configuration is
scheme-specific (FlexPass needs three queues, the naïve scheme one data
queue, Homa eight priorities, …), so builders take a ``make_queues`` factory
provided by :mod:`repro.experiments.scenarios` and apply it uniformly to
every port — host NICs included, per the paper's "the NIC is a special type
of edge switch" deployment note.

Builders are looked up through a **registry** keyed by topology kind
(:func:`register_topology` / :func:`build`): the classic shapes register
here ("dumbbell", "star", "clos"), and the declarative ontology loader
(:mod:`repro.net.fabric`) registers as just another kind ("fabric"), so
scenario code resolves every fabric the same way.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Type

from repro.net.buffering import SharedBuffer, UnlimitedBuffer
from repro.net.host import Host
from repro.net.link import Link
from repro.net.node import Node
from repro.net.port import EgressPort
from repro.net.routing import compute_next_hops, edge_key, filter_adjacency
from repro.net.scheduler import QueueSchedule
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MB, MICROS

#: ``make_queues(port_name, rate_bps, is_host_nic) -> (schedules, classifier)``
QueueFactory = Callable[[str, int, bool], Tuple[List[QueueSchedule], Dict[int, int]]]


class Topology:
    """A wired network: nodes, links, routing."""

    def __init__(self, sim: Simulator, make_queues: QueueFactory) -> None:
        self.sim = sim
        self.make_queues = make_queues
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.nodes: Dict[int, Node] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._down_edges: Set[Tuple[int, int]] = set()
        self._next_id = 0
        self._finalized = False
        #: route recomputations after finalize() (fault injection reroutes)
        self.route_recomputes = 0
        #: name -> node, maintained at registration (duplicates rejected)
        self._nodes_by_name: Dict[str, Node] = {}
        #: ontology group -> member node names ("site:DC-SYD-01",
        #: "region:NSW", "rack:r0"); populated by the fabric builder so
        #: fault plans can address whole sites/regions by name.
        self.node_groups: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------ building

    def add_host(self, name: str) -> Host:
        host = Host(self.sim, self._alloc_id(), name)
        self.hosts.append(host)
        self._register(host)
        return host

    def add_switch(
        self, name: str, buffer_bytes: int = 4_500_000, buffer_alpha: float = 0.25
    ) -> Switch:
        switch = Switch(
            self.sim, self._alloc_id(), name, SharedBuffer(buffer_bytes, buffer_alpha)
        )
        self.switches.append(switch)
        self._register(switch)
        return switch

    def connect(self, a: Node, b: Node, rate_bps: int, delay_ns: int) -> None:
        """Create a full-duplex link between ``a`` and ``b``."""
        self._attach_directed(a, b, rate_bps, delay_ns)
        self._attach_directed(b, a, rate_bps, delay_ns)
        self._adjacency[a.id].append(b.id)
        self._adjacency[b.id].append(a.id)

    def finalize(self) -> None:
        """Compute routes. Call after all links are in place."""
        self._install_routes()
        self._finalized = True

    # -------------------------------------------------- dynamic link state

    def set_edge_state(self, a: Node, b: Node, up: bool) -> None:
        """Mark the a<->b link up or down for routing purposes.

        The physical ports and links stay in place (a down link simply
        eats packets — see :mod:`repro.faults`); only route computation
        changes. Call :meth:`recompute_routes` afterwards to make switches
        react; the two steps are split so a batch of simultaneous failures
        costs one recomputation.
        """
        if b.id not in self._adjacency.get(a.id, []):
            raise ValueError(f"no link between {a.name} and {b.name}")
        key = edge_key(a.id, b.id)
        if up:
            self._down_edges.discard(key)
        else:
            self._down_edges.add(key)

    def edge_is_up(self, a: Node, b: Node) -> bool:
        return edge_key(a.id, b.id) not in self._down_edges

    def recompute_routes(self) -> None:
        """Reinstall ECMP next-hops over the surviving (up) edges."""
        self._install_routes()
        self.route_recomputes += 1

    def _install_routes(self) -> None:
        host_ids = [h.id for h in self.hosts]
        adjacency = filter_adjacency(self._adjacency, frozenset(self._down_edges))
        next_hops = compute_next_hops(adjacency, host_ids)
        for switch in self.switches:
            switch.install_routes(next_hops.get(switch.id, {}))

    # ------------------------------------------------------------- lookups

    def port(self, src: Node, dst: Node) -> EgressPort:
        """The egress port on ``src`` facing ``dst``."""
        return src.ports[dst.id]

    def node_by_name(self, name: str) -> Node:
        """Look up a node by its human name (fault plans and the ontology
        address elements by name so plans stay picklable and
        topology-independent). O(1): the name index is maintained at
        registration time and duplicate names are rejected there."""
        try:
            return self._nodes_by_name[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}") from None

    def neighbors(self, node: Node) -> List[Node]:
        """Directly connected peers of ``node``, in wiring order."""
        return [self.nodes[peer] for peer in self._adjacency.get(node.id, [])]

    def all_ports(self) -> List[EgressPort]:
        return [p for node in self.nodes.values() for p in node.ports.values()]

    def host_pairs(self) -> List[Tuple[Host, Host]]:
        """All ordered pairs of distinct hosts (for traffic generation)."""
        return [(a, b) for a in self.hosts for b in self.hosts if a.id != b.id]

    # ------------------------------------------------------------ internals

    def _alloc_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def _register(self, node: Node) -> None:
        if self._finalized:
            raise RuntimeError("cannot add nodes after finalize()")
        if node.name in self._nodes_by_name:
            # A silent duplicate used to shadow the earlier node in
            # node_by_name scans; fault plans would then address the wrong
            # element. Fail at construction instead.
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.id] = node
        self._adjacency[node.id] = []
        self._nodes_by_name[node.name] = node

    def _attach_directed(self, src: Node, dst: Node, rate_bps: int, delay_ns: int) -> None:
        name = f"{src.name}->{dst.name}"
        is_host_nic = isinstance(src, Host)
        schedules, classifier = self.make_queues(name, rate_bps, is_host_nic)
        buffer = src.buffer if isinstance(src, Switch) else UnlimitedBuffer()
        link = Link(self.sim, dst, delay_ns)
        port = EgressPort(self.sim, name, rate_bps, buffer, schedules, classifier, link)
        src.attach_port(dst.id, port)


# ----------------------------------------------------------- the registry


@dataclass(frozen=True)
class RegisteredTopology:
    """One buildable topology kind: its spec dataclass and builder."""

    kind: str
    spec_cls: Type
    #: builder(sim, make_queues, spec) -> handle (Dumbbell/Star/Clos/...)
    builder: Callable


#: kind -> registration; the classic shapes register at import time below,
#: other modules extend via :func:`register_topology`.
_REGISTRY: Dict[str, RegisteredTopology] = {}

#: kinds provided by modules that register on import (resolved on demand so
#: ``build("fabric", ...)`` works without an explicit fabric import).
_LAZY_KINDS: Dict[str, str] = {"fabric": "repro.net.fabric"}


def register_topology(kind: str, spec_cls: Type, builder: Callable,
                      replace: bool = False) -> None:
    """Register a buildable topology kind.

    ``builder(sim, make_queues, spec)`` must accept a ``spec_cls`` instance
    and return a handle exposing at least ``topo``, ``hosts``, ``racks()``
    and ``tor_uplinks()`` (the contract the experiment runner drives).
    Registering an existing kind without ``replace=True`` is an error.
    """
    if not replace and kind in _REGISTRY:
        raise ValueError(f"topology kind {kind!r} is already registered")
    _REGISTRY[kind] = RegisteredTopology(kind, spec_cls, builder)


def registered_topology(kind: str) -> RegisteredTopology:
    """Resolve a registration, importing lazily-provided kinds on demand."""
    entry = _REGISTRY.get(kind)
    if entry is None and kind in _LAZY_KINDS:
        importlib.import_module(_LAZY_KINDS[kind])
        entry = _REGISTRY.get(kind)
    if entry is None:
        raise KeyError(
            f"unknown topology kind {kind!r}; registered kinds: "
            f"{', '.join(topology_kinds())}")
    return entry


def topology_kinds() -> Tuple[str, ...]:
    """All buildable kinds (including lazily-registered ones)."""
    return tuple(sorted(set(_REGISTRY) | set(_LAZY_KINDS)))


def spec_class(kind: str) -> Type:
    """The spec dataclass a kind's builder consumes."""
    return registered_topology(kind).spec_cls


def build(kind: str, sim: Simulator, make_queues: QueueFactory, spec=None):
    """Build a topology of ``kind`` through the registry.

    ``spec=None`` builds the kind's default spec. The spec's type is
    checked against the registration so a ClosSpec handed to "dumbbell"
    fails loudly instead of producing a half-wired fabric.
    """
    entry = registered_topology(kind)
    if spec is None:
        spec = entry.spec_cls()
    elif not isinstance(spec, entry.spec_cls):
        raise TypeError(
            f"topology kind {kind!r} takes a {entry.spec_cls.__name__}, "
            f"got {type(spec).__name__}")
    return entry.builder(sim, make_queues, spec)


# --------------------------------------------------------------- builders


@dataclass
class DumbbellSpec:
    """N senders and N receivers joined by one bottleneck link."""

    n_pairs: int = 1
    rate_bps: int = 10 * GBPS
    bottleneck_bps: Optional[int] = None  # defaults to rate_bps
    link_delay_ns: int = 4 * MICROS
    host_delay_ns: int = 2 * MICROS
    buffer_bytes: int = 4_500_000
    buffer_alpha: float = 0.25


@dataclass
class Dumbbell:
    topo: Topology
    senders: List[Host]
    receivers: List[Host]
    left: Switch
    right: Switch

    @property
    def bottleneck(self) -> EgressPort:
        """The contended left->right port."""
        return self.topo.port(self.left, self.right)


def _build_dumbbell(
    sim: Simulator, make_queues: QueueFactory, spec: DumbbellSpec
) -> Dumbbell:
    topo = Topology(sim, make_queues)
    left = topo.add_switch("swL", spec.buffer_bytes, spec.buffer_alpha)
    right = topo.add_switch("swR", spec.buffer_bytes, spec.buffer_alpha)
    topo.connect(left, right, spec.bottleneck_bps or spec.rate_bps, spec.link_delay_ns)
    senders, receivers = [], []
    host_delay = spec.link_delay_ns + spec.host_delay_ns
    for i in range(spec.n_pairs):
        s = topo.add_host(f"s{i}")
        r = topo.add_host(f"r{i}")
        topo.connect(s, left, spec.rate_bps, host_delay)
        topo.connect(r, right, spec.rate_bps, host_delay)
        senders.append(s)
        receivers.append(r)
    topo.finalize()
    return Dumbbell(topo, senders, receivers, left, right)


@dataclass
class StarSpec:
    """Hosts on a single switch — the testbed's two-to-one and incast shape."""

    n_hosts: int = 3
    rate_bps: int = 10 * GBPS
    link_delay_ns: int = 4 * MICROS
    host_delay_ns: int = 2 * MICROS
    buffer_bytes: int = 4_500_000
    buffer_alpha: float = 0.25


@dataclass
class Star:
    topo: Topology
    hosts: List[Host]
    switch: Switch

    def downlink(self, host: Host) -> EgressPort:
        """The switch port facing ``host`` (the incast bottleneck)."""
        return self.topo.port(self.switch, host)


def _build_star(sim: Simulator, make_queues: QueueFactory, spec: StarSpec) -> Star:
    topo = Topology(sim, make_queues)
    switch = topo.add_switch("sw", spec.buffer_bytes, spec.buffer_alpha)
    hosts = []
    delay = spec.link_delay_ns + spec.host_delay_ns
    for i in range(spec.n_hosts):
        h = topo.add_host(f"h{i}")
        topo.connect(h, switch, spec.rate_bps, delay)
        hosts.append(h)
    topo.finalize()
    return Star(topo, hosts, switch)


@dataclass
class ClosSpec:
    """3-tier Clos matching §6.2 at full scale.

    Paper values: 8 pods × 2 aggs × 4 ToRs × 6 hosts = 192 hosts, 8 cores,
    40 Gbps everywhere, 3:1 ToR oversubscription (6 host links down, 2
    uplinks). Defaults here are a scaled-down version with the same shape;
    pass the paper numbers to run full scale.
    """

    n_pods: int = 2
    aggs_per_pod: int = 2
    tors_per_pod: int = 2
    hosts_per_tor: int = 4
    cores_per_group: int = 1  # cores per agg position; n_cores = aggs_per_pod * this
    rate_bps: int = 10 * GBPS
    link_delay_ns: int = 4 * MICROS
    host_delay_ns: int = 2 * MICROS
    buffer_bytes: int = 4_500_000
    buffer_alpha: float = 0.25

    @property
    def n_hosts(self) -> int:
        return self.n_pods * self.tors_per_pod * self.hosts_per_tor

    @classmethod
    def paper_scale(cls) -> "ClosSpec":
        from repro.sim.units import GBPS as _G

        return cls(
            n_pods=8,
            aggs_per_pod=2,
            tors_per_pod=4,
            hosts_per_tor=6,
            cores_per_group=4,
            rate_bps=40 * _G,
        )


@dataclass
class Clos:
    topo: Topology
    cores: List[Switch]
    aggs: List[List[Switch]]  # per pod
    tors: List[List[Switch]]  # per pod
    hosts_by_tor: Dict[int, List[Host]]  # ToR switch id -> hosts
    spec: ClosSpec

    @property
    def hosts(self) -> List[Host]:
        return self.topo.hosts

    def rack_of(self, host: Host) -> int:
        """Index of the host's rack (ToR) in generation order."""
        for rack_idx, (tor_id, members) in enumerate(sorted(self.hosts_by_tor.items())):
            if host in members:
                return rack_idx
        raise ValueError(f"host {host.name} not in any rack")

    def racks(self) -> List[List[Host]]:
        return [members for _, members in sorted(self.hosts_by_tor.items())]

    def tor_uplinks(self) -> List[EgressPort]:
        """ToR -> Agg ports: the paper's 'core load' measurement points."""
        ports = []
        for pod_tors, pod_aggs in zip(self.tors, self.aggs):
            for tor in pod_tors:
                for agg in pod_aggs:
                    ports.append(self.topo.port(tor, agg))
        return ports


def _build_clos(
    sim: Simulator, make_queues: QueueFactory, spec: ClosSpec
) -> Clos:
    topo = Topology(sim, make_queues)
    n_cores = spec.aggs_per_pod * spec.cores_per_group
    cores = [
        topo.add_switch(f"core{c}", spec.buffer_bytes, spec.buffer_alpha)
        for c in range(n_cores)
    ]
    aggs: List[List[Switch]] = []
    tors: List[List[Switch]] = []
    hosts_by_tor: Dict[int, List[Host]] = {}
    host_delay = spec.link_delay_ns + spec.host_delay_ns
    for core in cores:
        core.ecmp_salt = 3
    for p in range(spec.n_pods):
        pod_aggs = [
            topo.add_switch(f"agg{p}.{a}", spec.buffer_bytes, spec.buffer_alpha)
            for a in range(spec.aggs_per_pod)
        ]
        pod_tors = [
            topo.add_switch(f"tor{p}.{t}", spec.buffer_bytes, spec.buffer_alpha)
            for t in range(spec.tors_per_pod)
        ]
        for agg in pod_aggs:
            agg.ecmp_salt = 2
        for tor in pod_tors:
            tor.ecmp_salt = 1
        # Each agg position `a` uplinks to its core group.
        for a, agg in enumerate(pod_aggs):
            group = cores[a * spec.cores_per_group : (a + 1) * spec.cores_per_group]
            for core in group:
                topo.connect(agg, core, spec.rate_bps, spec.link_delay_ns)
        # Every ToR connects to every agg in its pod.
        for t, tor in enumerate(pod_tors):
            for agg in pod_aggs:
                topo.connect(tor, agg, spec.rate_bps, spec.link_delay_ns)
            members = []
            for h in range(spec.hosts_per_tor):
                host = topo.add_host(f"h{p}.{t}.{h}")
                topo.connect(host, tor, spec.rate_bps, host_delay)
                members.append(host)
            hosts_by_tor[tor.id] = members
        aggs.append(pod_aggs)
        tors.append(pod_tors)
    topo.finalize()
    return Clos(topo, cores, aggs, tors, hosts_by_tor, spec)


# The classic shapes are just registry entries; the public build_* names
# are thin shims kept for callers that predate the registry.
register_topology("dumbbell", DumbbellSpec, _build_dumbbell)
register_topology("star", StarSpec, _build_star)
register_topology("clos", ClosSpec, _build_clos)


def build_dumbbell(
    sim: Simulator, make_queues: QueueFactory, spec: Optional[DumbbellSpec] = None
) -> Dumbbell:
    return build("dumbbell", sim, make_queues, spec)


def build_star(
    sim: Simulator, make_queues: QueueFactory, spec: Optional[StarSpec] = None
) -> Star:
    return build("star", sim, make_queues, spec)


def build_clos(
    sim: Simulator, make_queues: QueueFactory, spec: Optional[ClosSpec] = None
) -> Clos:
    return build("clos", sim, make_queues, spec)
