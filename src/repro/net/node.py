"""Base class for network nodes (hosts and switches)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.port import EgressPort
    from repro.sim.engine import Simulator


class Node:
    """A device with an id, a name, and egress ports keyed by peer node id."""

    __slots__ = ("sim", "id", "name", "ports")

    def __init__(self, sim: "Simulator", node_id: int, name: str) -> None:
        self.sim = sim
        self.id = node_id
        self.name = name
        #: peer node id -> port that reaches that peer
        self.ports: Dict[int, "EgressPort"] = {}

    def attach_port(self, peer_id: int, port: "EgressPort") -> None:
        if peer_id in self.ports:
            raise ValueError(f"{self.name} already has a port toward node {peer_id}")
        self.ports[peer_id] = port

    def receive(self, pkt: "Packet") -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} id={self.id}>"
