"""Empirical flow-size distributions (§6.2 benchmark workloads).

Four realistic workloads drive the paper's simulations:

* ``websearch``     — the DCTCP web-search cluster [2];
* ``datamining``    — the VL2 data-mining cluster [14];
* ``cachefollower`` — Facebook cache-follower machines [41];
* ``hadoop``        — Facebook Hadoop machines [41].

The CDFs below are piecewise transcriptions of the published distributions
(the exact traces are not public; DESIGN.md records this substitution).
Sampling uses inverse-transform with log-linear interpolation between knots,
appropriate for sizes spanning five decades.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np


class EmpiricalCdf:
    """Piecewise CDF over flow sizes in bytes."""

    def __init__(self, points: Sequence[Tuple[float, float]], name: str = "") -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise ValueError(f"{name}: sizes must be strictly increasing")
        if any(b < a for a, b in zip(ys, ys[1:])):
            raise ValueError(f"{name}: CDF must be nondecreasing")
        if ys[0] != 0.0 or ys[-1] != 1.0:
            raise ValueError(f"{name}: CDF must start at 0 and end at 1")
        if xs[0] < 1:
            raise ValueError(f"{name}: smallest size must be >= 1 byte")
        self.name = name
        self._xs = np.asarray(xs, dtype=float)
        self._ys = np.asarray(ys, dtype=float)
        self._log_xs = np.log(self._xs)

    def sample(self, rng: np.random.Generator, scale: float = 1.0) -> int:
        """Draw one flow size (bytes), optionally divided by ``scale``."""
        u = rng.random()
        size = self._inverse(u)
        return max(1, int(size / scale))

    def sample_many(self, rng: np.random.Generator, n: int, scale: float = 1.0):
        """Draw ``n`` flow sizes (bytes) in one vectorized pass.

        Consumes exactly ``n`` uniforms from ``rng`` — ``Generator.random(n)``
        reads the same stream positions the scalar :meth:`sample` loop would —
        so mixing batch and scalar sampling keeps runs deterministic. The
        returned sizes themselves may differ from the scalar path by one unit
        in the last place (``np.exp`` vs ``math.exp`` rounding; see DESIGN.md
        §6h on the cache salt bump that accompanied this change).
        """
        if n <= 0:
            return []
        xs = self._xs
        ys = self._ys
        u = rng.random(n)
        idx = np.searchsorted(ys, u, side="left")
        idx = np.minimum(idx, len(ys) - 1)
        low = idx <= 0
        i = np.where(low, 1, idx)  # safe segment index for the interp math
        y0 = ys[i - 1]
        dy = ys[i] - y0
        flat = dy == 0.0
        frac = (u - y0) / np.where(flat, 1.0, dy)
        lx0 = self._log_xs[i - 1]
        size = np.exp(lx0 + frac * (self._log_xs[i] - lx0))
        size = np.where(flat, xs[i], size)
        size = np.where(low, xs[0], size)
        if scale != 1.0:
            size = size / scale
        # int64 cast truncates toward zero, matching ``int()`` on positives.
        return np.maximum(1, size.astype(np.int64)).tolist()

    def _inverse(self, u: float) -> float:
        ys = self._ys
        idx = int(np.searchsorted(ys, u, side="left"))
        if idx <= 0:
            return float(self._xs[0])
        if idx >= len(ys):
            return float(self._xs[-1])
        y0, y1 = ys[idx - 1], ys[idx]
        if y1 == y0:
            return float(self._xs[idx])
        frac = (u - y0) / (y1 - y0)
        lx0, lx1 = self._log_xs[idx - 1], self._log_xs[idx]
        return math.exp(lx0 + frac * (lx1 - lx0))

    def mean_bytes(self, scale: float = 1.0) -> float:
        """Mean flow size under log-linear interpolation (closed form).

        Within a segment the inverse CDF is ``x(f) = x0 * (x1/x0)**f`` with
        ``f`` uniform on [0, 1), so the segment's conditional mean is
        ``∫x(f)df = (x1 - x0) / (ln x1 - ln x0)`` — the logarithmic mean of
        the endpoints — weighted by the segment's probability mass. The
        midpoint quadrature this replaces underestimated convex segments,
        which skewed the Poisson arrival rate high on heavy-tailed CDFs
        (datamining's 100–500 MB tail) for every offered-load sweep.
        """
        dy = np.diff(self._ys)
        seg_mean = np.diff(self._xs) / np.diff(self._log_xs)
        # Zero-mass segments contribute nothing; xs strictly increasing
        # keeps every denominator positive.
        return float(np.dot(seg_mean, dy)) / scale

    def fraction_below(self, size_bytes: float) -> float:
        """CDF value at ``size_bytes`` (log-linear interpolation)."""
        if size_bytes <= self._xs[0]:
            return float(self._ys[0])
        if size_bytes >= self._xs[-1]:
            return 1.0
        lx = math.log(size_bytes)
        idx = int(np.searchsorted(self._log_xs, lx, side="right"))
        lx0, lx1 = self._log_xs[idx - 1], self._log_xs[idx]
        y0, y1 = self._ys[idx - 1], self._ys[idx]
        if lx1 == lx0:
            return float(y1)
        return float(y0 + (y1 - y0) * (lx - lx0) / (lx1 - lx0))


_KB = 1_000
_MB = 1_000_000

#: Web search [2] — bimodal: >50% of flows under ~60 kB, heavy 1-30 MB tail.
WEBSEARCH = EmpiricalCdf(
    [
        (1 * _KB, 0.0),
        (6 * _KB, 0.15),
        (13 * _KB, 0.30),
        (19 * _KB, 0.45),
        (33 * _KB, 0.60),
        (53 * _KB, 0.70),
        (133 * _KB, 0.80),
        (667 * _KB, 0.90),
        (1_340 * _KB, 0.95),
        (3_300 * _KB, 0.98),
        (6_700 * _KB, 0.99),
        (20 * _MB, 1.0),
    ],
    name="websearch",
)

#: Data mining [14] — extremely heavy-tailed: half the flows fit in one
#: packet while the top 1% reach hundreds of MB.
DATAMINING = EmpiricalCdf(
    [
        (100, 0.0),
        (1 * _KB, 0.50),
        (2 * _KB, 0.60),
        (4 * _KB, 0.70),
        (10 * _KB, 0.80),
        (400 * _KB, 0.90),
        (3_200 * _KB, 0.95),
        (100 * _MB, 0.99),
        (500 * _MB, 1.0),
    ],
    name="datamining",
)

#: Cache follower [41] — dominated by sub-10 kB responses with a modest tail.
CACHEFOLLOWER = EmpiricalCdf(
    [
        (100, 0.0),
        (300, 0.30),
        (1 * _KB, 0.50),
        (2 * _KB, 0.60),
        (5 * _KB, 0.70),
        (10 * _KB, 0.80),
        (100 * _KB, 0.90),
        (1 * _MB, 0.97),
        (10 * _MB, 1.0),
    ],
    name="cachefollower",
)

#: Hadoop [41] — mostly small control/shuffle messages, 10 MB tail.
HADOOP = EmpiricalCdf(
    [
        (150, 0.0),
        (300, 0.10),
        (1 * _KB, 0.30),
        (2 * _KB, 0.50),
        (10 * _KB, 0.70),
        (100 * _KB, 0.90),
        (1 * _MB, 0.95),
        (10 * _MB, 1.0),
    ],
    name="hadoop",
)

WORKLOADS: Dict[str, EmpiricalCdf] = {
    "websearch": WEBSEARCH,
    "datamining": DATAMINING,
    "cachefollower": CACHEFOLLOWER,
    "hadoop": HADOOP,
}


def workload_cdf(name: str) -> EmpiricalCdf:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
