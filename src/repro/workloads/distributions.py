"""Flow-size distributions: the §6.2 empirical CDFs + parametric models.

Four realistic workloads drive the paper's simulations:

* ``websearch``     — the DCTCP web-search cluster [2];
* ``datamining``    — the VL2 data-mining cluster [14];
* ``cachefollower`` — Facebook cache-follower machines [41];
* ``hadoop``        — Facebook Hadoop machines [41].

The CDFs below are piecewise transcriptions of the published distributions
(the exact traces are not public; DESIGN.md records this substitution).
Sampling uses inverse-transform with log-linear interpolation between knots,
appropriate for sizes spanning five decades.

Alongside them, :class:`LognormalSizes`, :class:`BoundedParetoSizes`, and
:class:`BimodalSizes` provide parametric size models for the streaming
generator suite (:mod:`repro.workloads.gen`), all conforming to the same
:class:`SizeModel` protocol.

Every model distinguishes the *analytic* mean (``mean_bytes``: the mean of
the continuous law divided by ``scale``) from the *realized* mean
(``realized_mean_bytes``: the mean of what ``sample`` actually returns,
``E[max(1, int(X / scale))]``). Truncation and the 1-byte clamp inflate the
realized mean on small-flow distributions at large ``scale`` — dividing the
offered byte rate by the analytic mean therefore overshoots the nominal
load (cachefollower at scale 4096 realizes ~1.1% hot). Arrival-rate
computations
must use the realized mean; see DESIGN.md §6k.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

#: Cutoff for the exact term-by-term survival sum in :func:`realized_mean`;
#: beyond it the tail closes in continuous form (error < tail_mass / 2
#: sampled bytes — by Markov, relative error under 1/(2 * 2^16)).
_REALIZED_SUM_TERMS = 1 << 16


def realized_mean(survival_many: Callable[[np.ndarray], np.ndarray],
                  partial_mean_above: Callable[[float], float],
                  scale: float) -> float:
    """``E[max(1, int(X / scale))]`` for a law given by its survival function.

    Uses the layer-cake identity ``E[max(1, floor(v))] = 1 + sum_{k>=2}
    P(v >= k)`` with ``v = X / scale``. The sum runs exactly (vectorized)
    up to ``k = 2^16``; the remainder ``E[(floor(v) - K)^+]`` closes as
    ``E[(v - K)^+] - P(v > K)/2`` (the equidistributed-fraction
    correction), where ``E[(v - K)^+]`` comes from the model's closed-form
    partial mean. The absolute error is bounded by ``P(v > K)/2 <=
    E[v]/2K``, i.e. relative error below ``2^-17`` for any law.
    """
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    ks = np.arange(2.0, float(_REALIZED_SUM_TERMS) + 1.0) * scale
    total = 1.0 + float(np.sum(survival_many(ks)))
    edge = float(_REALIZED_SUM_TERMS) * scale
    tail_mass = float(survival_many(np.asarray([edge]))[0])
    if tail_mass > 0.0:
        excess = (partial_mean_above(edge) / scale
                  - _REALIZED_SUM_TERMS * tail_mass)
        total += max(0.0, excess - 0.5 * tail_mass)
    return total


class SizeModel:
    """Protocol shared by the empirical CDFs and parametric size models.

    ``sample`` must return ``max(1, int(draw / scale))`` for one underlying
    draw; ``survival_many``/``partial_mean_above`` describe the continuous
    law in unscaled bytes and power the exact realized-mean computation.
    """

    name: str = "sizes"

    def _draw(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, scale: float = 1.0) -> int:
        """Draw one flow size (bytes), optionally divided by ``scale``."""
        return max(1, int(self._draw(rng) / scale))

    def survival_many(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized ``P(X > s)`` in unscaled bytes."""
        raise NotImplementedError

    def partial_mean_above(self, size_bytes: float) -> float:
        """``E[X * 1{X > a}]`` in unscaled bytes (closed form)."""
        raise NotImplementedError

    def mean_bytes(self, scale: float = 1.0) -> float:
        """Mean of the continuous law divided by ``scale`` (analytic)."""
        raise NotImplementedError

    def realized_mean_bytes(self, scale: float = 1.0) -> float:
        """Mean of what :meth:`sample` actually returns.

        ``E[max(1, int(X / scale))]`` — the truncated-and-clamped mean.
        This is the correct divisor for arrival-rate (offered load)
        computations; :meth:`mean_bytes` undershoots it whenever ``scale``
        pushes mass toward single-digit sizes.
        """
        return realized_mean(self.survival_many, self.partial_mean_above,
                             scale)

    def describe(self) -> str:
        return self.name


class EmpiricalCdf(SizeModel):
    """Piecewise CDF over flow sizes in bytes."""

    def __init__(self, points: Sequence[Tuple[float, float]], name: str = "") -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise ValueError(f"{name}: sizes must be strictly increasing")
        if any(b < a for a, b in zip(ys, ys[1:])):
            raise ValueError(f"{name}: CDF must be nondecreasing")
        if ys[0] != 0.0 or ys[-1] != 1.0:
            raise ValueError(f"{name}: CDF must start at 0 and end at 1")
        if xs[0] < 1:
            raise ValueError(f"{name}: smallest size must be >= 1 byte")
        self.name = name
        self._xs = np.asarray(xs, dtype=float)
        self._ys = np.asarray(ys, dtype=float)
        self._log_xs = np.log(self._xs)

    def sample(self, rng: np.random.Generator, scale: float = 1.0) -> int:
        """Draw one flow size (bytes), optionally divided by ``scale``."""
        u = rng.random()
        size = self._inverse(u)
        return max(1, int(size / scale))

    def sample_many(self, rng: np.random.Generator, n: int, scale: float = 1.0):
        """Draw ``n`` flow sizes (bytes) in one vectorized pass.

        Consumes exactly ``n`` uniforms from ``rng`` — ``Generator.random(n)``
        reads the same stream positions the scalar :meth:`sample` loop would —
        so mixing batch and scalar sampling keeps runs deterministic. The
        returned sizes themselves may differ from the scalar path by one unit
        in the last place (``np.exp`` vs ``math.exp`` rounding; see DESIGN.md
        §6h on the cache salt bump that accompanied this change).
        """
        if n <= 0:
            return []
        xs = self._xs
        ys = self._ys
        u = rng.random(n)
        idx = np.searchsorted(ys, u, side="left")
        idx = np.minimum(idx, len(ys) - 1)
        low = idx <= 0
        i = np.where(low, 1, idx)  # safe segment index for the interp math
        y0 = ys[i - 1]
        dy = ys[i] - y0
        flat = dy == 0.0
        frac = (u - y0) / np.where(flat, 1.0, dy)
        lx0 = self._log_xs[i - 1]
        size = np.exp(lx0 + frac * (self._log_xs[i] - lx0))
        size = np.where(flat, xs[i], size)
        size = np.where(low, xs[0], size)
        if scale != 1.0:
            size = size / scale
        # int64 cast truncates toward zero, matching ``int()`` on positives.
        return np.maximum(1, size.astype(np.int64)).tolist()

    def _inverse(self, u: float) -> float:
        ys = self._ys
        idx = int(np.searchsorted(ys, u, side="left"))
        if idx <= 0:
            return float(self._xs[0])
        if idx >= len(ys):
            return float(self._xs[-1])
        y0, y1 = ys[idx - 1], ys[idx]
        if y1 == y0:
            return float(self._xs[idx])
        frac = (u - y0) / (y1 - y0)
        lx0, lx1 = self._log_xs[idx - 1], self._log_xs[idx]
        return math.exp(lx0 + frac * (lx1 - lx0))

    def mean_bytes(self, scale: float = 1.0) -> float:
        """Mean flow size under log-linear interpolation (closed form).

        Within a segment the inverse CDF is ``x(f) = x0 * (x1/x0)**f`` with
        ``f`` uniform on [0, 1), so the segment's conditional mean is
        ``∫x(f)df = (x1 - x0) / (ln x1 - ln x0)`` — the logarithmic mean of
        the endpoints — weighted by the segment's probability mass. The
        midpoint quadrature this replaces underestimated convex segments,
        which skewed the Poisson arrival rate high on heavy-tailed CDFs
        (datamining's 100–500 MB tail) for every offered-load sweep.
        """
        dy = np.diff(self._ys)
        seg_mean = np.diff(self._xs) / np.diff(self._log_xs)
        # Zero-mass segments contribute nothing; xs strictly increasing
        # keeps every denominator positive.
        return float(np.dot(seg_mean, dy)) / scale

    def fraction_below(self, size_bytes: float) -> float:
        """CDF value at ``size_bytes`` (log-linear interpolation)."""
        if size_bytes <= self._xs[0]:
            return float(self._ys[0])
        if size_bytes >= self._xs[-1]:
            return 1.0
        lx = math.log(size_bytes)
        idx = int(np.searchsorted(self._log_xs, lx, side="right"))
        lx0, lx1 = self._log_xs[idx - 1], self._log_xs[idx]
        y0, y1 = self._ys[idx - 1], self._ys[idx]
        if lx1 == lx0:
            return float(y1)
        return float(y0 + (y1 - y0) * (lx - lx0) / (lx1 - lx0))

    def survival_many(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized ``1 - fraction_below`` (same log-linear law)."""
        sizes = np.asarray(sizes, dtype=float)
        out = np.empty_like(sizes)
        below = sizes <= self._xs[0]
        above = sizes >= self._xs[-1]
        mid = ~(below | above)
        out[below] = 1.0
        out[above] = 0.0
        if np.any(mid):
            out[mid] = 1.0 - np.interp(np.log(sizes[mid]), self._log_xs,
                                       self._ys)
        return out

    def partial_mean_above(self, size_bytes: float) -> float:
        """``E[X * 1{X > a}]``: the log-mean mass of segments above ``a``.

        Within a segment ``x(f) = x0 * (x1/x0)**f`` with ``f`` uniform, so
        the portion above ``a`` contributes ``dy * (x1 - max(a, x0)) /
        (ln x1 - ln x0)`` — the same closed form as :meth:`mean_bytes`
        with the lower endpoint moved up to ``a``.
        """
        a = float(size_bytes)
        if a >= self._xs[-1]:
            return 0.0
        total = 0.0
        for i in range(1, len(self._xs)):
            x1 = float(self._xs[i])
            if x1 <= a:
                continue
            dy = float(self._ys[i] - self._ys[i - 1])
            if dy == 0.0:
                continue
            lo = max(a, float(self._xs[i - 1]))
            total += dy * (x1 - lo) / float(self._log_xs[i]
                                            - self._log_xs[i - 1])
        return total


def _erfc_many(xs: np.ndarray) -> np.ndarray:
    """Vectorized ``math.erfc`` (numpy has no erfc; scipy is not a dep)."""
    flat = np.asarray(xs, dtype=float).ravel()
    return np.fromiter((math.erfc(v) for v in flat), dtype=float,
                       count=flat.size).reshape(np.shape(xs))


class LognormalSizes(SizeModel):
    """Lognormal flow sizes parameterized by mean and shape ``sigma``."""

    def __init__(self, mean_bytes: float, sigma: float,
                 name: str = "") -> None:
        if mean_bytes < 1.0:
            raise ValueError(f"mean_bytes must be >= 1, got {mean_bytes}")
        if sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self._mean = float(mean_bytes)
        self.sigma = float(sigma)
        self._mu = math.log(self._mean) - 0.5 * self.sigma ** 2
        self.name = name or f"lognormal(mean={mean_bytes:g},sigma={sigma:g})"

    def _draw(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def survival_many(self, sizes: np.ndarray) -> np.ndarray:
        sizes = np.asarray(sizes, dtype=float)
        z = (np.log(np.maximum(sizes, 1e-300)) - self._mu) \
            / (self.sigma * math.sqrt(2.0))
        out = 0.5 * _erfc_many(z)
        return np.where(sizes <= 0.0, 1.0, out)

    def partial_mean_above(self, size_bytes: float) -> float:
        a = float(size_bytes)
        if a <= 0.0:
            return self._mean
        z = (math.log(a) - self._mu - self.sigma ** 2) \
            / (self.sigma * math.sqrt(2.0))
        return self._mean * 0.5 * math.erfc(z)

    def mean_bytes(self, scale: float = 1.0) -> float:
        return self._mean / scale


class BoundedParetoSizes(SizeModel):
    """Pareto(``alpha``) flow sizes truncated to ``[min_bytes, max_bytes]``.

    The unbounded Pareto has infinite mean for ``alpha <= 1``; the upper
    truncation keeps every moment finite while preserving the power-law
    body — the standard heavy-tailed flow-size model.
    """

    def __init__(self, min_bytes: float, alpha: float, max_bytes: float,
                 name: str = "") -> None:
        if min_bytes < 1.0:
            raise ValueError(f"min_bytes must be >= 1, got {min_bytes}")
        if max_bytes <= min_bytes:
            raise ValueError(
                f"max_bytes ({max_bytes}) must exceed min_bytes ({min_bytes})")
        if alpha <= 0.0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.xm = float(min_bytes)
        self.cap = float(max_bytes)
        self.alpha = float(alpha)
        #: total mass of the untruncated law inside [xm, cap]
        self._z = 1.0 - (self.xm / self.cap) ** self.alpha
        self.name = name or (f"pareto(min={min_bytes:g},alpha={alpha:g},"
                             f"max={max_bytes:g})")

    def _draw(self, rng: np.random.Generator) -> float:
        u = rng.random()
        return self.xm * (1.0 - u * self._z) ** (-1.0 / self.alpha)

    def survival_many(self, sizes: np.ndarray) -> np.ndarray:
        sizes = np.asarray(sizes, dtype=float)
        s = np.clip(sizes, self.xm, self.cap)
        surv = ((self.xm / s) ** self.alpha
                - (self.xm / self.cap) ** self.alpha) / self._z
        surv = np.where(sizes <= self.xm, 1.0, surv)
        return np.where(sizes >= self.cap, 0.0, surv)

    def partial_mean_above(self, size_bytes: float) -> float:
        a = max(float(size_bytes), self.xm)
        if a >= self.cap:
            return 0.0
        al, xm, cap = self.alpha, self.xm, self.cap
        if al == 1.0:
            return xm / self._z * math.log(cap / a)
        return (al * xm ** al / self._z
                * (a ** (1.0 - al) - cap ** (1.0 - al)) / (al - 1.0))

    def mean_bytes(self, scale: float = 1.0) -> float:
        return self.partial_mean_above(self.xm) / scale


class BimodalSizes(SizeModel):
    """Mixture of two lognormal modes (mice + elephants).

    A fraction ``large_frac`` of flows draws from the large mode; the rest
    from the small mode. ``sample`` consumes two uniforms (mode pick, then
    the lognormal draw) — documented because stream-position tests care.
    """

    def __init__(self, small_bytes: float, large_bytes: float,
                 large_frac: float, sigma: float = 0.5,
                 name: str = "") -> None:
        if not 0.0 < large_frac < 1.0:
            raise ValueError(
                f"large_frac must be in (0,1), got {large_frac}")
        if large_bytes <= small_bytes:
            raise ValueError(
                f"large mode ({large_bytes}) must exceed small mode "
                f"({small_bytes})")
        self.small = LognormalSizes(small_bytes, sigma)
        self.large = LognormalSizes(large_bytes, sigma)
        self.large_frac = float(large_frac)
        self.name = name or (f"bimodal(small={small_bytes:g},"
                             f"large={large_bytes:g},frac={large_frac:g})")

    def _draw(self, rng: np.random.Generator) -> float:
        mode = self.large if rng.random() < self.large_frac else self.small
        return mode._draw(rng)

    def survival_many(self, sizes: np.ndarray) -> np.ndarray:
        p = self.large_frac
        return (1.0 - p) * self.small.survival_many(sizes) \
            + p * self.large.survival_many(sizes)

    def partial_mean_above(self, size_bytes: float) -> float:
        p = self.large_frac
        return (1.0 - p) * self.small.partial_mean_above(size_bytes) \
            + p * self.large.partial_mean_above(size_bytes)

    def mean_bytes(self, scale: float = 1.0) -> float:
        p = self.large_frac
        return ((1.0 - p) * self.small.mean_bytes()
                + p * self.large.mean_bytes()) / scale


_KB = 1_000
_MB = 1_000_000

#: Web search [2] — bimodal: >50% of flows under ~60 kB, heavy 1-30 MB tail.
WEBSEARCH = EmpiricalCdf(
    [
        (1 * _KB, 0.0),
        (6 * _KB, 0.15),
        (13 * _KB, 0.30),
        (19 * _KB, 0.45),
        (33 * _KB, 0.60),
        (53 * _KB, 0.70),
        (133 * _KB, 0.80),
        (667 * _KB, 0.90),
        (1_340 * _KB, 0.95),
        (3_300 * _KB, 0.98),
        (6_700 * _KB, 0.99),
        (20 * _MB, 1.0),
    ],
    name="websearch",
)

#: Data mining [14] — extremely heavy-tailed: half the flows fit in one
#: packet while the top 1% reach hundreds of MB.
DATAMINING = EmpiricalCdf(
    [
        (100, 0.0),
        (1 * _KB, 0.50),
        (2 * _KB, 0.60),
        (4 * _KB, 0.70),
        (10 * _KB, 0.80),
        (400 * _KB, 0.90),
        (3_200 * _KB, 0.95),
        (100 * _MB, 0.99),
        (500 * _MB, 1.0),
    ],
    name="datamining",
)

#: Cache follower [41] — dominated by sub-10 kB responses with a modest tail.
CACHEFOLLOWER = EmpiricalCdf(
    [
        (100, 0.0),
        (300, 0.30),
        (1 * _KB, 0.50),
        (2 * _KB, 0.60),
        (5 * _KB, 0.70),
        (10 * _KB, 0.80),
        (100 * _KB, 0.90),
        (1 * _MB, 0.97),
        (10 * _MB, 1.0),
    ],
    name="cachefollower",
)

#: Hadoop [41] — mostly small control/shuffle messages, 10 MB tail.
HADOOP = EmpiricalCdf(
    [
        (150, 0.0),
        (300, 0.10),
        (1 * _KB, 0.30),
        (2 * _KB, 0.50),
        (10 * _KB, 0.70),
        (100 * _KB, 0.90),
        (1 * _MB, 0.95),
        (10 * _MB, 1.0),
    ],
    name="hadoop",
)

WORKLOADS: Dict[str, EmpiricalCdf] = {
    "websearch": WEBSEARCH,
    "datamining": DATAMINING,
    "cachefollower": CACHEFOLLOWER,
    "hadoop": HADOOP,
}


def workload_cdf(name: str) -> EmpiricalCdf:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
