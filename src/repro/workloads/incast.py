"""Synchronized foreground incast traffic (§6.2 mixed workload).

"To generate foreground traffic, we randomly select a receiver, and each of
the other hosts sends four 8 kB flows to the receiver." Incast events arrive
as a Poisson process whose rate is chosen so foreground bytes make up the
requested fraction of total traffic volume (10% in Figure 11).
"""

from __future__ import annotations

from typing import List, Sequence, TYPE_CHECKING

import numpy as np

from repro.workloads.arrivals import TrafficSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class IncastTraffic:
    """Generates foreground incast bursts."""

    def __init__(self, hosts: Sequence["Host"], request_bytes: int,
                 flows_per_sender: int, background_bytes_per_ns: float,
                 foreground_fraction: float, sim_time_ns: int,
                 rng: np.random.Generator, first_flow_id: int) -> None:
        if not 0.0 <= foreground_fraction < 1.0:
            raise ValueError("foreground fraction must be in [0,1)")
        self.hosts = list(hosts)
        self.request_bytes = request_bytes
        self.flows_per_sender = flows_per_sender
        self.background_bytes_per_ns = background_bytes_per_ns
        self.foreground_fraction = foreground_fraction
        self.sim_time_ns = sim_time_ns
        self.rng = rng
        self.first_flow_id = first_flow_id

    def bytes_per_event(self) -> int:
        return (len(self.hosts) - 1) * self.flows_per_sender * self.request_bytes

    def event_rate_per_ns(self) -> float:
        """Rate so that fg / (fg + bg) == foreground_fraction."""
        if self.foreground_fraction == 0.0:
            return 0.0
        fg_bytes_per_ns = (
            self.background_bytes_per_ns
            * self.foreground_fraction / (1.0 - self.foreground_fraction)
        )
        return fg_bytes_per_ns / self.bytes_per_event()

    def generate(self) -> List[TrafficSpec]:
        lam = self.event_rate_per_ns()
        if lam <= 0.0:
            return []
        rng = self.rng
        flows: List[TrafficSpec] = []
        flow_id = self.first_flow_id
        t = 0.0
        n = len(self.hosts)
        while True:
            t += rng.exponential(1.0 / lam)
            start = int(t)
            if start >= self.sim_time_ns:
                break
            receiver = self.hosts[int(rng.integers(0, n))]
            for sender in self.hosts:
                if sender.id == receiver.id:
                    continue
                for _ in range(self.flows_per_sender):
                    flows.append(
                        TrafficSpec(
                            flow_id, sender, receiver,
                            self.request_bytes, start, role="fg",
                        )
                    )
                    flow_id += 1
        return flows
