"""Synchronized foreground incast traffic (§6.2 mixed workload).

"To generate foreground traffic, we randomly select a receiver, and each of
the other hosts sends four 8 kB flows to the receiver." Incast events arrive
as a Poisson process whose rate is chosen so foreground bytes make up the
requested fraction of total traffic volume (10% in Figure 11).

Adapter over :class:`repro.workloads.gen.IncastSource` — identical RNG
draw order (gap, then receiver), so the stream matches the historical
materialized loop for any given event rate.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, TYPE_CHECKING

import numpy as np

from repro.workloads.gen import IncastSource, PoissonArrivals, TrafficSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class IncastTraffic:
    """Generates foreground incast bursts."""

    def __init__(self, hosts: Sequence["Host"], request_bytes: int,
                 flows_per_sender: int, background_bytes_per_ns: float,
                 foreground_fraction: float, sim_time_ns: int,
                 rng: np.random.Generator, first_flow_id: int) -> None:
        if not 0.0 <= foreground_fraction < 1.0:
            raise ValueError("foreground fraction must be in [0,1)")
        if foreground_fraction > 0.0 and len(hosts) < 2:
            # With one host there is no sender, bytes_per_event() is 0, and
            # event_rate_per_ns() would divide by it. Fail at construction
            # instead of deep inside rate math.
            raise ValueError(
                f"incast with foreground_fraction={foreground_fraction:g} "
                f"needs at least 2 hosts (a receiver and a sender), got "
                f"{len(hosts)}")
        self.hosts = list(hosts)
        self.request_bytes = request_bytes
        self.flows_per_sender = flows_per_sender
        self.background_bytes_per_ns = background_bytes_per_ns
        self.foreground_fraction = foreground_fraction
        self.sim_time_ns = sim_time_ns
        self.rng = rng
        self.first_flow_id = first_flow_id

    def bytes_per_event(self) -> int:
        return (len(self.hosts) - 1) * self.flows_per_sender * self.request_bytes

    def event_rate_per_ns(self) -> float:
        """Rate so that fg / (fg + bg) == foreground_fraction."""
        if self.foreground_fraction == 0.0:
            return 0.0
        fg_bytes_per_ns = (
            self.background_bytes_per_ns
            * self.foreground_fraction / (1.0 - self.foreground_fraction)
        )
        return fg_bytes_per_ns / self.bytes_per_event()

    def stream(self) -> Iterator[TrafficSpec]:
        """Constant-memory flow stream on this generator's own RNG."""
        lam = self.event_rate_per_ns()
        if lam <= 0.0:
            return iter(())
        source = IncastSource(
            "fg", self.hosts, self.request_bytes, self.flows_per_sender,
            PoissonArrivals(lam), self.sim_time_ns,
            first_flow_id=self.first_flow_id)
        return source.flows(self.rng)

    def generate(self) -> List[TrafficSpec]:
        return list(self.stream())
