"""Traffic generation: flow-size distributions, arrivals, incast, deployment.

The streaming generator suite lives in :mod:`repro.workloads.gen`; the
legacy classes (:class:`PoissonTraffic` and friends) are thin adapters
over it.
"""

from repro.workloads.arrivals import (
    GroupedPoissonTraffic,
    PoissonTraffic,
    TrafficSpec,
)
from repro.workloads.deployment import DeploymentPlan
from repro.workloads.distributions import (
    BimodalSizes,
    BoundedParetoSizes,
    EmpiricalCdf,
    LognormalSizes,
    SizeModel,
    WORKLOADS,
    workload_cdf,
)
from repro.workloads.gen import (
    ArrivalProcess,
    CoflowSource,
    GroupedPairs,
    IncastSource,
    MatrixPairs,
    OnOffArrivals,
    OpenLoopSource,
    PairPicker,
    ParetoArrivals,
    PoissonArrivals,
    SourceConfig,
    StreamDigest,
    TrafficConfig,
    TrafficSource,
    UniformPairs,
    build_sources,
    merge_sources,
    stream_digest,
    stub_groups,
    stub_hosts,
)
from repro.workloads.incast import IncastTraffic

__all__ = [
    "PoissonTraffic",
    "GroupedPoissonTraffic",
    "TrafficSpec",
    "DeploymentPlan",
    "EmpiricalCdf",
    "SizeModel",
    "LognormalSizes",
    "BoundedParetoSizes",
    "BimodalSizes",
    "WORKLOADS",
    "workload_cdf",
    "IncastTraffic",
    # streaming generator suite
    "ArrivalProcess",
    "PoissonArrivals",
    "ParetoArrivals",
    "OnOffArrivals",
    "PairPicker",
    "UniformPairs",
    "GroupedPairs",
    "MatrixPairs",
    "TrafficSource",
    "OpenLoopSource",
    "IncastSource",
    "CoflowSource",
    "SourceConfig",
    "TrafficConfig",
    "StreamDigest",
    "build_sources",
    "merge_sources",
    "stream_digest",
    "stub_hosts",
    "stub_groups",
]
