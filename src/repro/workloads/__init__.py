"""Traffic generation: flow-size distributions, arrivals, incast, deployment."""

from repro.workloads.arrivals import PoissonTraffic, TrafficSpec
from repro.workloads.deployment import DeploymentPlan
from repro.workloads.distributions import EmpiricalCdf, WORKLOADS, workload_cdf
from repro.workloads.incast import IncastTraffic

__all__ = [
    "PoissonTraffic",
    "TrafficSpec",
    "DeploymentPlan",
    "EmpiricalCdf",
    "WORKLOADS",
    "workload_cdf",
    "IncastTraffic",
]
