"""Rack-granularity deployment assignment (§6.2).

The paper deploys the new transport per rack: a fraction of ToRs is
"upgraded", and a flow uses the new transport only if *both* endpoints sit
in upgraded racks. Everything else stays on legacy DCTCP.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class DeploymentPlan:
    """Which hosts run the new transport."""

    def __init__(self, racks: Sequence[Sequence["Host"]], fraction: float,
                 rng: np.random.Generator) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"deployment fraction must be in [0,1], got {fraction}")
        self.fraction = fraction
        n_racks = len(racks)
        # round-half-up, NOT round(): banker's rounding sends exact .5
        # products to the even neighbour, deploying half a rack short
        # (round(0.25 * 2) == 0, round(0.25 * 10) == 2 instead of 3).
        n_upgraded = math.floor(fraction * n_racks + 0.5)
        order = list(rng.permutation(n_racks))
        self.upgraded_racks: Set[int] = set(order[:n_upgraded])
        self.upgraded_hosts: Set[int] = {
            h.id for r in self.upgraded_racks for h in racks[r]
        }

    def is_upgraded(self, host: "Host") -> bool:
        return host.id in self.upgraded_hosts

    def flow_group(self, src: "Host", dst: "Host") -> str:
        """'new' if both endpoints are upgraded, else 'legacy'."""
        if src.id in self.upgraded_hosts and dst.id in self.upgraded_hosts:
            return "new"
        return "legacy"
