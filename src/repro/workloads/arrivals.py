"""Open-loop Poisson background traffic (§6.2).

Flows arrive as a Poisson process; sizes come from the workload CDF; each
flow picks a uniformly random (src, dst) host pair. The arrival rate is set
so the offered load on host access links equals ``load`` — the paper states
loads relative to ToR-uplink (core) utilization, which for all-to-all
uniform traffic on this Clos differs by the fixed oversubscription factor;
:func:`PoissonTraffic.core_load_factor` exposes the conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, TYPE_CHECKING

import numpy as np

from repro.workloads.distributions import EmpiricalCdf

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


@dataclass
class TrafficSpec:
    """One generated flow before endpoint creation."""

    flow_id: int
    src: "Host"
    dst: "Host"
    size_bytes: int
    start_ns: int
    role: str = "bg"


class PoissonTraffic:
    """Generates the background flow list for one experiment."""

    def __init__(self, hosts: Sequence["Host"], cdf: EmpiricalCdf, load: float,
                 rate_bps: int, sim_time_ns: int, rng: np.random.Generator,
                 size_scale: float = 1.0, first_flow_id: int = 1) -> None:
        # load 1.0 = offered load equal to access capacity: the paper-scale
        # full-load operating point. Open-loop lambda stays finite there,
        # so it is a legal (if saturating) configuration.
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0,1], got {load}")
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        self.hosts = list(hosts)
        self.cdf = cdf
        self.load = load
        self.rate_bps = rate_bps
        self.sim_time_ns = sim_time_ns
        self.rng = rng
        self.size_scale = size_scale
        self.first_flow_id = first_flow_id

    def arrival_rate_per_ns(self) -> float:
        """Aggregate flow arrival rate lambda (flows/ns).

        Total offered bits/s = load * n_hosts * access_rate; divide by the
        (scaled) mean flow size in bits.
        """
        mean_bits = self.cdf.mean_bytes(self.size_scale) * 8.0
        offered_bps = self.load * len(self.hosts) * self.rate_bps
        return offered_bps / mean_bits / 1e9

    def generate(self) -> List[TrafficSpec]:
        lam = self.arrival_rate_per_ns()
        t = 0.0
        flow_id = self.first_flow_id
        n_hosts = len(self.hosts)
        flows: List[TrafficSpec] = []
        rng = self.rng
        while True:
            t += rng.exponential(1.0 / lam)
            start = int(t)
            if start >= self.sim_time_ns:
                break
            a = int(rng.integers(0, n_hosts))
            b = int(rng.integers(0, n_hosts - 1))
            if b >= a:
                b += 1
            size = self.cdf.sample(rng, self.size_scale)
            flows.append(
                TrafficSpec(flow_id, self.hosts[a], self.hosts[b], size, start)
            )
            flow_id += 1
        return flows

    @staticmethod
    def core_load_factor(n_racks: int, oversubscription: float) -> float:
        """Multiply access-link load by this to get expected core load for
        uniform all-to-all traffic: a flow leaves its rack with probability
        (n_racks-1)/n_racks, and uplinks are oversubscribed."""
        if n_racks < 2:
            return 0.0
        leave_prob = (n_racks - 1) / n_racks
        return leave_prob * oversubscription


class GroupedPoissonTraffic(PoissonTraffic):
    """Poisson traffic with a locality matrix over host groups.

    ``groups`` partitions the hosts (e.g. by region of a declarative
    fabric); each flow keeps its destination inside the sender's group
    with probability ``intra_fraction`` and crosses groups otherwise.
    With a single (or a singleton) group the pick degrades gracefully to
    whatever choice is feasible, so uniform fabrics stay valid.
    """

    def __init__(self, groups: Sequence[Sequence["Host"]], cdf: EmpiricalCdf,
                 load: float, rate_bps: int, sim_time_ns: int,
                 rng: np.random.Generator, intra_fraction: float,
                 size_scale: float = 1.0, first_flow_id: int = 1) -> None:
        if not 0.0 <= intra_fraction <= 1.0:
            raise ValueError(
                f"intra_fraction must be in [0,1], got {intra_fraction}")
        self.groups = [list(g) for g in groups if g]
        if not self.groups:
            raise ValueError("need at least one non-empty host group")
        hosts = [h for g in self.groups for h in g]
        super().__init__(hosts, cdf, load, rate_bps, sim_time_ns, rng,
                         size_scale=size_scale, first_flow_id=first_flow_id)
        self.intra_fraction = intra_fraction
        self._group_of = {
            id(h): gi for gi, g in enumerate(self.groups) for h in g
        }
        self._index_in_group = {
            id(h): i for g in self.groups for i, h in enumerate(g)
        }

    def generate(self) -> List[TrafficSpec]:
        lam = self.arrival_rate_per_ns()
        t = 0.0
        flow_id = self.first_flow_id
        flows: List[TrafficSpec] = []
        rng = self.rng
        while True:
            t += rng.exponential(1.0 / lam)
            start = int(t)
            if start >= self.sim_time_ns:
                break
            src = self.hosts[int(rng.integers(0, len(self.hosts)))]
            dst = self._pick_dst(src, rng)
            size = self.cdf.sample(rng, self.size_scale)
            flows.append(TrafficSpec(flow_id, src, dst, size, start))
            flow_id += 1
        return flows

    def _pick_dst(self, src: "Host", rng: np.random.Generator) -> "Host":
        gi = self._group_of[id(src)]
        local = self.groups[gi]
        want_intra = rng.random() < self.intra_fraction
        if want_intra and len(local) < 2:
            want_intra = False  # singleton group: must leave
        if not want_intra and len(local) == len(self.hosts):
            want_intra = True  # single group: must stay
        if want_intra:
            k = int(rng.integers(0, len(local) - 1))
            if k >= self._index_in_group[id(src)]:
                k += 1
            return local[k]
        remote_count = len(self.hosts) - len(local)
        k = int(rng.integers(0, remote_count))
        for gj, g in enumerate(self.groups):
            if gj == gi:
                continue
            if k < len(g):
                return g[k]
            k -= len(g)
        raise AssertionError("unreachable: remote pick out of range")
