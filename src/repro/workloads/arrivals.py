"""Open-loop Poisson background traffic (§6.2).

Flows arrive as a Poisson process; sizes come from the workload CDF; each
flow picks a uniformly random (src, dst) host pair. The arrival rate is set
so the offered load on host access links equals ``load`` — the paper states
loads relative to ToR-uplink (core) utilization, which for all-to-all
uniform traffic on this Clos differs by the fixed oversubscription factor;
:func:`PoissonTraffic.core_load_factor` exposes the conversion.

Since the streaming generator suite landed (:mod:`repro.workloads.gen`),
these classes are thin adapters over :class:`~repro.workloads.gen.
OpenLoopSource` — same RNG draw order per flow (gap, pair, size), so the
flow stream is identical to the historical materialized loop for any
given lambda. ``generate()`` still returns a list for existing callers;
``stream()`` exposes the constant-memory iterator.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, TYPE_CHECKING

import numpy as np

from repro.workloads.distributions import EmpiricalCdf
from repro.workloads.gen import (
    GroupedPairs,
    OpenLoopSource,
    PairPicker,
    PoissonArrivals,
    TrafficSpec,
    UniformPairs,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

__all__ = ["TrafficSpec", "PoissonTraffic", "GroupedPoissonTraffic"]


class PoissonTraffic:
    """Generates the background flow list for one experiment."""

    def __init__(self, hosts: Sequence["Host"], cdf: EmpiricalCdf, load: float,
                 rate_bps: int, sim_time_ns: int, rng: np.random.Generator,
                 size_scale: float = 1.0, first_flow_id: int = 1) -> None:
        # load 1.0 = offered load equal to access capacity: the paper-scale
        # full-load operating point. Open-loop lambda stays finite there,
        # so it is a legal (if saturating) configuration.
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0,1], got {load}")
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        self.hosts = list(hosts)
        self.cdf = cdf
        self.load = load
        self.rate_bps = rate_bps
        self.sim_time_ns = sim_time_ns
        self.rng = rng
        self.size_scale = size_scale
        self.first_flow_id = first_flow_id

    def arrival_rate_per_ns(self) -> float:
        """Aggregate flow arrival rate lambda (flows/ns).

        Total offered bits/s = load * n_hosts * access_rate; divide by the
        *realized* mean flow size in bits — ``sample()`` truncates and
        clamps to ``max(1, int(size / scale))``, which inflates the mean of
        small-flow CDFs at large ``size_scale``, so dividing by the
        analytic ``mean_bytes`` would overshoot the offered load.
        """
        mean_bits = self.cdf.realized_mean_bytes(self.size_scale) * 8.0
        offered_bps = self.load * len(self.hosts) * self.rate_bps
        return offered_bps / mean_bits / 1e9

    def _picker(self) -> PairPicker:
        return UniformPairs(self.hosts)

    def _source(self) -> OpenLoopSource:
        return OpenLoopSource(
            "bg", self._picker(), self.cdf,
            PoissonArrivals(self.arrival_rate_per_ns()), self.sim_time_ns,
            size_scale=self.size_scale, first_flow_id=self.first_flow_id)

    def stream(self) -> Iterator[TrafficSpec]:
        """Constant-memory flow stream on this generator's own RNG."""
        return self._source().flows(self.rng)

    def generate(self) -> List[TrafficSpec]:
        return list(self.stream())

    @staticmethod
    def core_load_factor(n_racks: int, oversubscription: float) -> float:
        """Multiply access-link load by this to get expected core load for
        uniform all-to-all traffic: a flow leaves its rack with probability
        (n_racks-1)/n_racks, and uplinks are oversubscribed."""
        if n_racks < 2:
            return 0.0
        leave_prob = (n_racks - 1) / n_racks
        return leave_prob * oversubscription


class GroupedPoissonTraffic(PoissonTraffic):
    """Poisson traffic with a locality matrix over host groups.

    ``groups`` partitions the hosts (e.g. by region of a declarative
    fabric); each flow keeps its destination inside the sender's group
    with probability ``intra_fraction`` and crosses groups otherwise.
    With a single (or a singleton) group the pick degrades gracefully to
    whatever choice is feasible, so uniform fabrics stay valid.
    """

    def __init__(self, groups: Sequence[Sequence["Host"]], cdf: EmpiricalCdf,
                 load: float, rate_bps: int, sim_time_ns: int,
                 rng: np.random.Generator, intra_fraction: float,
                 size_scale: float = 1.0, first_flow_id: int = 1) -> None:
        # GroupedPairs re-validates, but keep the loud errors here so
        # construction fails before any RNG is touched.
        if not 0.0 <= intra_fraction <= 1.0:
            raise ValueError(
                f"intra_fraction must be in [0,1], got {intra_fraction}")
        self.groups = [list(g) for g in groups if g]
        if not self.groups:
            raise ValueError("need at least one non-empty host group")
        hosts = [h for g in self.groups for h in g]
        super().__init__(hosts, cdf, load, rate_bps, sim_time_ns, rng,
                         size_scale=size_scale, first_flow_id=first_flow_id)
        self.intra_fraction = intra_fraction

    def _picker(self) -> PairPicker:
        return GroupedPairs(self.groups, self.intra_fraction)
