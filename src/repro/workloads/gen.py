"""Streaming, composable traffic generation (ROADMAP item 4).

Every traffic source is a :class:`TrafficSource`: a named, *streaming*
iterator of :class:`TrafficSpec`s in nondecreasing start order, constant
memory at millions of flows. Sources compose with
:func:`merge_sources` — a lazy merge-by-start-time over per-source RNG
streams from :class:`repro.sim.rng.RngRegistry`, so:

* **seed stability** — every source draws from its own named stream
  (``traffic.<name>``); adding, removing, or reordering one source never
  perturbs another's flows;
* **constant memory** — nothing is materialized; ``heapq.merge`` holds one
  pending spec per source;
* **exact adapter equivalence** — the legacy classes in
  :mod:`repro.workloads.arrivals` / :mod:`repro.workloads.incast` are thin
  wrappers over these building blocks, consuming the identical RNG draw
  sequence per flow (gap, then pair, then size) as the pre-suite loops.

Building blocks: size models live in
:mod:`repro.workloads.distributions`; here are the interarrival processes
(Poisson, heavy-tailed Pareto, ON/OFF-modulated), pair pickers (uniform,
grouped-locality, full locality matrix), and the sources themselves
(open-loop, synchronized incast, coflow/job scatter-gather with dependent
children released on parent completion).

Declarative configuration: :class:`TrafficConfig` (a frozen block of
:class:`SourceConfig`\\ s, every field cache-canonicalizable) plugs into
``ExperimentConfig.traffic``; :func:`build_sources` turns it into live
sources and the runner pumps the merged stream lazily into the simulator.
See DESIGN.md §6k.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

import numpy as np

from repro.workloads.distributions import (
    BimodalSizes,
    BoundedParetoSizes,
    EmpiricalCdf,
    LognormalSizes,
    SizeModel,
    WORKLOADS,
    workload_cdf,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.sim.rng import RngRegistry

#: Flow-id block per source in a composed suite: source ``i`` numbers its
#: flows from ``i * SOURCE_ID_STRIDE + 1``, so ids stay disjoint and stable
#: regardless of how the merged streams interleave.
SOURCE_ID_STRIDE = 10_000_000


@dataclass
class TrafficSpec:
    """One generated flow before endpoint creation.

    ``children`` carries dependent flows (coflow/job replies): each child's
    ``start_ns`` is a *relative* offset in nanoseconds after the parent
    completes; the runner releases them through the flow-finish callback.
    """

    flow_id: int
    src: "Host"
    dst: "Host"
    size_bytes: int
    start_ns: int
    role: str = "bg"
    children: Tuple["TrafficSpec", ...] = ()


@dataclass(frozen=True)
class StubHost:
    """Minimal ``Host`` stand-in (only ``.id``) for offline sampling."""

    id: int


def stub_hosts(n: int) -> List[StubHost]:
    """``n`` stub hosts for sampling generators without a fabric."""
    return [StubHost(i) for i in range(n)]


def stub_groups(n_hosts: int, n_groups: int) -> List[List[StubHost]]:
    """Stub hosts partitioned into ``n_groups`` near-equal racks."""
    hosts = stub_hosts(n_hosts)
    n_groups = max(1, min(n_groups, n_hosts))
    per = (n_hosts + n_groups - 1) // n_groups
    return [hosts[i:i + per] for i in range(0, n_hosts, per)]


# ------------------------------------------------------------ arrivals


class ArrivalProcess:
    """Interarrival-gap process with a configured long-run rate."""

    def __init__(self, rate_per_ns: float) -> None:
        if rate_per_ns <= 0.0:
            raise ValueError(f"arrival rate must be positive, got "
                             f"{rate_per_ns}")
        self.rate_per_ns = float(rate_per_ns)

    def mean_gap_ns(self) -> float:
        return 1.0 / self.rate_per_ns

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Infinite stream of interarrival gaps (ns, float)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: one exponential draw per flow.

    The gap is drawn as ``rng.exponential(1.0 / rate)`` — the exact call
    the legacy generators made, so adapters stay stream-identical.
    """

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        mean = 1.0 / self.rate_per_ns
        while True:
            yield rng.exponential(mean)

    def describe(self) -> str:
        return "poisson"


class ParetoArrivals(ArrivalProcess):
    """Heavy-tailed (Lomax) gaps with the same long-run rate as Poisson.

    ``gap = mean * (alpha - 1) * Lomax(alpha)`` has mean ``1/rate`` for
    ``alpha > 1`` but far heavier tails — long silences punctuated by
    tight bursts. Lower ``alpha`` = burstier (variance is infinite below
    ``alpha = 2``).
    """

    def __init__(self, rate_per_ns: float, alpha: float = 1.5) -> None:
        super().__init__(rate_per_ns)
        if alpha <= 1.0:
            raise ValueError(
                f"pareto arrivals need alpha > 1 for a finite mean gap, "
                f"got {alpha}")
        self.alpha = float(alpha)

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        unit = (self.alpha - 1.0) / self.rate_per_ns
        while True:
            yield unit * rng.pareto(self.alpha)

    def describe(self) -> str:
        return f"pareto(alpha={self.alpha:g})"


class OnOffArrivals(ArrivalProcess):
    """Markov-modulated ON/OFF bursts preserving the long-run rate.

    The source alternates exponential ON periods (mean ``on_ns``), during
    which arrivals are Poisson at ``rate / duty_cycle``, and silent OFF
    periods (mean ``off_ns``). Long-run rate stays ``rate_per_ns`` while
    short-term intensity is ``1/duty`` times hotter — the classic burst
    model for stressing buffers at equal offered load.
    """

    def __init__(self, rate_per_ns: float, on_ns: float,
                 off_ns: float) -> None:
        super().__init__(rate_per_ns)
        if on_ns <= 0.0:
            raise ValueError(f"on_ns must be positive, got {on_ns}")
        if off_ns < 0.0:
            raise ValueError(f"off_ns must be >= 0, got {off_ns}")
        self.on_ns = float(on_ns)
        self.off_ns = float(off_ns)
        duty = self.on_ns / (self.on_ns + self.off_ns)
        self.burst_rate_per_ns = self.rate_per_ns / duty

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        burst_mean = 1.0 / self.burst_rate_per_ns
        remaining_on = rng.exponential(self.on_ns)
        while True:
            # ON-time needed until the next arrival; wall time adds the
            # OFF periods crossed while accumulating it.
            need = rng.exponential(burst_mean)
            elapsed = 0.0
            while need > remaining_on:
                need -= remaining_on
                elapsed += remaining_on + rng.exponential(self.off_ns)
                remaining_on = rng.exponential(self.on_ns)
            remaining_on -= need
            yield elapsed + need

    def describe(self) -> str:
        return f"onoff(on={self.on_ns:g}ns,off={self.off_ns:g}ns)"


# ------------------------------------------------------------ pair pickers


class PairPicker:
    """Draws (src, dst) host pairs; src != dst always."""

    hosts: List["Host"]

    def pick(self, rng: np.random.Generator) -> Tuple["Host", "Host"]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class UniformPairs(PairPicker):
    """Uniform all-to-all pairs — the legacy ``PoissonTraffic`` pick.

    Draw order per pair: src index, then dst index over ``n - 1`` with the
    classic skip-self bump. Byte-identical to the pre-suite loop.
    """

    def __init__(self, hosts: Sequence["Host"]) -> None:
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        self.hosts = list(hosts)

    def pick(self, rng: np.random.Generator) -> Tuple["Host", "Host"]:
        n = len(self.hosts)
        a = int(rng.integers(0, n))
        b = int(rng.integers(0, n - 1))
        if b >= a:
            b += 1
        return self.hosts[a], self.hosts[b]

    def describe(self) -> str:
        return "uniform"


class GroupedPairs(PairPicker):
    """Two-level locality: stay inside the sender's group with probability
    ``intra_fraction`` — the legacy ``GroupedPoissonTraffic`` pick, draw
    order and degradation rules included (singleton group must leave;
    single group must stay).
    """

    def __init__(self, groups: Sequence[Sequence["Host"]],
                 intra_fraction: float) -> None:
        if not 0.0 <= intra_fraction <= 1.0:
            raise ValueError(
                f"intra_fraction must be in [0,1], got {intra_fraction}")
        self.groups = [list(g) for g in groups if g]
        if not self.groups:
            raise ValueError("need at least one non-empty host group")
        self.hosts = [h for g in self.groups for h in g]
        if len(self.hosts) < 2:
            raise ValueError("need at least two hosts")
        self.intra_fraction = float(intra_fraction)
        self._group_of = {
            id(h): gi for gi, g in enumerate(self.groups) for h in g
        }
        self._index_in_group = {
            id(h): i for g in self.groups for i, h in enumerate(g)
        }

    def pick(self, rng: np.random.Generator) -> Tuple["Host", "Host"]:
        src = self.hosts[int(rng.integers(0, len(self.hosts)))]
        return src, self.pick_dst(src, rng)

    def pick_dst(self, src: "Host", rng: np.random.Generator) -> "Host":
        gi = self._group_of[id(src)]
        local = self.groups[gi]
        want_intra = rng.random() < self.intra_fraction
        if want_intra and len(local) < 2:
            want_intra = False  # singleton group: must leave
        if not want_intra and len(local) == len(self.hosts):
            want_intra = True  # single group: must stay
        if want_intra:
            k = int(rng.integers(0, len(local) - 1))
            if k >= self._index_in_group[id(src)]:
                k += 1
            return local[k]
        remote_count = len(self.hosts) - len(local)
        k = int(rng.integers(0, remote_count))
        for gj, g in enumerate(self.groups):
            if gj == gi:
                continue
            if k < len(g):
                return g[k]
            k -= len(g)
        raise AssertionError("unreachable: remote pick out of range")

    def describe(self) -> str:
        return f"grouped(intra={self.intra_fraction:g})"


class MatrixPairs(PairPicker):
    """Full locality matrix over host groups (racks or regions).

    ``matrix[i][j]`` is the probability a flow from group ``i`` lands in
    group ``j`` (rows must sum to 1). Generalizes :class:`GroupedPairs`,
    which is the special case ``diag = intra`` with the remainder spread
    proportionally to group size. A diagonal pick from a singleton group
    falls through to the next group cyclically (a host cannot send to
    itself), mirroring the grouped degradation rule.
    """

    def __init__(self, groups: Sequence[Sequence["Host"]],
                 matrix: Sequence[Sequence[float]]) -> None:
        self.groups = [list(g) for g in groups if g]
        if not self.groups:
            raise ValueError("need at least one non-empty host group")
        self.hosts = [h for g in self.groups for h in g]
        if len(self.hosts) < 2:
            raise ValueError("need at least two hosts")
        n = len(self.groups)
        rows = [tuple(float(p) for p in row) for row in matrix]
        if len(rows) != n or any(len(r) != n for r in rows):
            raise ValueError(
                f"locality matrix must be {n}x{n} for {n} groups")
        for i, row in enumerate(rows):
            if any(p < 0.0 for p in row):
                raise ValueError(f"matrix row {i} has a negative entry")
            total = sum(row)
            if not 0.999999 <= total <= 1.000001:
                raise ValueError(
                    f"matrix row {i} sums to {total:g}, expected 1")
        self.matrix = rows
        self._cum = [np.cumsum(row) for row in rows]
        self._group_of = {
            id(h): gi for gi, g in enumerate(self.groups) for h in g
        }
        self._index_in_group = {
            id(h): i for g in self.groups for i, h in enumerate(g)
        }

    def pick(self, rng: np.random.Generator) -> Tuple["Host", "Host"]:
        src = self.hosts[int(rng.integers(0, len(self.hosts)))]
        gi = self._group_of[id(src)]
        u = rng.random()
        gj = min(int(np.searchsorted(self._cum[gi], u, side="right")),
                 len(self.groups) - 1)
        if gj == gi:
            local = self.groups[gi]
            if len(local) >= 2:
                k = int(rng.integers(0, len(local) - 1))
                if k >= self._index_in_group[id(src)]:
                    k += 1
                return src, local[k]
            gj = (gj + 1) % len(self.groups)  # singleton: next group over
        g = self.groups[gj]
        return src, g[int(rng.integers(0, len(g)))]

    @staticmethod
    def intra_matrix(n_groups: int, intra: float) -> List[List[float]]:
        """Diagonal-``intra`` matrix with the remainder spread uniformly."""
        if n_groups == 1:
            return [[1.0]]
        off = (1.0 - intra) / (n_groups - 1)
        return [[intra if i == j else off for j in range(n_groups)]
                for i in range(n_groups)]

    def describe(self) -> str:
        return f"matrix({len(self.groups)}x{len(self.groups)})"


# ------------------------------------------------------------ sources


class TrafficSource:
    """A named, streaming source of :class:`TrafficSpec`.

    ``flows(rng)`` must yield specs in nondecreasing ``start_ns`` order
    and hold O(1) state — never a materialized list.
    """

    name: str = "source"

    def flows(self, rng: np.random.Generator) -> Iterator[TrafficSpec]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class OpenLoopSource(TrafficSource):
    """Open-loop unicast flows: arrivals x pairs x sizes.

    RNG draw order per flow — gap, then pair, then size — matches the
    legacy ``PoissonTraffic`` loop exactly, including drawing (and
    discarding) the gap that crosses the horizon.
    """

    def __init__(self, name: str, pairs: PairPicker, sizes: SizeModel,
                 arrivals: ArrivalProcess, sim_time_ns: int,
                 size_scale: float = 1.0, role: str = "bg",
                 first_flow_id: int = 1) -> None:
        self.name = name
        self.pairs = pairs
        self.sizes = sizes
        self.arrivals = arrivals
        self.sim_time_ns = int(sim_time_ns)
        self.size_scale = float(size_scale)
        self.role = role
        self.first_flow_id = int(first_flow_id)

    def flows(self, rng: np.random.Generator) -> Iterator[TrafficSpec]:
        t = 0.0
        fid = self.first_flow_id
        horizon = self.sim_time_ns
        pick = self.pairs.pick
        sample = self.sizes.sample
        scale = self.size_scale
        role = self.role
        for gap in self.arrivals.gaps(rng):
            t += gap
            start = int(t)
            if start >= horizon:
                return
            src, dst = pick(rng)
            size = sample(rng, scale)
            yield TrafficSpec(fid, src, dst, size, start, role=role)
            fid += 1

    def describe(self) -> str:
        return (f"{self.name}: open-loop {self.arrivals.describe()} x "
                f"{self.pairs.describe()} x {self.sizes.describe()}")


class IncastSource(TrafficSource):
    """Synchronized incast events (§6.2 foreground traffic).

    Each event picks one receiver; every other host sends
    ``flows_per_sender`` requests of ``request_bytes`` at the same instant.
    Loop and draw order match the legacy ``IncastTraffic`` generator.
    """

    def __init__(self, name: str, hosts: Sequence["Host"],
                 request_bytes: int, flows_per_sender: int,
                 arrivals: ArrivalProcess, sim_time_ns: int,
                 role: str = "fg", first_flow_id: int = 1) -> None:
        if len(hosts) < 2:
            raise ValueError(
                f"incast needs at least 2 hosts (a receiver and a sender), "
                f"got {len(hosts)}")
        if request_bytes < 1:
            raise ValueError(f"request_bytes must be >= 1, got "
                             f"{request_bytes}")
        if flows_per_sender < 1:
            raise ValueError(f"flows_per_sender must be >= 1, got "
                             f"{flows_per_sender}")
        self.name = name
        self.hosts = list(hosts)
        self.request_bytes = int(request_bytes)
        self.flows_per_sender = int(flows_per_sender)
        self.arrivals = arrivals
        self.sim_time_ns = int(sim_time_ns)
        self.role = role
        self.first_flow_id = int(first_flow_id)

    def bytes_per_event(self) -> int:
        return ((len(self.hosts) - 1) * self.flows_per_sender
                * self.request_bytes)

    def flows(self, rng: np.random.Generator) -> Iterator[TrafficSpec]:
        t = 0.0
        fid = self.first_flow_id
        n = len(self.hosts)
        for gap in self.arrivals.gaps(rng):
            t += gap
            start = int(t)
            if start >= self.sim_time_ns:
                return
            receiver = self.hosts[int(rng.integers(0, n))]
            for sender in self.hosts:
                if sender.id == receiver.id:
                    continue
                for _ in range(self.flows_per_sender):
                    yield TrafficSpec(fid, sender, receiver,
                                      self.request_bytes, start,
                                      role=self.role)
                    fid += 1

    def describe(self) -> str:
        return (f"{self.name}: incast {len(self.hosts) - 1} senders x "
                f"{self.flows_per_sender} x {self.request_bytes}B")


class CoflowSource(TrafficSource):
    """Scatter-gather jobs with dependent reply flows (coflow-style).

    Each job picks an aggregator and ``fanout`` distinct workers; the
    aggregator scatters a ``request_bytes`` request to every worker, and
    each worker's reply (sampled from ``sizes``) is *released only when
    its request completes*, after ``think_ns`` of service time. Replies
    ride on the request specs as ``children`` with relative starts; the
    runner launches them from the flow-finish callback, so reply timing is
    closed-loop — it depends on how fast the fabric served the request.
    """

    def __init__(self, name: str, hosts: Sequence["Host"], sizes: SizeModel,
                 arrivals: ArrivalProcess, fanout: int, request_bytes: int,
                 sim_time_ns: int, size_scale: float = 1.0,
                 think_ns: int = 0, first_flow_id: int = 1) -> None:
        if len(hosts) < 2:
            raise ValueError(
                f"coflow jobs need at least 2 hosts, got {len(hosts)}")
        if not 1 <= fanout <= len(hosts) - 1:
            raise ValueError(
                f"fanout must be in [1, {len(hosts) - 1}] for "
                f"{len(hosts)} hosts, got {fanout}")
        if request_bytes < 1:
            raise ValueError(f"request_bytes must be >= 1, got "
                             f"{request_bytes}")
        if think_ns < 0:
            raise ValueError(f"think_ns must be >= 0, got {think_ns}")
        self.name = name
        self.hosts = list(hosts)
        self.sizes = sizes
        self.arrivals = arrivals
        self.fanout = int(fanout)
        self.request_bytes = int(request_bytes)
        self.sim_time_ns = int(sim_time_ns)
        self.size_scale = float(size_scale)
        self.think_ns = int(think_ns)
        self.first_flow_id = int(first_flow_id)

    def bytes_per_job(self) -> float:
        """Expected bytes per job: requests + realized replies."""
        return self.fanout * (self.request_bytes
                              + self.sizes.realized_mean_bytes(
                                  self.size_scale))

    def flows(self, rng: np.random.Generator) -> Iterator[TrafficSpec]:
        t = 0.0
        fid = self.first_flow_id
        n = len(self.hosts)
        for gap in self.arrivals.gaps(rng):
            t += gap
            start = int(t)
            if start >= self.sim_time_ns:
                return
            agg_i = int(rng.integers(0, n))
            agg = self.hosts[agg_i]
            workers = rng.choice(n - 1, size=self.fanout, replace=False)
            for w in workers:
                wi = int(w)
                if wi >= agg_i:
                    wi += 1
                worker = self.hosts[wi]
                reply = TrafficSpec(
                    fid + 1, worker, agg,
                    self.sizes.sample(rng, self.size_scale),
                    self.think_ns, role="reply",
                )
                yield TrafficSpec(fid, agg, worker, self.request_bytes,
                                  start, role="req", children=(reply,))
                fid += 2

    def describe(self) -> str:
        return (f"{self.name}: coflow fanout={self.fanout} "
                f"req={self.request_bytes}B replies={self.sizes.describe()}")


# ------------------------------------------------------------ composition


def merge_sources(sources: Sequence[TrafficSource],
                  registry: "RngRegistry",
                  prefix: str = "traffic") -> Iterator[TrafficSpec]:
    """Lazily merge sources by start time, one RNG stream per source.

    Stream names are ``<prefix>.<source.name>``, so a source's flows are a
    pure function of (experiment seed, source name, source parameters) —
    composing sources never perturbs any one of them. Duplicate names
    would silently share a stream, so they are rejected.
    """
    names = [s.name for s in sources]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate source names: {sorted(names)}")
    streams = [s.flows(registry.stream(f"{prefix}.{s.name}"))
               for s in sources]
    return heapq.merge(*streams, key=lambda t: (t.start_ns, t.flow_id))


@dataclass(frozen=True)
class StreamDigest:
    """Summary of a flow stream: count, volume, and an order-sensitive hash."""

    flows: int
    total_bytes: int
    sha256: str


def _spec_line(t: TrafficSpec) -> bytes:
    return (f"{t.flow_id},{t.src.id},{t.dst.id},{t.size_bytes},"
            f"{t.start_ns},{t.role};").encode()


def stream_digest(specs: Iterable[TrafficSpec]) -> StreamDigest:
    """Consume a stream and digest it (children hashed with their parent).

    Constant memory: nothing is retained but the running hash, so this is
    also the canonical way to prove seed stability at millions of flows.
    """
    h = hashlib.sha256()
    count = 0
    total = 0
    for t in specs:
        count += 1
        total += t.size_bytes
        h.update(_spec_line(t))
        for c in t.children:
            count += 1
            total += c.size_bytes
            h.update(b"+" + _spec_line(c))
    return StreamDigest(count, total, h.hexdigest())


# ------------------------------------------------------------ declarative


@dataclass(frozen=True)
class SourceConfig:
    """One declarative traffic source (all fields cache-canonicalizable).

    ``sizes`` / ``arrivals`` / ``locality`` use a small spec grammar,
    ``kind:key=value,key=value`` (see the ``parse_*`` functions):

    * sizes: ``empirical[:workload]``, ``lognormal:mean_kb=60,sigma=1.5``,
      ``pareto:min_kb=1,alpha=1.3,max_mb=100``,
      ``bimodal:small_kb=2,large_mb=1,large_frac=0.05,sigma=0.5``
    * arrivals: ``poisson``, ``pareto:alpha=1.5``,
      ``onoff:on_us=50,off_us=450``
    * locality: ``uniform``, ``grouped:intra=0.8``, ``matrix:intra=0.7``
    """

    name: str = "bg"
    #: ``open`` (unicast open-loop), ``incast``, or ``coflow``
    kind: str = "open"
    sizes: str = "empirical"
    arrivals: str = "poisson"
    locality: str = "uniform"
    #: this source's share of the experiment's offered load
    load_share: float = 1.0
    role: str = "bg"
    #: incast / coflow request size (unscaled, like foreground incast)
    request_bytes: int = 8_000
    #: incast: flows each sender contributes per event
    flows_per_sender: int = 4
    #: coflow: workers per job
    fanout: int = 4
    #: coflow: service delay between request completion and reply release
    think_ns: int = 0


@dataclass(frozen=True)
class TrafficConfig:
    """Composable traffic block for ``ExperimentConfig.traffic``.

    When set, the runner streams flows from these sources (merged by
    start time) instead of the legacy PoissonTraffic/IncastTraffic path;
    ``foreground_fraction`` is ignored — express incast as a source.
    """

    sources: Tuple[SourceConfig, ...] = field(
        default_factory=lambda: (SourceConfig(),))


def _parse_spec(spec: str) -> Tuple[str, Dict[str, str], List[str]]:
    """Split ``kind:a=1,b=2`` / ``kind:positional`` into its parts."""
    kind, _, rest = spec.partition(":")
    kwargs: Dict[str, str] = {}
    positional: List[str] = []
    for part in rest.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if sep:
            kwargs[key.strip()] = value.strip()
        else:
            positional.append(part)
    return kind.strip(), kwargs, positional


def _num(kwargs: Dict[str, str], key: str, default: float,
         spec: str) -> float:
    raw = kwargs.pop(key, None)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{spec!r}: {key} must be a number, got {raw!r}") \
            from None


def _reject_unknown(kwargs: Dict[str, str], spec: str) -> None:
    if kwargs:
        raise ValueError(f"{spec!r}: unknown keys {sorted(kwargs)}")


def parse_sizes(spec: str, default_workload: str = "websearch") -> SizeModel:
    """Build a size model from its spec string (see :class:`SourceConfig`)."""
    kind, kwargs, positional = _parse_spec(spec)
    if kind in WORKLOADS:  # bare workload name shorthand
        return workload_cdf(kind)
    if kind == "empirical":
        workload = positional[0] if positional \
            else kwargs.pop("workload", default_workload)
        _reject_unknown(kwargs, spec)
        return workload_cdf(workload)
    if kind == "lognormal":
        model = LognormalSizes(
            mean_bytes=_num(kwargs, "mean_kb", 60.0, spec) * 1_000,
            sigma=_num(kwargs, "sigma", 1.5, spec))
        _reject_unknown(kwargs, spec)
        return model
    if kind == "pareto":
        model = BoundedParetoSizes(
            min_bytes=_num(kwargs, "min_kb", 1.0, spec) * 1_000,
            alpha=_num(kwargs, "alpha", 1.3, spec),
            max_bytes=_num(kwargs, "max_mb", 100.0, spec) * 1_000_000)
        _reject_unknown(kwargs, spec)
        return model
    if kind == "bimodal":
        model = BimodalSizes(
            small_bytes=_num(kwargs, "small_kb", 2.0, spec) * 1_000,
            large_bytes=_num(kwargs, "large_mb", 1.0, spec) * 1_000_000,
            large_frac=_num(kwargs, "large_frac", 0.05, spec),
            sigma=_num(kwargs, "sigma", 0.5, spec))
        _reject_unknown(kwargs, spec)
        return model
    raise ValueError(
        f"unknown size model {spec!r}; choose empirical[:workload], "
        f"lognormal, pareto, bimodal, or a workload name "
        f"{sorted(WORKLOADS)}")


def parse_arrivals(spec: str, rate_per_ns: float) -> ArrivalProcess:
    """Build an arrival process at ``rate_per_ns`` from its spec string."""
    kind, kwargs, positional = _parse_spec(spec)
    if positional:
        raise ValueError(f"{spec!r}: arrival specs take key=value only")
    if kind == "poisson":
        _reject_unknown(kwargs, spec)
        return PoissonArrivals(rate_per_ns)
    if kind == "pareto":
        proc = ParetoArrivals(rate_per_ns,
                              alpha=_num(kwargs, "alpha", 1.5, spec))
        _reject_unknown(kwargs, spec)
        return proc
    if kind == "onoff":
        proc = OnOffArrivals(
            rate_per_ns,
            on_ns=_num(kwargs, "on_us", 100.0, spec) * 1_000,
            off_ns=_num(kwargs, "off_us", 900.0, spec) * 1_000)
        _reject_unknown(kwargs, spec)
        return proc
    raise ValueError(f"unknown arrival process {spec!r}; choose poisson, "
                     f"pareto, or onoff")


def parse_locality(spec: str, hosts: Sequence["Host"],
                   groups: Sequence[Sequence["Host"]]) -> PairPicker:
    """Build a pair picker from its spec string.

    ``groups`` is the fabric's partition (racks, or regions for
    declarative fabrics); ``uniform`` ignores it.
    """
    kind, kwargs, positional = _parse_spec(spec)
    if positional:
        raise ValueError(f"{spec!r}: locality specs take key=value only")
    if kind == "uniform":
        _reject_unknown(kwargs, spec)
        return UniformPairs(hosts)
    if kind == "grouped":
        picker = GroupedPairs(groups,
                              intra_fraction=_num(kwargs, "intra", 0.8,
                                                  spec))
        _reject_unknown(kwargs, spec)
        return picker
    if kind == "matrix":
        intra = _num(kwargs, "intra", 0.7, spec)
        _reject_unknown(kwargs, spec)
        live = [g for g in groups if g]
        return MatrixPairs(live, MatrixPairs.intra_matrix(len(live), intra))
    raise ValueError(f"unknown locality {spec!r}; choose uniform, grouped, "
                     f"or matrix")


def build_sources(traffic: TrafficConfig, hosts: Sequence["Host"],
                  groups: Sequence[Sequence["Host"]], *, load: float,
                  rate_bps: float, sim_time_ns: int, size_scale: float,
                  default_workload: str = "websearch"
                  ) -> List[TrafficSource]:
    """Instantiate a :class:`TrafficConfig` against a concrete host set.

    Each source's arrival rate is set so its *realized* offered bytes are
    ``load_share * load`` of aggregate access capacity — rates divide by
    the realized (truncated/clamped) mean, not the analytic one.
    """
    if not traffic.sources:
        raise ValueError("TrafficConfig needs at least one source")
    sources: List[TrafficSource] = []
    for i, sc in enumerate(traffic.sources):
        if sc.load_share <= 0.0:
            raise ValueError(
                f"source {sc.name!r}: load_share must be positive, got "
                f"{sc.load_share}")
        first_id = i * SOURCE_ID_STRIDE + 1
        offered_bytes_per_ns = (sc.load_share * load * len(hosts)
                                * rate_bps / 8.0 / 1e9)
        sizes = parse_sizes(sc.sizes, default_workload)
        if sc.kind == "open":
            lam = offered_bytes_per_ns / sizes.realized_mean_bytes(size_scale)
            sources.append(OpenLoopSource(
                sc.name, parse_locality(sc.locality, hosts, groups), sizes,
                parse_arrivals(sc.arrivals, lam), sim_time_ns,
                size_scale=size_scale, role=sc.role,
                first_flow_id=first_id))
        elif sc.kind == "incast":
            if len(hosts) < 2:
                raise ValueError(
                    f"source {sc.name!r}: incast needs at least 2 hosts, "
                    f"got {len(hosts)}")
            event_bytes = ((len(hosts) - 1) * sc.flows_per_sender
                           * sc.request_bytes)
            rate = offered_bytes_per_ns / event_bytes
            sources.append(IncastSource(
                sc.name, hosts, sc.request_bytes, sc.flows_per_sender,
                parse_arrivals(sc.arrivals, rate), sim_time_ns,
                role=sc.role or "fg", first_flow_id=first_id))
        elif sc.kind == "coflow":
            probe = CoflowSource(
                sc.name, hosts, sizes,
                PoissonArrivals(1.0),  # placeholder rate for volume probe
                sc.fanout, sc.request_bytes, sim_time_ns,
                size_scale=size_scale, think_ns=sc.think_ns,
                first_flow_id=first_id)
            rate = offered_bytes_per_ns / probe.bytes_per_job()
            probe.arrivals = parse_arrivals(sc.arrivals, rate)
            sources.append(probe)
        else:
            raise ValueError(
                f"source {sc.name!r}: unknown kind {sc.kind!r}; choose "
                f"open, incast, or coflow")
    return sources
