"""Scheduled-event objects shared by both engine backends.

:class:`EventHandle` is the cancellable calendar entry returned by
``Simulator.at``/``after``; :class:`RepeatingEvent` is the periodic wrapper
behind ``Simulator.every``. Both are engine-agnostic: they only touch the
simulator through its public scheduling surface plus the ``_note_cancel``
bookkeeping hook every backend implements.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple,
                 sim) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once,
        including after the event has already fired (a no-op then)."""
        if self.cancelled or self.fn is None:
            # Already cancelled, or already fired (the dispatcher clears
            # ``fn`` before invoking it) — nothing left to do.
            return
        self.cancelled = True
        # Drop references so cancelled timers don't pin packet objects alive
        # until the calendar entry is popped.
        self.fn = None
        self.args = ()
        self._sim._note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class RepeatingEvent:
    """A periodic callback rescheduled by the engine after every firing.

    Created via :meth:`Simulator.every`. The first tick fires one period
    after creation and ticks continue every ``period`` nanoseconds until
    :meth:`cancel` is called or the (inclusive) ``until`` horizon passes.
    Between firings exactly one calendar entry exists, so a cancelled
    repeater leaves at most one lazily-discarded calendar entry behind.
    """

    __slots__ = ("_sim", "period", "until", "_fn", "_handle", "cancelled")

    def __init__(self, sim, period: int,
                 fn: Callable[[], Any], until: Optional[int]) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self.until = until
        self._fn = fn
        self._handle: Optional[EventHandle] = None
        self.cancelled = False
        self._schedule()

    def _schedule(self) -> None:
        t = self._sim.now + self.period
        if self.until is not None and t > self.until:
            return
        self._handle = self._sim.at(t, self._fire)

    def _fire(self) -> None:
        self._handle = None
        self._fn()
        # The callback may have cancelled us; only then skip rescheduling.
        if not self.cancelled:
            self._schedule()

    def cancel(self) -> None:
        """Stop ticking. Safe to call more than once, including from
        inside the callback itself."""
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
