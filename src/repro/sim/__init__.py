"""Discrete-event simulation kernel.

The kernel is deliberately tiny: an integer-nanosecond clock, an event
calendar with cancellable handles (:mod:`repro.sim.engine` — a calendar-queue
default plus a retained heap oracle), unit helpers for time and rate
arithmetic (:mod:`repro.sim.units`), and named deterministic random streams
(:mod:`repro.sim.rng`).
"""

from repro.sim.engine import (
    CalendarSimulator,
    EventHandle,
    HeapSimulator,
    Simulator,
    engine_backend,
    make_simulator,
)
from repro.sim.rng import RngRegistry
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    MBPS,
    MICROS,
    MILLIS,
    SECONDS,
    bits_to_bytes,
    bytes_to_bits,
    rate_to_bytes_per_ns,
    tx_time_ns,
)

__all__ = [
    "CalendarSimulator",
    "EventHandle",
    "HeapSimulator",
    "Simulator",
    "engine_backend",
    "make_simulator",
    "RngRegistry",
    "GBPS",
    "MBPS",
    "KB",
    "MB",
    "MICROS",
    "MILLIS",
    "SECONDS",
    "bits_to_bytes",
    "bytes_to_bits",
    "rate_to_bytes_per_ns",
    "tx_time_ns",
]
