"""Hierarchical timer wheel: O(1) arm/cancel for coarse, cancel-heavy timers.

Credit-based transports churn two very different timer populations through
the event engine:

* **dense short-period timers** — one credit/grant emission per MTU per flow
  (~8.4 µs at 40 Gbps). These are never cancelled in steady state; they are
  handled by the per-host :class:`repro.transports.credit_plane.CreditPlane`
  (handle-free ``post`` + generation guards), not by this wheel.
* **coarse watchdog timers** — RTO-class retransmission timers (4 ms floor),
  Homa's regrant/announce retries, credit-request timeouts. These are armed
  and *cancelled constantly* (every ACK re-arms the retransmission timer)
  but almost never fire. Routing them through ``Simulator.after`` costs an
  :class:`~repro.sim.events.EventHandle` allocation plus a calendar entry
  per arm, and the lazily-cancelled entries pressure the engine's
  compaction machinery.

The wheel absorbs the second population. Arming appends a
:class:`WheelTimer` to a bucket list (O(1)); cancelling flips a flag (O(1),
no engine traffic at all). The engine only hears about the wheel through
**one meta-event per non-empty wheel tick** (``post_at`` at the tick
boundary): when the meta-event fires it walks the due bucket, discards
cancelled timers, re-files far-future survivors into a finer level
(the hierarchical cascade), and ``post_at``-schedules genuinely due timers
at their *exact* deadlines — wheel granularity never rounds a firing time.

Digest equivalence (DESIGN.md §6i). Replacing ``after``-based timers with
wheel timers removes engine entries that, in the legacy plane, consumed
sequence numbers at arm time. Removing (or adding, for meta-events)
sequence allocations never reorders the *remaining* events — relative
``(time, seq)`` order is preserved whenever the relative order of
scheduling calls is preserved — and a timer that never fires inside the
horizon is otherwise invisible. The one residual caveat: a wheel timer
that *does* fire gets its engine sequence number at the tick meta-event
instead of at arm time, so a firing that ties another event at the exact
same nanosecond may dispatch in a different relative order than the legacy
plane. RTO-class timers fire at estimator-derived instants where such ties
do not arise in practice, and the audit matrix (2 ms horizon, 4 ms
timer floors) is tie-free by construction.

``REPRO_CREDIT_PLANE`` selects the plane (``wheel`` is the default;
``legacy`` keeps every timer on ``Simulator.after`` as the equivalence
oracle); :func:`credit_plane_backend` is the one resolver, mirroring
:func:`repro.sim.engine.engine_backend`.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

#: plane name -> description (the ``REPRO_CREDIT_PLANE`` vocabulary)
CREDIT_PLANES: Tuple[str, ...] = ("wheel", "legacy")


def credit_plane_backend(backend: Optional[str] = None) -> str:
    """Resolve the credit-plane backend name: the explicit argument, else
    the ``REPRO_CREDIT_PLANE`` environment variable, else ``"wheel"``."""
    name = backend or os.environ.get("REPRO_CREDIT_PLANE") or "wheel"
    if name not in CREDIT_PLANES:
        raise ValueError(
            f"unknown credit plane {name!r}; choose from "
            f"{sorted(CREDIT_PLANES)}")
    return name


def wheel_enabled(backend: Optional[str] = None) -> bool:
    """True when the timer-wheel credit plane is selected."""
    return credit_plane_backend(backend) == "wheel"


class WheelTimer:
    """One pending wheel timer. Cancel is a flag flip — no engine traffic."""

    __slots__ = ("deadline", "fn", "args", "cancelled")

    def __init__(self, deadline: int, fn: Callable[..., Any], args: tuple) -> None:
        self.deadline = deadline
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing. Safe to call repeatedly and after
        the timer has fired (a no-op then)."""
        if self.cancelled or self.fn is None:
            return
        self.cancelled = True
        # Drop references so a cancelled timer doesn't pin its callback's
        # packets/flows alive until the bucket drains.
        self.fn = None
        self.args = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<WheelTimer deadline={self.deadline} {state}>"


class TimerWheel:
    """Hierarchical timer wheel slotted onto the event engine.

    Level ``L`` buckets deadlines by ``deadline >> (tick_bits + L*level_bits)``
    — level 0 ticks are ``2**tick_bits`` ns wide, each higher level is
    ``2**level_bits`` times coarser. A timer is filed at the coarsest level
    whose tick still *precedes* its deadline seen from now, so one cascade
    step per level refines it until level 0 fires it exactly. Buckets are
    plain dict-of-list (sparse: an idle wheel stores nothing and schedules
    nothing), and the engine carries exactly one ``post_at`` meta-event per
    non-empty tick, guarded by a time stamp so superseded meta-events fire
    as cheap no-ops (the engine's handle-free idiom).
    """

    #: level-0 tick width exponent: 2**16 ns = ~65.5 µs. Coarse enough that
    #: a 4 ms RTO sits ~61 ticks out (no meta-event churn), fine enough
    #: that a level-0 bucket holds only timers due within one tick.
    TICK_BITS = 16

    #: each level is 2**6 = 64x coarser; 3 levels span ~4.2 ms / ~268 ms /
    #: ~17 s per tick — RTO backoff up to the 1 s max lands in level 2.
    LEVEL_BITS = 6
    LEVELS = 3

    def __init__(self, sim, tick_bits: Optional[int] = None,
                 level_bits: Optional[int] = None,
                 levels: Optional[int] = None) -> None:
        self.sim = sim
        self._tick_bits = self.TICK_BITS if tick_bits is None else tick_bits
        self._level_bits = self.LEVEL_BITS if level_bits is None else level_bits
        self._levels = self.LEVELS if levels is None else levels
        if self._tick_bits < 0 or self._level_bits < 1 or self._levels < 1:
            raise ValueError("tick_bits >= 0, level_bits >= 1, levels >= 1")
        #: per-level shift: deadline >> shift = bucket id at that level
        self._shifts = [self._tick_bits + lvl * self._level_bits
                        for lvl in range(self._levels)]
        #: per-level bucket id -> timers (sparse)
        self._buckets: List[Dict[int, List[WheelTimer]]] = [
            {} for _ in range(self._levels)
        ]
        #: earliest meta-event currently scheduled (None = wheel idle)
        self._meta_at: Optional[int] = None
        self.armed_total = 0
        self.fired_total = 0
        self.cancelled_total = 0
        self.cascades = 0

    # ------------------------------------------------------------ registry

    @classmethod
    def for_sim(cls, sim) -> "TimerWheel":
        """The simulator's shared wheel (created on first use)."""
        wheel = getattr(sim, "_timer_wheel", None)
        if wheel is None:
            wheel = cls(sim)
            sim._timer_wheel = wheel
        return wheel

    # ----------------------------------------------------------------- API

    def arm(self, delay: int, fn: Callable[..., Any], *args: Any) -> WheelTimer:
        """Schedule ``fn(*args)`` after ``delay`` ns; returns the timer."""
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        now = self.sim._now
        deadline = now + delay
        timer = WheelTimer(deadline, fn, args)
        self.armed_total += 1
        self._file(timer, now)
        return timer

    def pending(self) -> int:
        """Live (non-cancelled) timers still filed in the wheel."""
        return sum(
            sum(1 for t in lst if not t.cancelled)
            for level in self._buckets for lst in level.values()
        )

    # ------------------------------------------------------------ internal

    def _file(self, timer: WheelTimer, now: int) -> None:
        """File at the coarsest level whose current tick is still *before*
        the timer's tick — guaranteeing the bucket's meta-event precedes the
        deadline — falling back to the engine for same-tick deadlines."""
        deadline = timer.deadline
        for lvl in range(self._levels - 1, -1, -1):
            shift = self._shifts[lvl]
            if (deadline >> shift) > (now >> shift):
                break
        else:
            lvl = -1
        if lvl < 0:
            # Deadline inside the current level-0 tick: the wheel cannot
            # examine it in time, so hand it straight to the engine (its
            # exact-deadline firing path, skipping the bucket stage).
            self.sim.post_at(deadline, self._fire_one, timer)
            return
        shift = self._shifts[lvl]
        b = deadline >> shift
        buckets = self._buckets[lvl]
        lst = buckets.get(b)
        if lst is None:
            buckets[b] = [timer]
            # The bucket's examination instant: its first covered nanosecond
            # (for level 0 every deadline in the bucket is >= it; for higher
            # levels it is the cascade point).
            self._ensure_meta(b << shift)
        else:
            lst.append(timer)

    def _ensure_meta(self, due: int) -> None:
        """Guarantee a meta-event at ``due`` (keeping only the earliest)."""
        meta = self._meta_at
        if meta is not None and meta <= due:
            return
        self._meta_at = due
        self.sim.post_at(due, self._on_meta, due)

    def _on_meta(self, stamp: int) -> None:
        if stamp != self._meta_at:
            return  # superseded by an earlier meta-event; cheap no-op
        self._meta_at = None
        now = self.sim._now
        sim_post_at = self.sim.post_at
        # Drain every bucket whose examination instant has been reached,
        # finest level first so cascaded timers can still make this tick.
        for lvl in range(self._levels):
            shift = self._shifts[lvl]
            buckets = self._buckets[lvl]
            if not buckets:
                continue
            cur = now >> shift
            due_ids = [b for b in buckets if b <= cur]
            for b in due_ids:
                for timer in buckets.pop(b):
                    if timer.cancelled:
                        self.cancelled_total += 1
                        continue
                    if lvl and (timer.deadline >> self._tick_bits) > (
                            now >> self._tick_bits):
                        # Far survivor: cascade one level down (refile picks
                        # the right level; never this bucket again since its
                        # tick id at this level is no longer ahead of now).
                        self.cascades += 1
                        self._file(timer, now)
                    else:
                        # Due this tick: fire at the exact deadline.
                        sim_post_at(timer.deadline, self._fire_one, timer)
        # Re-arm for the earliest remaining bucket across all levels.
        nxt: Optional[int] = None
        for lvl in range(self._levels):
            buckets = self._buckets[lvl]
            if buckets:
                shift = self._shifts[lvl]
                first = min(buckets) << shift
                if nxt is None or first < nxt:
                    nxt = first
        if nxt is not None:
            self._ensure_meta(max(nxt, now))

    def _fire_one(self, timer: WheelTimer) -> None:
        fn = timer.fn
        if fn is None:  # cancelled between filing and firing
            self.cancelled_total += 1
            return
        args = timer.args
        timer.fn = None
        timer.args = ()
        self.fired_total += 1
        fn(*args)


class CoarseTimer:
    """A single re-armable one-shot timer, plane-selected at construction.

    The drop-in pattern shared by credit-request, announce and regrant
    timers: ``arm(delay)`` (re)starts, ``cancel()`` stops, ``armed`` tells.
    On the wheel plane arm/cancel never touch the engine; on the legacy
    plane it is exactly the historical ``after`` + ``EventHandle.cancel``
    sequence, preserved as the digest-equivalence oracle.
    """

    __slots__ = ("_sim", "_fn", "_wheel", "_timer", "_handle")

    def __init__(self, sim, fn: Callable[[], Any],
                 plane: Optional[str] = None) -> None:
        self._sim = sim
        self._fn = fn
        self._wheel = TimerWheel.for_sim(sim) if wheel_enabled(plane) else None
        self._timer: Optional[WheelTimer] = None
        self._handle = None

    @property
    def armed(self) -> bool:
        if self._wheel is not None:
            return self._timer is not None
        return self._handle is not None

    def arm(self, delay: int) -> None:
        """(Re)start the timer ``delay`` ns from now."""
        self.cancel()
        if self._wheel is not None:
            self._timer = self._wheel.arm(delay, self._fire_wheel)
        else:
            self._handle = self._sim.after(delay, self._fire_legacy)

    def cancel(self) -> None:
        if self._wheel is not None:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
        elif self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire_wheel(self) -> None:
        self._timer = None
        self._fn()

    def _fire_legacy(self) -> None:
        self._handle = None
        self._fn()
