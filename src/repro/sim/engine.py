"""Event loop for the packet-level simulator.

The engine is a classic calendar built on :mod:`heapq`. Events are plain
callbacks; cancellation is lazy (a cancelled handle stays in the heap and is
skipped when popped), which is far cheaper than heap surgery for the
cancel-heavy workloads that transport retransmission timers produce.

Two ordering guarantees matter for correctness elsewhere in the stack:

* events fire in nondecreasing time order;
* events scheduled for the same instant fire in FIFO scheduling order
  (a monotonically increasing sequence number breaks ties).
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, List, Optional


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self.cancelled = True
        # Drop references so cancelled timers don't pin packet objects alive
        # until the heap entry is popped.
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


class Simulator:
    """A discrete-event simulator with an integer-nanosecond clock."""

    #: between wall-clock checks, this many events run uninstrumented
    WALL_CHECK_INTERVAL = 4096

    def __init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_run: int = 0
        self._running = False
        self.aborted = False
        self.abort_reason = ""

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_run

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Scheduling in the past is a logic error and raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} ns; clock is already at {self._now} ns"
            )
        handle = EventHandle(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        return self.at(self._now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant (after current event)."""
        return self.at(self._now, fn, *args)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None,
            wall_clock_s: Optional[float] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or a
        watchdog budget (``max_events`` executed, ``wall_clock_s`` seconds
        of real time) is exhausted.

        Returns the number of events executed by this call. When ``until`` is
        given, the clock is advanced to ``until`` even if the heap drained
        earlier, so back-to-back ``run`` calls see a monotonic clock.

        Hitting a watchdog budget while live events remain sets ``aborted``
        and ``abort_reason`` — the hook runaway simulations are detected
        with (a finished run, even one cut at ``until``, is not an abort).
        Each call resets the flags.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        self.aborted = False
        self.abort_reason = ""
        executed = 0
        deadline = (time.monotonic() + wall_clock_s
                    if wall_clock_s is not None else None)
        next_wall_check = executed + self.WALL_CHECK_INTERVAL
        try:
            heap = self._heap
            while heap:
                handle = heap[0]
                if handle.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and handle.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    self.aborted = True
                    self.abort_reason = (
                        f"watchdog: {executed} events executed "
                        f"(max_events={max_events})"
                    )
                    break
                if deadline is not None and executed >= next_wall_check:
                    next_wall_check = executed + self.WALL_CHECK_INTERVAL
                    if time.monotonic() >= deadline:
                        self.aborted = True
                        self.abort_reason = (
                            f"watchdog: wall-clock budget {wall_clock_s:.3g}s "
                            f"exhausted after {executed} events"
                        )
                        break
                heapq.heappop(heap)
                self._now = handle.time
                fn, args = handle.fn, handle.args
                handle.fn = None
                handle.args = ()
                assert fn is not None
                fn(*args)
                executed += 1
                self._events_run += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self.aborted:
            self._now = until
        return executed

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for h in self._heap if not h.cancelled)
