"""Event engines for the packet-level simulator.

Two interchangeable backends implement the same scheduling surface
(``at``/``after``/``call_soon``/``post``/``post_at``/``every``/``run``/
``peek_time``/``pending``/``iter_pending``):

* :class:`CalendarSimulator` (the default, exported as :data:`Simulator`) —
  a calendar queue: a next-event slot, fixed-width bucket batches drained
  with one sort per bucket, and a heap of bucket ids for far-future timers.
  See :mod:`repro.sim.calendar` for the design.
* :class:`HeapSimulator` — the classic ``heapq`` tuple-heap calendar,
  retained as the differential-testing oracle and as a fallback backend
  (``REPRO_SIM_ENGINE=heap``) while the calendar engine bakes. The audit
  subsystem's replay-digest matrix must be digest-identical across the two.

Both backends hold ``(time, seq, payload)`` entries where the payload is an
:class:`EventHandle` for cancellable events (``at``/``after``) or a bare
``(fn, args)`` tuple for fire-and-forget ones (``post``/``post_at``), which
skips one object allocation per event on the packet hot path. Cancellation
is lazy (a cancelled handle stays stored and is skipped when popped), which
is far cheaper than calendar surgery for the cancel-heavy workloads that
transport retransmission timers produce. Two counters keep the laziness
honest:

* ``pending()`` never scans dispatch order: live events = stored entries
  minus a running count of cancelled-but-not-yet-popped entries;
* when cancelled entries dominate the calendar (``COMPACT_MIN_CANCELLED`` of
  them and at least half of it), the store is compacted in place, so a
  long run with cancel-heavy timers cannot grow the calendar unboundedly.

Two ordering guarantees matter for correctness elsewhere in the stack:

* events fire in nondecreasing time order;
* events scheduled for the same instant fire in FIFO scheduling order
  (a monotonically increasing sequence number breaks ties).
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Type

from repro.sim.calendar import CalendarSimulator
from repro.sim.events import EventHandle, RepeatingEvent

__all__ = [
    "CalendarSimulator",
    "EventHandle",
    "HeapSimulator",
    "RepeatingEvent",
    "Simulator",
    "ENGINE_BACKENDS",
    "engine_backend",
    "make_simulator",
]


class HeapSimulator:
    """A discrete-event simulator with an integer-nanosecond clock, backed
    by a ``heapq`` tuple heap (the pre-calendar engine, kept as oracle)."""

    #: between wall-clock checks, this many loop iterations run
    #: uninstrumented (iterations, not executed events: a purge of lazily
    #: cancelled entries must also keep feeding the watchdog)
    WALL_CHECK_INTERVAL = 4096

    #: compaction fires only once this many cancelled entries are buried in
    #: the heap *and* they make up at least half of it
    COMPACT_MIN_CANCELLED = 256

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, EventHandle]] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_run: int = 0
        self._cancelled: int = 0  # cancelled entries still buried in the heap
        self._running = False
        self.aborted = False
        self.abort_reason = ""

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_run

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Scheduling in the past is a logic error and raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} ns; clock is already at {self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, self)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        # Inlined ``at`` body: this is the hottest scheduling entry point and
        # an extra Python frame per packet/timer is measurable.
        t = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(t, seq, fn, args, self)
        heapq.heappush(self._heap, (t, seq, handle))
        return handle

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant (after current event)."""
        return self.at(self._now, fn, *args)

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule a *fire-and-forget* event after ``delay`` nanoseconds.

        Like :meth:`after` but returns no handle and cannot be cancelled:
        the heap entry is a plain ``(fn, args)`` tuple instead of an
        :class:`EventHandle`, which skips one object allocation per event.
        Packet deliveries and port serve events — the bulk of all events in
        a packet-forwarding run — are never cancelled, so they take this
        path. Use :meth:`after` for anything a timer might cancel.
        """
        t = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (t, seq, (fn, args)))

    def post_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`post` (see :meth:`at`)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} ns; clock is already at {self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, (fn, args)))

    def every(self, period: int, fn: Callable[[], Any],
              until: Optional[int] = None) -> RepeatingEvent:
        """Schedule ``fn()`` every ``period`` nanoseconds, starting one
        period from now. With ``until``, the last tick is the largest
        multiple of ``period`` from now that is ≤ ``until`` (inclusive).
        Returns a :class:`RepeatingEvent` whose ``cancel()`` stops the
        cycle. Used by periodic samplers and housekeeping loops; per-packet
        work should keep using :meth:`post`.
        """
        return RepeatingEvent(self, period, fn, until)

    def _note_cancel(self) -> None:
        """Bookkeeping for a live heap entry turning cancelled."""
        self._cancelled += 1
        heap = self._heap
        if (self._cancelled >= self.COMPACT_MIN_CANCELLED
                and self._cancelled * 2 >= len(heap)):
            # In-place compaction (slice assignment) so a ``run`` loop holding
            # a local alias of the heap keeps seeing the same list object.
            heap[:] = [entry for entry in heap
                       if type(entry[2]) is tuple or not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None,
            wall_clock_s: Optional[float] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or a
        watchdog budget (``max_events`` executed, ``wall_clock_s`` seconds
        of real time) is exhausted.

        Returns the number of events executed by this call. When ``until`` is
        given, the clock is advanced to ``until`` even if the heap drained
        earlier, so back-to-back ``run`` calls see a monotonic clock.

        Hitting a watchdog budget while live events remain sets ``aborted``
        and ``abort_reason`` — the hook runaway simulations are detected
        with (a finished run, even one cut at ``until``, is not an abort).
        Each call resets the flags.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        self.aborted = False
        self.abort_reason = ""
        if until is None and max_events is None and wall_clock_s is None:
            return self._run_fast()
        if max_events is None and wall_clock_s is None:
            return self._run_until(until)
        return self._run_guarded(until, max_events, wall_clock_s)

    def _run_fast(self) -> int:
        """Drain the heap with no horizon and no watchdog — the hot path."""
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        try:
            while heap:
                t, _, ev = heappop(heap)
                if type(ev) is tuple:  # handle-free event (``post``)
                    self._now = t
                    fn, args = ev
                    fn(*args)
                    executed += 1
                    continue
                fn = ev.fn
                if fn is None:  # lazily-cancelled entry
                    self._cancelled -= 1
                    continue
                self._now = t
                args = ev.args
                ev.fn = None
                ev.args = ()
                fn(*args)
                executed += 1
        finally:
            self._events_run += executed
            self._running = False
        return executed

    def _run_until(self, until: int) -> int:
        """Horizon-only run: like :meth:`_run_fast` plus a single time check
        per event, with none of the watchdog bookkeeping."""
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        try:
            while heap:
                t, _, ev = heap[0]
                if t > until:
                    break
                if type(ev) is tuple:  # handle-free event (``post``)
                    heappop(heap)
                    self._now = t
                    fn, args = ev
                    fn(*args)
                    executed += 1
                    continue
                fn = ev.fn
                if fn is None:  # lazily-cancelled entry
                    heappop(heap)
                    self._cancelled -= 1
                    continue
                heappop(heap)
                self._now = t
                args = ev.args
                ev.fn = None
                ev.args = ()
                fn(*args)
                executed += 1
        finally:
            self._events_run += executed
            self._running = False
        if self._now < until:
            self._now = until
        return executed

    def _run_guarded(self, until: Optional[int], max_events: Optional[int],
                     wall_clock_s: Optional[float]) -> int:
        executed = 0
        iters = 0
        deadline = (time.monotonic() + wall_clock_s
                    if wall_clock_s is not None else None)
        # Keyed on loop iterations, not executed events: a cancel-dominated
        # heap spends its time in the purge branch, which executes nothing —
        # an executed-keyed check would never fire and the run could stall
        # past its wall budget unnoticed.
        next_wall_check = self.WALL_CHECK_INTERVAL
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                t, _, ev = heap[0]
                plain = type(ev) is tuple
                purge = not plain and ev.fn is None
                if not purge:
                    if until is not None and t > until:
                        break
                    if max_events is not None and executed >= max_events:
                        self.aborted = True
                        self.abort_reason = (
                            f"watchdog: {executed} events executed "
                            f"(max_events={max_events})"
                        )
                        break
                iters += 1
                if deadline is not None and iters >= next_wall_check:
                    next_wall_check = iters + self.WALL_CHECK_INTERVAL
                    if time.monotonic() >= deadline:
                        self.aborted = True
                        self.abort_reason = (
                            f"watchdog: wall-clock budget {wall_clock_s:.3g}s "
                            f"exhausted after {executed} events"
                        )
                        break
                if purge:
                    heappop(heap)
                    self._cancelled -= 1
                    continue
                heappop(heap)
                self._now = t
                if plain:
                    fn, args = ev
                else:
                    fn, args = ev.fn, ev.args
                    ev.fn = None
                    ev.args = ()
                fn(*args)
                executed += 1
        finally:
            self._events_run += executed
            self._running = False
        if until is not None and self._now < until and not self.aborted:
            self._now = until
        return executed

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap:
            ev = heap[0][2]
            if type(ev) is tuple or not ev.cancelled:
                break
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1)."""
        return len(self._heap) - self._cancelled

    def iter_pending(self) -> Iterator[Tuple[int, int, Any]]:
        """Iterate stored ``(time, seq, event)`` entries, lazily-cancelled
        ones included. Dispatch order is NOT implied (heap order)."""
        return iter(self._heap)


#: the default engine: the calendar queue
Simulator = CalendarSimulator

#: backend name -> engine class (the ``REPRO_SIM_ENGINE`` vocabulary)
ENGINE_BACKENDS: Dict[str, Type] = {
    "calendar": CalendarSimulator,
    "heap": HeapSimulator,
}


def engine_backend(backend: Optional[str] = None) -> str:
    """Resolve the engine backend name: the explicit argument, else the
    ``REPRO_SIM_ENGINE`` environment variable, else ``"calendar"``."""
    name = backend or os.environ.get("REPRO_SIM_ENGINE") or "calendar"
    if name not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown engine backend {name!r}; choose from "
            f"{sorted(ENGINE_BACKENDS)}")
    return name


def make_simulator(backend: Optional[str] = None):
    """Build a simulator for ``backend`` (see :func:`engine_backend`).

    The environment-variable override exists so whole execution trees —
    including ``run_many`` worker subprocesses, which inherit the parent's
    environment — can be flipped onto one backend, letting the audit CI run
    its replay-digest matrix once per engine during the transition.
    """
    return ENGINE_BACKENDS[engine_backend(backend)]()
