"""Time and rate units.

Simulation time is an ``int`` number of nanoseconds; link rates are bits per
second. Keeping both integral makes event ordering exact and reproducible.
Serialization delays round up to the next nanosecond so a packet never
finishes transmitting "early".
"""

from __future__ import annotations

#: One microsecond / millisecond / second, in nanoseconds.
MICROS = 1_000
MILLIS = 1_000_000
SECONDS = 1_000_000_000

#: Rate units, in bits per second.
MBPS = 1_000_000
GBPS = 1_000_000_000

#: Size units, in bytes.
KB = 1_000
MB = 1_000_000


def bytes_to_bits(nbytes: int) -> int:
    """Convert a byte count to bits."""
    return nbytes * 8


def bits_to_bytes(nbits: int) -> int:
    """Convert bits to bytes, rounding up to whole bytes."""
    return (nbits + 7) // 8


def tx_time_ns(nbytes: int, rate_bps: int) -> int:
    """Serialization delay of ``nbytes`` on a ``rate_bps`` link, in ns.

    Rounds up so the transmitter never releases the wire early. A zero or
    negative rate is a configuration error.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    bits = nbytes * 8
    return (bits * SECONDS + rate_bps - 1) // rate_bps


def rate_to_bytes_per_ns(rate_bps: int) -> float:
    """Convert a bits-per-second rate to bytes per nanosecond."""
    return rate_bps / 8.0 / SECONDS


def ns_to_ms(t_ns: int) -> float:
    """Convert nanoseconds to (float) milliseconds, for reporting."""
    return t_ns / MILLIS


def ns_to_us(t_ns: int) -> float:
    """Convert nanoseconds to (float) microseconds, for reporting."""
    return t_ns / MICROS
