"""Calendar-queue event engine: the default discrete-event scheduler.

The heap engine (:class:`repro.sim.engine.HeapSimulator`) pays a sift of the
whole calendar on every push and pop. Credit-based transports are uniquely
timer-heavy — ExpressPass-style pacing schedules one credit event per MTU per
flow — so that per-event ``heapq`` cost dominates the hot loop. This engine
replaces it with a three-tier calendar, cheapest structure first:

* **next-event slot** — the single soonest pending event lives in three
  scalar fields. Scheduling compares against the slot once; dispatch reads
  it without touching any container. Chained workloads (each event schedules
  its successor) never leave this tier, and never pay a heap sift.
* **active batch** — the bucket currently being drained, sorted once per
  drain into a plain list popped from the end (entries are stored key-negated
  so ascending C-tuple order puts the soonest event last). One ``list.sort``
  amortizes the ordering cost over the whole bucket instead of one sift per
  event. Events scheduled into the region still being drained are placed by
  ``bisect.insort`` — C code, and an append when they land at the batch tail.
* **future buckets** — fixed-width buckets (``2**bucket_bits`` ns) held in a
  dict keyed by bucket id, with a small overflow heap of *bucket ids* (not
  events) deciding which bucket drains next. Scheduling into the future is an
  O(1) list append; a far-future timer costs one heap push of an int only
  when it opens a new bucket.

Ordering guarantees are identical to the heap engine, and are enforced by a
differential property test against it (``tests/test_sim_engine_calendar.py``)
plus the audit subsystem's replay-digest matrix:

* events fire in nondecreasing time order;
* events scheduled for the same instant fire in FIFO scheduling order
  (a monotonically increasing sequence number breaks ties).

Cancellation stays lazy (a cancelled handle is skipped at dispatch), with the
same compaction rule as the heap engine: when cancelled entries reach
``COMPACT_MIN_CANCELLED`` and at least half of everything stored, every tier
is filtered in place so cancel-heavy timer workloads cannot grow the calendar
unboundedly.
"""

from __future__ import annotations

import time
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.events import EventHandle, RepeatingEvent

#: allocate EventHandle without the ``__init__`` frame — the handle fields
#: are stored inline at the (hot) scheduling sites instead.
_new_handle = EventHandle.__new__


class CalendarSimulator:
    """A discrete-event simulator with an integer-nanosecond clock, backed
    by a calendar queue (next-event slot + bucketed batches + id heap)."""

    #: between wall-clock checks, this many loop iterations run
    #: uninstrumented (iterations, not executed events: a purge of lazily
    #: cancelled entries must also keep feeding the watchdog)
    WALL_CHECK_INTERVAL = 4096

    #: compaction fires only once this many cancelled entries are buried in
    #: the calendar *and* they make up at least half of it
    COMPACT_MIN_CANCELLED = 256

    #: default bucket width exponent: 2**14 ns = ~16.4 us per bucket.
    #: Swept empirically (DESIGN.md §6h): narrower buckets pay one
    #: sort+advance per handful of events; wider ones buy nothing until
    #: the per-bucket sort grows noticeable around 2**18.
    BUCKET_BITS = 14

    def __init__(self, bucket_bits: Optional[int] = None) -> None:
        if bucket_bits is None:
            bucket_bits = self.BUCKET_BITS
        if bucket_bits < 0:
            raise ValueError(f"bucket_bits must be >= 0, got {bucket_bits}")
        self._bits = bucket_bits
        self._now: int = 0
        self._seq: int = 0
        self._events_run: int = 0
        self._cancelled: int = 0  # cancelled entries still stored
        self._running = False
        self.aborted = False
        self.abort_reason = ""
        # --- tier 1: the next-event slot (global minimum when non-empty)
        self._slot_t: Optional[int] = None
        self._slot_seq: int = 0
        self._slot_ev: Any = None
        # --- tier 2: the active batch, key-negated ascending (soonest last)
        self._active: List[Tuple[int, int, Any]] = []
        # --- tier 3: future buckets + the id heap deciding drain order
        self._buckets: Dict[int, List[Tuple[int, int, Any]]] = {}
        self._bucket_ids: List[int] = []
        #: entries with bucket id <= _cur_b belong to the active batch
        self._cur_b: int = -1

    # --------------------------------------------------------- properties

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_run

    # --------------------------------------------------------- scheduling

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Scheduling in the past is a logic error and raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} ns; clock is already at "
                f"{self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = seq
        handle.fn = fn
        handle.args = args
        handle.cancelled = False
        handle._sim = self
        st = self._slot_t
        if st is None:
            self._slot_t = time
            self._slot_seq = seq
            self._slot_ev = handle
        elif time < st:
            self._store(st, self._slot_seq, self._slot_ev)
            self._slot_t = time
            self._slot_seq = seq
            self._slot_ev = handle
        else:
            self._store(time, seq, handle)
        return handle

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        # Fully inlined: this is the hottest cancellable entry point and an
        # extra Python frame per timer is measurable.
        t = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = _new_handle(EventHandle)
        handle.time = t
        handle.seq = seq
        handle.fn = fn
        handle.args = args
        handle.cancelled = False
        handle._sim = self
        st = self._slot_t
        if st is None:
            self._slot_t = t
            self._slot_seq = seq
            self._slot_ev = handle
            return handle
        if t < st:
            self._store(st, self._slot_seq, self._slot_ev)
            self._slot_t = t
            self._slot_seq = seq
            self._slot_ev = handle
            return handle
        b = t >> self._bits
        if b <= self._cur_b:
            insort(self._active, (-t, -seq, handle))
            return handle
        lst = self._buckets.get(b)
        if lst is None:
            self._buckets[b] = [(-t, -seq, handle)]
            heappush(self._bucket_ids, b)
        else:
            lst.append((-t, -seq, handle))
        return handle

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant (after current event)."""
        return self.at(self._now, fn, *args)

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule a *fire-and-forget* event after ``delay`` nanoseconds.

        Like :meth:`after` but returns no handle and cannot be cancelled:
        the calendar entry is a plain ``(fn, args)`` tuple instead of an
        :class:`EventHandle`, which skips one object allocation per event.
        Packet deliveries and port serve events — the bulk of all events in
        a packet-forwarding run — are never cancelled, so they take this
        path. Use :meth:`after` for anything a timer might cancel.
        """
        t = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        st = self._slot_t
        if st is None:
            self._slot_t = t
            self._slot_seq = seq
            self._slot_ev = (fn, args)
            return
        if t < st:
            self._store(st, self._slot_seq, self._slot_ev)
            self._slot_t = t
            self._slot_seq = seq
            self._slot_ev = (fn, args)
            return
        b = t >> self._bits
        if b <= self._cur_b:
            insort(self._active, (-t, -seq, (fn, args)))
            return
        lst = self._buckets.get(b)
        if lst is None:
            self._buckets[b] = [(-t, -seq, (fn, args))]
            heappush(self._bucket_ids, b)
        else:
            lst.append((-t, -seq, (fn, args)))

    def post_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`post` (see :meth:`at`)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} ns; clock is already at "
                f"{self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        st = self._slot_t
        if st is None:
            self._slot_t = time
            self._slot_seq = seq
            self._slot_ev = (fn, args)
        elif time < st:
            self._store(st, self._slot_seq, self._slot_ev)
            self._slot_t = time
            self._slot_seq = seq
            self._slot_ev = (fn, args)
        else:
            self._store(time, seq, (fn, args))

    def every(self, period: int, fn: Callable[[], Any],
              until: Optional[int] = None) -> RepeatingEvent:
        """Schedule ``fn()`` every ``period`` nanoseconds, starting one
        period from now. With ``until``, the last tick is the largest
        multiple of ``period`` from now that is ≤ ``until`` (inclusive).
        Returns a :class:`RepeatingEvent` whose ``cancel()`` stops the
        cycle. Used by periodic samplers and housekeeping loops; per-packet
        work should keep using :meth:`post`.
        """
        return RepeatingEvent(self, period, fn, until)

    def _store(self, t: int, seq: int, ev: Any) -> None:
        """File an entry that is *not* the global minimum into its tier."""
        b = t >> self._bits
        if b <= self._cur_b:
            # The bucket being drained (or an instant the drain region has
            # already reached): keep the active batch sorted.
            insort(self._active, (-t, -seq, ev))
            return
        lst = self._buckets.get(b)
        if lst is None:
            self._buckets[b] = [(-t, -seq, ev)]
            heappush(self._bucket_ids, b)
        else:
            lst.append((-t, -seq, ev))

    # ------------------------------------------------------------ refill

    def _advance_slot(self) -> None:
        """Refill the slot when the active batch is empty: pop the next
        non-empty bucket, sort it into dispatch order, make it active."""
        ids = self._bucket_ids
        buckets = self._buckets
        while ids:
            b = heappop(ids)
            lst = buckets.pop(b, None)
            if lst is None:
                continue  # stale id: the bucket was emptied by compaction
            self._cur_b = b
            if len(lst) > 1:
                lst.sort()
            e = lst.pop()
            self._active = lst
            self._slot_t = -e[0]
            self._slot_seq = -e[1]
            self._slot_ev = e[2]
            return
        self._slot_t = None
        self._slot_ev = None

    def _refill_slot(self) -> None:
        """Move the next pending entry (if any) into the slot."""
        active = self._active
        if active:
            e = active.pop()
            self._slot_t = -e[0]
            self._slot_seq = -e[1]
            self._slot_ev = e[2]
        else:
            self._advance_slot()

    # ------------------------------------------------------ cancellation

    def _note_cancel(self) -> None:
        """Bookkeeping for a stored entry turning cancelled."""
        self._cancelled += 1
        if self._cancelled < self.COMPACT_MIN_CANCELLED:
            return
        if self._cancelled * 2 < self._stored():
            return
        self._compact()

    def _stored(self) -> int:
        """Entries held across all tiers, cancelled ones included."""
        n = len(self._active) + (self._slot_t is not None)
        buckets = self._buckets
        if buckets:
            n += sum(map(len, buckets.values()))
        return n

    def _compact(self) -> None:
        """Drop cancelled entries from every tier (the slot purges itself
        on dispatch). In-place slice assignment keeps a run loop's local
        alias of the active batch valid."""
        live = lambda e: type(e[2]) is tuple or not e[2].cancelled  # noqa: E731
        active = self._active
        active[:] = [e for e in active if live(e)]
        buckets = self._buckets
        for b in list(buckets):
            lst = buckets[b]
            lst[:] = [e for e in lst if live(e)]
            if not lst:
                # The stale id stays in the id heap; _advance_slot skips it.
                del buckets[b]
        ev = self._slot_ev
        self._cancelled = int(ev is not None and type(ev) is not tuple
                              and ev.cancelled)

    # ------------------------------------------------------------- running

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None,
            wall_clock_s: Optional[float] = None) -> int:
        """Run events until the calendar drains, ``until`` is reached, or a
        watchdog budget (``max_events`` executed, ``wall_clock_s`` seconds
        of real time) is exhausted.

        Returns the number of events executed by this call. When ``until`` is
        given, the clock is advanced to ``until`` even if the calendar drained
        earlier, so back-to-back ``run`` calls see a monotonic clock.

        Hitting a watchdog budget while live events remain sets ``aborted``
        and ``abort_reason`` — the hook runaway simulations are detected
        with (a finished run, even one cut at ``until``, is not an abort).
        Each call resets the flags.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        self.aborted = False
        self.abort_reason = ""
        if until is None and max_events is None and wall_clock_s is None:
            return self._run_fast()
        if max_events is None and wall_clock_s is None:
            return self._run_until(until)
        return self._run_guarded(until, max_events, wall_clock_s)

    def _run_fast(self) -> int:
        """Drain the calendar with no horizon and no watchdog — the hot path."""
        executed = 0
        try:
            active = self._active
            while True:
                t = self._slot_t
                if t is None:
                    break
                ev = self._slot_ev
                # Inline slot refill (the method-call version costs ~15% on
                # chained workloads). The local alias can only go stale
                # empty: _advance_slot is the sole rebinder of _active and
                # runs only when the batch is drained, so a non-empty local
                # is always the live list.
                if active:
                    e = active.pop()
                    self._slot_t = -e[0]
                    self._slot_seq = -e[1]
                    self._slot_ev = e[2]
                else:
                    active = self._active  # resync a stale (empty) alias
                    if active:
                        e = active.pop()
                        self._slot_t = -e[0]
                        self._slot_seq = -e[1]
                        self._slot_ev = e[2]
                    elif self._bucket_ids:
                        self._advance_slot()
                        active = self._active
                    else:
                        self._slot_t = None
                        self._slot_ev = None
                if type(ev) is tuple:  # handle-free event (``post``)
                    self._now = t
                    fn, args = ev
                    fn(*args)
                    executed += 1
                    continue
                fn = ev.fn
                if fn is None:  # lazily-cancelled entry
                    self._cancelled -= 1
                    continue
                self._now = t
                args = ev.args
                ev.fn = None
                ev.args = ()
                fn(*args)
                executed += 1
        finally:
            self._events_run += executed
            self._running = False
        return executed

    def _run_until(self, until: int) -> int:
        """Horizon-only run: like :meth:`_run_fast` plus a single time check
        per event, with none of the watchdog bookkeeping."""
        executed = 0
        try:
            active = self._active
            while True:
                t = self._slot_t
                if t is None or t > until:
                    break
                ev = self._slot_ev
                if active:
                    e = active.pop()
                    self._slot_t = -e[0]
                    self._slot_seq = -e[1]
                    self._slot_ev = e[2]
                else:
                    active = self._active
                    if active:
                        e = active.pop()
                        self._slot_t = -e[0]
                        self._slot_seq = -e[1]
                        self._slot_ev = e[2]
                    elif self._bucket_ids:
                        self._advance_slot()
                        active = self._active
                    else:
                        self._slot_t = None
                        self._slot_ev = None
                if type(ev) is tuple:  # handle-free event (``post``)
                    self._now = t
                    fn, args = ev
                    fn(*args)
                    executed += 1
                    continue
                fn = ev.fn
                if fn is None:  # lazily-cancelled entry
                    self._cancelled -= 1
                    continue
                self._now = t
                args = ev.args
                ev.fn = None
                ev.args = ()
                fn(*args)
                executed += 1
        finally:
            self._events_run += executed
            self._running = False
        if self._now < until:
            self._now = until
        return executed

    def _run_guarded(self, until: Optional[int], max_events: Optional[int],
                     wall_clock_s: Optional[float]) -> int:
        executed = 0
        iters = 0
        deadline = (time.monotonic() + wall_clock_s
                    if wall_clock_s is not None else None)
        # Keyed on loop iterations, not executed events: a purge of lazily
        # cancelled entries executes nothing yet must still reach the
        # wall-clock check (see the heap engine for the original bug).
        next_wall_check = self.WALL_CHECK_INTERVAL
        try:
            while True:
                t = self._slot_t
                if t is None:
                    break
                ev = self._slot_ev
                plain = type(ev) is tuple
                purge = not plain and ev.fn is None
                if not purge:
                    if until is not None and t > until:
                        break
                    if max_events is not None and executed >= max_events:
                        self.aborted = True
                        self.abort_reason = (
                            f"watchdog: {executed} events executed "
                            f"(max_events={max_events})"
                        )
                        break
                iters += 1
                if deadline is not None and iters >= next_wall_check:
                    next_wall_check = iters + self.WALL_CHECK_INTERVAL
                    if time.monotonic() >= deadline:
                        self.aborted = True
                        self.abort_reason = (
                            f"watchdog: wall-clock budget {wall_clock_s:.3g}s "
                            f"exhausted after {executed} events"
                        )
                        break
                if purge:
                    self._cancelled -= 1
                    self._refill_slot()
                    continue
                self._refill_slot()
                self._now = t
                if plain:
                    fn, args = ev
                else:
                    fn, args = ev.fn, ev.args
                    ev.fn = None
                    ev.args = ()
                fn(*args)
                executed += 1
        finally:
            self._events_run += executed
            self._running = False
        if until is not None and self._now < until and not self.aborted:
            self._now = until
        return executed

    # ------------------------------------------------------------ queries

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the calendar is
        empty. Cancelled entries at the front are purged on the way."""
        while True:
            t = self._slot_t
            if t is None:
                return None
            ev = self._slot_ev
            if type(ev) is tuple or not ev.cancelled:
                return t
            self._cancelled -= 1
            self._refill_slot()

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._stored() - self._cancelled

    def iter_pending(self) -> Iterator[Tuple[int, int, Any]]:
        """Iterate stored ``(time, seq, event)`` entries across all tiers,
        lazily-cancelled ones included (callers skip them, exactly as they
        skipped cancelled heap entries). Dispatch order is NOT implied."""
        if self._slot_t is not None:
            yield (self._slot_t, self._slot_seq, self._slot_ev)
        for e in self._active:
            yield (-e[0], -e[1], e[2])
        for lst in self._buckets.values():
            for e in lst:
                yield (-e[0], -e[1], e[2])
