"""Named deterministic random streams.

Every source of randomness in an experiment (flow sizes, arrival times,
source/destination picks, ECMP tie-breaks) draws from its own named stream.
Streams are derived from the experiment seed and the stream name, so adding a
new consumer of randomness never perturbs existing streams — a property the
regression tests rely on.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

#: domain-separation tag ("fork" in ASCII) for derived registries
FORK_TAG = 0x666F726B


class RngRegistry:
    """A registry of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable across processes and Python versions: derive the child
            # seed from CRC32 of the name rather than hash().
            child = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self._seed, child]))
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g., per repetition).

        The child seed comes from ``SeedSequence([seed, FORK_TAG, salt])``
        rather than a linear mix: the old ``seed * P + salt`` derivation
        collided whenever ``seed1 * P + salt1 == seed2 * P + salt2``
        (e.g. (7, P) and (8, 0)), handing two unrelated scenarios every
        random stream in common.
        """
        seq = np.random.SeedSequence([self._seed, FORK_TAG, int(salt)])
        return RngRegistry(seed=int(seq.generate_state(1, np.uint64)[0]))
