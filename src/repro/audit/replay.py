"""Deterministic-replay harness: the same config must produce the same
event stream, bit for bit, through every execution path we ship.

``replay_config`` runs a config twice — once in-process, once through the
``run_many`` worker entry point in a real subprocess (config pickled over,
packed result pickled back) followed by an experiment-cache round-trip —
and compares the rolling event digests. On a mismatch the first-divergence
reporter re-runs both sides with raw-event capture pinned to the earliest
divergent epoch and returns both event windows.

``compare_engines`` reuses the same digest machinery across *engine
backends* instead of execution paths: the same config runs once on the heap
engine and once on the calendar engine, and the two event streams must be
bit-identical. This is the acceptance oracle for any scheduler rewrite —
both engines assign sequence numbers at schedule time and dispatch in exact
``(time, seq)`` order, so even a reordering that would be invisible to
aggregate metrics shows up as a digest divergence.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import tempfile
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.audit.config import AuditConfig
from repro.audit.digest import EventDigest


@dataclass
class ReplayReport:
    """Outcome of one determinism cell."""

    match: bool
    total_events: int
    epochs: int
    #: earliest divergent epoch index (None when match)
    divergence_epoch: Optional[int] = None
    divergence_time_ns: Optional[int] = None
    #: (time, kind, node, flow, seq) windows from the divergent epoch
    events_a: List[Tuple[int, int, int, int, int]] = field(default_factory=list)
    events_b: List[Tuple[int, int, int, int, int]] = field(default_factory=list)


def _audited(cfg, capture_epoch: Optional[int] = None):
    """The config with digest-recording audit enabled (capture optional)."""
    base = cfg.audit if cfg.audit is not None else AuditConfig()
    return cfg.with_(audit=replace(base, enabled=True, digest=True,
                                   capture_epoch=capture_epoch))


def _run_local(cfg) -> "ExperimentResult":
    from repro.experiments.runner import run_experiment
    return run_experiment(cfg)


def _run_worker_and_cache(cfg) -> "ExperimentResult":
    """Run through the exact machinery a sweep uses: pickle the config into
    a worker subprocess, unpack the packed result, then round-trip it
    through the on-disk experiment cache."""
    from repro.experiments.cache import ExperimentCache
    from repro.experiments.parallel import _indexed_worker, _unpack

    cfg = pickle.loads(pickle.dumps(cfg))
    ctx = multiprocessing.get_context()
    with ctx.Pool(processes=1) as pool:
        _idx, stripped, packed = pool.apply(_indexed_worker, ((0, cfg),))
    result = _unpack(stripped, packed)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ExperimentCache(tmp)
        cache.put(cfg, result)
        cached = cache.get(cfg)
    if cached is None:
        raise RuntimeError("cache round-trip lost the result")
    return cached


def _digest_of(result) -> EventDigest:
    if result.audit is None or result.audit.digest is None:
        raise RuntimeError(
            "replay needs a digest-enabled audit on the result")
    return result.audit.digest


def replay_config(cfg, capture_on_divergence: bool = True) -> ReplayReport:
    """Run ``cfg`` through both execution paths and compare digests."""
    cfg = _audited(cfg)
    digest_a = _digest_of(_run_local(cfg))
    digest_b = _digest_of(_run_worker_and_cache(cfg))
    epoch = digest_a.first_divergence(digest_b)
    if epoch is None:
        return ReplayReport(match=True, total_events=digest_a.total,
                            epochs=len(digest_a.epochs))
    report = ReplayReport(
        match=False, total_events=digest_a.total,
        epochs=len(digest_a.epochs), divergence_epoch=epoch,
        divergence_time_ns=epoch * digest_a.epoch_ns,
    )
    if capture_on_divergence:
        captured = _audited(cfg, capture_epoch=epoch)
        report.events_a = _digest_of(_run_local(captured)).events
        report.events_b = _digest_of(_run_worker_and_cache(captured)).events
    return report


@contextlib.contextmanager
def _engine_env(backend: str):
    """Pin ``REPRO_SIM_ENGINE`` for the duration of one run."""
    prev = os.environ.get("REPRO_SIM_ENGINE")
    os.environ["REPRO_SIM_ENGINE"] = backend
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_SIM_ENGINE", None)
        else:
            os.environ["REPRO_SIM_ENGINE"] = prev


def _run_backend(cfg, backend: str) -> "ExperimentResult":
    with _engine_env(backend):
        return _run_local(cfg)


def compare_engines(cfg, backends: Sequence[str] = ("heap", "calendar"),
                    capture_on_divergence: bool = True) -> ReplayReport:
    """Run ``cfg`` once per engine backend and compare event digests.

    Returns the same :class:`ReplayReport` shape as :func:`replay_config`,
    with run A = ``backends[0]`` and run B = ``backends[1]``.
    """
    if len(backends) != 2:
        raise ValueError(f"need exactly two backends, got {backends!r}")
    cfg = _audited(cfg)
    digest_a = _digest_of(_run_backend(cfg, backends[0]))
    digest_b = _digest_of(_run_backend(cfg, backends[1]))
    epoch = digest_a.first_divergence(digest_b)
    if epoch is None:
        return ReplayReport(match=True, total_events=digest_a.total,
                            epochs=len(digest_a.epochs))
    report = ReplayReport(
        match=False, total_events=digest_a.total,
        epochs=len(digest_a.epochs), divergence_epoch=epoch,
        divergence_time_ns=epoch * digest_a.epoch_ns,
    )
    if capture_on_divergence:
        captured = _audited(cfg, capture_epoch=epoch)
        report.events_a = _digest_of(_run_backend(captured, backends[0])).events
        report.events_b = _digest_of(_run_backend(captured, backends[1])).events
    return report


@contextlib.contextmanager
def _credit_plane_env(plane: str):
    """Pin ``REPRO_CREDIT_PLANE`` for the duration of one run."""
    prev = os.environ.get("REPRO_CREDIT_PLANE")
    os.environ["REPRO_CREDIT_PLANE"] = plane
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_CREDIT_PLANE", None)
        else:
            os.environ["REPRO_CREDIT_PLANE"] = prev


def _run_plane(cfg, plane: str) -> "ExperimentResult":
    with _credit_plane_env(plane):
        return _run_local(cfg)


def compare_credit_planes(cfg, planes: Sequence[str] = ("legacy", "wheel"),
                          capture_on_divergence: bool = True) -> ReplayReport:
    """Run ``cfg`` once per credit plane and compare event digests.

    The acceptance oracle for the timer-wheel credit plane (DESIGN.md §6i):
    batched jitter pre-draws, handle-free pacing posts, and wheel-filed
    coarse timers must reproduce the legacy per-event plane's delivery
    stream bit for bit. Same :class:`ReplayReport` shape as
    :func:`compare_engines`, run A = ``planes[0]``, run B = ``planes[1]``.
    """
    if len(planes) != 2:
        raise ValueError(f"need exactly two credit planes, got {planes!r}")
    cfg = _audited(cfg)
    digest_a = _digest_of(_run_plane(cfg, planes[0]))
    digest_b = _digest_of(_run_plane(cfg, planes[1]))
    epoch = digest_a.first_divergence(digest_b)
    if epoch is None:
        return ReplayReport(match=True, total_events=digest_a.total,
                            epochs=len(digest_a.epochs))
    report = ReplayReport(
        match=False, total_events=digest_a.total,
        epochs=len(digest_a.epochs), divergence_epoch=epoch,
        divergence_time_ns=epoch * digest_a.epoch_ns,
    )
    if capture_on_divergence:
        captured = _audited(cfg, capture_epoch=epoch)
        report.events_a = _digest_of(_run_plane(captured, planes[0])).events
        report.events_b = _digest_of(_run_plane(captured, planes[1])).events
    return report


def format_replay_report(report: ReplayReport) -> str:
    """Human-readable replay verdict (CLI output)."""
    if report.match:
        return (f"replay OK: {report.total_events} deliveries across "
                f"{report.epochs} epochs, digests identical through "
                f"worker pickling and cache round-trip")
    lines = [
        f"replay DIVERGED at epoch {report.divergence_epoch} "
        f"(t={report.divergence_time_ns}ns): "
        f"{report.total_events} deliveries recorded in run A",
        f"--- run A window ({len(report.events_a)} events) ---",
    ]
    lines += [f"  t={t} kind={k} node={n} flow={f} seq={s}"
              for t, k, n, f, s in report.events_a]
    lines.append(f"--- run B window ({len(report.events_b)} events) ---")
    lines += [f"  t={t} kind={k} node={n} flow={f} seq={s}"
              for t, k, n, f, s in report.events_b]
    return "\n".join(lines)
