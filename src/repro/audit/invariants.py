"""Conservation invariants over a live simulation.

The :class:`InvariantAuditor` machine-checks the bookkeeping every figure
rests on:

* **Packet-pool conservation** — every ``alloc_packet`` is freed exactly
  once; at the horizon the pool's outstanding count equals the pooled
  packets still sitting in queues, in flight on the heap, or retained by
  a ``keep_dropped`` fault ledger. A surplus is a leak; a deficit is a
  double free.
* **Per-link packet conservation** — for every egress port,
  ``dequeued == delivered + in-flight`` (plus fault drops for spliced
  links, whose counters may be shared and are therefore reconciled
  globally).
* **Shared-buffer accounting** — ``buffer.used`` equals the queued bytes
  of the queues charging it at every checkpoint (so it drains to 0 when
  the queues do), never goes negative, and ``buffer.drops`` reconciles
  with the per-queue ``dropped_buffer`` counters.
* **Queue accounting** — ``enqueued == dequeued + backlog`` and the byte
  gauge matches the actual FIFO contents.
* **Flow/credit conservation** — completed flows delivered exactly
  ``size_bytes`` distinct bytes; ``proactive + reactive == delivered``;
  for credit-based senders ``credits_received == credited_sends +
  credits_wasted`` and no sender received more credits than its receiver
  sent (Homa never increments ``credits_received``, so its GRANT-based
  ``credits_sent`` is exempt by construction).
* **Segment-state sanity** — a FlexPass send buffer holds every segment
  in exactly one state and its ACKED population matches ``n_acked``.

Checkpoint checks are instantaneous-consistency checks (cheap, counter
reads only); the heap scan and flow checks run once at the horizon.
When auditing is disabled nothing is constructed — zero per-packet and
zero per-event cost, like telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.audit.config import AuditConfig
from repro.audit.digest import DigestRecorder, EventDigest, install_digest_taps
from repro.core.segments import SegmentState
from repro.net.link import Link
from repro.net.packet import Packet, packet_pool

#: schemes whose senders consume CREDIT packets (credit identity applies)
_CREDIT_SCHEMES = frozenset(
    {"naive", "ly", "flexpass", "flexpass_rc3", "flexpass_altq"})

#: event-callback names that mean "a link owns this pending delivery"
_LINK_EVENT_NAMES = frozenset({"_deliver", "carry", "_deliver_corrupted"})


class AuditError(RuntimeError):
    """Raised on the first violation when ``AuditConfig.fail_fast`` is set."""


@dataclass
class AuditReport:
    """Picklable outcome of one audited run."""

    violations: List[str] = field(default_factory=list)
    checks: int = 0
    checkpoints: int = 0
    digest: Optional[EventDigest] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise AuditError(
                f"{len(self.violations)} invariant violation(s):\n  "
                + "\n  ".join(self.violations))


class InvariantAuditor:
    """Checks conservation invariants against a running simulation.

    Construct after the topology is built and faults are spliced, before
    traffic starts (the packet-pool baseline is snapshotted here). Call
    :meth:`install` to arm periodic checkpoints, and :meth:`finalize`
    after ``sim.run`` for the full horizon audit.
    """

    def __init__(self, sim, topo, live: Optional[Dict] = None,
                 config: Optional[AuditConfig] = None, pool=None) -> None:
        self.sim = sim
        self.topo = topo
        self.live = live if live is not None else {}
        self.config = config if config is not None else AuditConfig()
        self.pool = pool if pool is not None else packet_pool()
        self.violations: List[str] = []
        self.checks = 0
        self.checkpoints = 0
        self._baseline_outstanding = self.pool.acquired - self.pool.released
        self.recorder: Optional[DigestRecorder] = None
        if self.config.digest:
            self.recorder = DigestRecorder(
                self.config.digest_epoch_ns,
                capture_epoch=self.config.capture_epoch,
                capture_limit=self.config.capture_limit,
            )
            install_digest_taps(sim, topo, self.recorder)

    def install(self, horizon_ns: int) -> None:
        """Arm the periodic checkpoint (no-op when interval is None)."""
        interval = self.config.checkpoint_interval_ns
        if interval is not None:
            self.sim.every(interval, self.checkpoint, until=horizon_ns)

    # ------------------------------------------------------------ plumbing

    def _expect(self, ok: bool, msg: str) -> None:
        self.checks += 1
        if ok:
            return
        if len(self.violations) < self.config.max_violations:
            self.violations.append(f"t={self.sim.now}ns: {msg}")
        if self.config.fail_fast:
            raise AuditError(f"t={self.sim.now}ns: {msg}")

    # ------------------------------------------------------- checkpointing

    def checkpoint(self) -> None:
        """Instantaneous-consistency checks, safe to run at any event
        boundary (buffer charges and queue membership change atomically
        within an event)."""
        self.checkpoints += 1
        self._check_buffers()
        self._check_queues()

    def _check_buffers(self) -> None:
        # Group ports by the buffer they charge: switch ports share their
        # switch's SharedBuffer, host NICs each have an UnlimitedBuffer.
        groups: Dict[int, Tuple[object, List]] = {}
        for port in self.topo.all_ports():
            entry = groups.setdefault(id(port.buffer), (port.buffer, []))
            entry[1].append(port)
        for buf, ports in groups.values():
            queued = sum(q.byte_count for p in ports for q in p._queues)
            drops = sum(q.stats.dropped_buffer
                        for p in ports for q in p._queues)
            names = ports[0].name
            self._expect(
                buf.used >= 0,
                f"buffer at {names}: used={buf.used} is negative")
            self._expect(
                buf.used == queued,
                f"buffer at {names}: used={buf.used} != queued bytes "
                f"{queued} (charge/release imbalance)")
            self._expect(
                buf.drops == drops,
                f"buffer at {names}: drops={buf.drops} != per-queue "
                f"dropped_buffer sum {drops}")

    def _check_queues(self) -> None:
        for port in self.topo.all_ports():
            for q in port._queues:
                st = q.stats
                backlog = len(q._fifo)
                self._expect(
                    st.enqueued == st.dequeued + backlog,
                    f"queue {port.name}/{q.config.name}: enqueued="
                    f"{st.enqueued} != dequeued={st.dequeued} + "
                    f"backlog={backlog}")
                fifo_bytes = sum(p.size for p in q._fifo)
                self._expect(
                    q.byte_count == fifo_bytes,
                    f"queue {port.name}/{q.config.name}: byte_count="
                    f"{q.byte_count} != FIFO bytes {fifo_bytes}")

    # ------------------------------------------------------------- horizon

    def finalize(self) -> AuditReport:
        """Full audit at the horizon; returns the picklable report."""
        self._check_buffers()
        self._check_queues()
        link_inflight, pooled_in_heap = self._scan_heap()
        self._check_links(link_inflight)
        self._check_pool(pooled_in_heap)
        self._check_flows()
        return AuditReport(
            violations=list(self.violations),
            checks=self.checks,
            checkpoints=self.checkpoints,
            digest=self.recorder.freeze() if self.recorder else None,
        )

    def _scan_heap(self) -> Tuple[Dict[int, int], Set[int]]:
        """One pass over pending events: per-link in-flight deliveries and
        the identities of pooled packets referenced by any event."""
        link_inflight: Dict[int, int] = {}
        pooled: Set[int] = set()
        for entry in self.sim.iter_pending():
            ev = entry[2]
            if type(ev) is tuple:
                fn, args = ev
            else:
                fn = ev.fn
                if fn is None:  # cancelled
                    continue
                args = ev.args
            for a in args:
                if isinstance(a, Packet) and a._pooled:
                    pooled.add(id(a))
            owner = getattr(fn, "__self__", None)
            if owner is None:
                continue
            name = fn.__name__
            if name in _LINK_EVENT_NAMES:
                key = id(owner)
                link_inflight[key] = link_inflight.get(key, 0) + 1
            elif name == "_tx_done":
                # Monitored ports hold the packet between transmit start
                # (dequeue) and serialization end (link.carry).
                link = getattr(owner, "link", None)
                if link is not None:
                    key = id(link)
                    link_inflight[key] = link_inflight.get(key, 0) + 1
        return link_inflight, pooled

    def _check_links(self, link_inflight: Dict[int, int]) -> None:
        """Per-port packet conservation: dequeued = delivered + in-flight.

        ``Link.carry`` counts delivery when the packet enters the wire (its
        pending ``dst.receive`` event is already "delivered"), while
        ``carry_after``/FaultyLink count at arrival — the heap scan only
        tallies the latter, so the identity holds on both paths. Spliced
        links may share one FaultCounters, so fault drops reconcile as one
        global identity across all wrapped links.
        """
        wrapped_deq = wrapped_delivered = wrapped_inflight = 0
        wrapped_retained = 0
        counter_objs: Dict[int, object] = {}
        any_wrapped = False
        for port in self.topo.all_ports():
            link = port.link
            dequeued = sum(q.stats.dequeued for q in port._queues)
            inflight = link_inflight.get(id(link), 0)
            if type(link) is Link:
                self._expect(
                    dequeued == link.packets_delivered + inflight,
                    f"link at {port.name}: dequeued={dequeued} != "
                    f"delivered={link.packets_delivered} + "
                    f"in-flight={inflight}")
            else:
                any_wrapped = True
                wrapped_deq += dequeued
                wrapped_delivered += link.packets_delivered
                wrapped_inflight += inflight
                wrapped_retained += len(getattr(link, "dropped", ()))
                counters = getattr(link, "counters", None)
                if counters is not None:
                    counter_objs[id(counters)] = counters
        if any_wrapped:
            drops = sum(
                c.injected_drops + c.dropped_link_down + c.corrupted
                + c.discarded_in_flight
                for c in counter_objs.values())
            self._expect(
                wrapped_deq == wrapped_delivered + wrapped_inflight + drops,
                f"fault-wrapped links: dequeued={wrapped_deq} != "
                f"delivered={wrapped_delivered} + in-flight="
                f"{wrapped_inflight} + fault drops={drops}")

    def _check_pool(self, pooled_in_heap: Set[int]) -> None:
        """Packet-pool conservation relative to the install-time baseline."""
        outstanding = (self.pool.acquired - self.pool.released
                       - self._baseline_outstanding)
        reachable = set(pooled_in_heap)
        for port in self.topo.all_ports():
            for q in port._queues:
                for p in q._fifo:
                    if p._pooled:
                        reachable.add(id(p))
            for p in getattr(port.link, "dropped", ()):
                if p._pooled:
                    reachable.add(id(p))
        expected = len(reachable)
        self._expect(
            outstanding >= 0,
            f"packet pool: outstanding={outstanding} is negative "
            f"(double free)")
        self._expect(
            outstanding == expected,
            f"packet pool: outstanding={outstanding} != reachable pooled "
            f"packets {expected} (queues + in-flight + retained); "
            f"{'leak' if outstanding > expected else 'double free'}")

    def _check_flows(self) -> None:
        for spec, stats in self.live.values():
            fid = spec.flow_id
            self._expect(
                stats.delivered_bytes <= spec.size_bytes,
                f"flow {fid}: delivered {stats.delivered_bytes} bytes > "
                f"size {spec.size_bytes}")
            if stats.completed:
                self._expect(
                    stats.delivered_bytes == spec.size_bytes,
                    f"flow {fid}: completed with delivered="
                    f"{stats.delivered_bytes} != size {spec.size_bytes}")
            self._expect(
                stats.proactive_bytes + stats.reactive_bytes
                == stats.delivered_bytes,
                f"flow {fid}: proactive {stats.proactive_bytes} + reactive "
                f"{stats.reactive_bytes} != delivered "
                f"{stats.delivered_bytes}")
            self._expect(
                stats.credits_received
                == stats.credited_sends + stats.credits_wasted,
                f"flow {fid}: credits_received={stats.credits_received} != "
                f"credited_sends={stats.credited_sends} + credits_wasted="
                f"{stats.credits_wasted}")
            self._expect(
                stats.credits_received <= stats.credits_sent,
                f"flow {fid}: received {stats.credits_received} credits > "
                f"{stats.credits_sent} sent (credits cannot duplicate)")
            if spec.scheme in _CREDIT_SCHEMES:
                self._expect(
                    stats.credited_sends + stats.credits_wasted
                    <= stats.credits_sent,
                    f"flow {fid}: consumed more credits than sent "
                    f"({stats.credited_sends}+{stats.credits_wasted} > "
                    f"{stats.credits_sent})")
            self._check_segments(spec, stats)

    def _check_segments(self, spec, stats) -> None:
        sender = getattr(spec.src, "_senders", {}).get(spec.flow_id)
        buffer = getattr(sender, "buffer", None)
        if buffer is None or not hasattr(buffer, "state_counts"):
            return
        counts = buffer.state_counts()
        total = sum(counts.values())
        self._expect(
            total == len(buffer),
            f"flow {spec.flow_id}: segment states sum to {total} != "
            f"{len(buffer)} segments (segment in two states)")
        self._expect(
            counts[SegmentState.ACKED] == buffer.n_acked,
            f"flow {spec.flow_id}: {counts[SegmentState.ACKED]} ACKED "
            f"segments != n_acked={buffer.n_acked}")
