"""Rolling event digest for deterministic replay.

Every packet delivery is folded into an epoch-bucketed 64-bit hash of
``(time, kind, node, flow, seq)``. Two runs of the same config must
produce identical digests — including across worker pickling and a cache
round-trip — or the simulation is not reproducible. The digest is pure
observation: recording is a transparent proxy on each link's destination
node, so it adds no events and cannot perturb scheduling, and nothing at
all is installed when auditing (or the digest) is disabled.

Only Python integer arithmetic is used for mixing (no ``hash()`` of
strings, no dict iteration order), so digests are stable across
processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

_MASK = (1 << 64) - 1
_FNV_PRIME = 0x100000001B3
_FNV_OFFSET = 0xCBF29CE484222325
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9


class EventDigest:
    """Frozen per-epoch digests of one run (picklable)."""

    __slots__ = ("epoch_ns", "epochs", "digests", "counts", "total", "events")

    def __init__(self, epoch_ns: int, epochs: List[int], digests: List[int],
                 counts: List[int], total: int,
                 events: Optional[List[Tuple[int, int, int, int, int]]] = None,
                 ) -> None:
        self.epoch_ns = epoch_ns
        self.epochs = epochs      #: epoch indices with at least one event
        self.digests = digests    #: 64-bit digest per epoch (parallel list)
        self.counts = counts      #: events folded per epoch (parallel list)
        self.total = total
        #: raw (time, kind, node, flow, seq) tuples for the capture epoch
        self.events = events if events is not None else []

    # __slots__ classes need explicit state hooks for pickling
    def __getstate__(self):
        return (self.epoch_ns, self.epochs, self.digests, self.counts,
                self.total, self.events)

    def __setstate__(self, state):
        (self.epoch_ns, self.epochs, self.digests, self.counts,
         self.total, self.events) = state

    def final(self) -> int:
        """One combined 64-bit digest over all epochs."""
        h = _FNV_OFFSET
        for e, d, c in zip(self.epochs, self.digests, self.counts):
            h = ((h ^ (e * _MIX_A + d + c)) * _FNV_PRIME) & _MASK
        return h

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventDigest):
            return NotImplemented
        return (self.epoch_ns == other.epoch_ns
                and self.epochs == other.epochs
                and self.digests == other.digests
                and self.counts == other.counts)

    def first_divergence(self, other: "EventDigest") -> Optional[int]:
        """Earliest epoch index where the two digests disagree (None if
        identical). Compares aligned epoch streams, so an epoch present in
        one run but absent from the other also counts as the divergence."""
        if self.epoch_ns != other.epoch_ns:
            raise ValueError("digests recorded at different epoch sizes")
        a = dict(zip(self.epochs, zip(self.digests, self.counts)))
        b = dict(zip(other.epochs, zip(other.digests, other.counts)))
        diverged = [e for e in set(a) | set(b) if a.get(e) != b.get(e)]
        return min(diverged) if diverged else None


class DigestRecorder:
    """Accumulates the rolling digest during a run."""

    __slots__ = ("epoch_ns", "total", "_epochs", "_digests", "_counts",
                 "_cur_epoch", "_hash", "_count", "capture_epoch",
                 "capture_limit", "events")

    def __init__(self, epoch_ns: int, capture_epoch: Optional[int] = None,
                 capture_limit: int = 256) -> None:
        if epoch_ns <= 0:
            raise ValueError("epoch_ns must be positive")
        self.epoch_ns = epoch_ns
        self.total = 0
        self._epochs: List[int] = []
        self._digests: List[int] = []
        self._counts: List[int] = []
        self._cur_epoch = -1
        self._hash = _FNV_OFFSET
        self._count = 0
        self.capture_epoch = capture_epoch
        self.capture_limit = capture_limit
        self.events: List[Tuple[int, int, int, int, int]] = []

    def record(self, t: int, kind: int, node: int, flow: int, seq) -> None:
        epoch = t // self.epoch_ns
        if epoch != self._cur_epoch:
            self._flush()
            self._cur_epoch = epoch
        s = -1 if seq is None else seq
        f = -1 if flow is None else flow
        x = (((t << 4) ^ kind) * _MIX_A + node) & _MASK
        x ^= (f * _MIX_B + (s & _MASK)) & _MASK
        self._hash = ((self._hash ^ x) * _FNV_PRIME) & _MASK
        self._count += 1
        self.total += 1
        if (epoch == self.capture_epoch
                and len(self.events) < self.capture_limit):
            self.events.append((t, int(kind), node, f, s))

    def _flush(self) -> None:
        if self._count:
            self._epochs.append(self._cur_epoch)
            self._digests.append(self._hash)
            self._counts.append(self._count)
        self._hash = _FNV_OFFSET
        self._count = 0

    def freeze(self) -> EventDigest:
        """Finish the open epoch and return the immutable digest."""
        self._flush()
        self._cur_epoch = -1
        return EventDigest(self.epoch_ns, list(self._epochs),
                           list(self._digests), list(self._counts),
                           self.total, list(self.events))


class _DigestTap:
    """Transparent destination-node proxy: record the delivery, pass it on.

    Installed as ``link.dst``, so both delivery paths — ``Link.carry``
    (which posts ``dst.receive``) and the coalesced ``_deliver`` of
    ``Link``/``FaultyLink`` — route through :meth:`receive` at delivery
    time with no extra scheduled events.
    """

    __slots__ = ("_node", "_rec", "_sim", "_id")

    def __init__(self, node, recorder: DigestRecorder, sim) -> None:
        self._node = node
        self._rec = recorder
        self._sim = sim
        self._id = node.id

    @property
    def id(self) -> int:
        return self._id

    @property
    def name(self) -> str:
        return self._node.name

    def receive(self, pkt) -> None:
        self._rec.record(self._sim.now, pkt.kind, self._id,
                         pkt.flow_id, pkt.seq)
        self._node.receive(pkt)


def install_digest_taps(sim, topo, recorder: DigestRecorder) -> int:
    """Wrap the destination of every link in ``topo`` with a recording tap.

    Must run after fault splicing (so a spliced FaultyLink's own ``dst``
    gets wrapped). Returns the number of taps installed.
    """
    n = 0
    for port in topo.all_ports():
        link = port.link
        link.dst = _DigestTap(link.dst, recorder, sim)
        n += 1
    return n
