"""The CI audit matrix: scheme x topology cells with auditing enabled.

Each cell is a short-horizon :func:`run_experiment` over one of three
fabric shapes — a dumbbell (two racks through one spine), an incast rack
(one ToR, foreground incast traffic), and the default two-pod Clos — for
each transport scheme. A cell passes when its :class:`AuditReport` has
zero violations; any violation is a bookkeeping bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit.config import AuditConfig
from repro.net.topology import ClosSpec
from repro.sim.units import MILLIS

#: the five transport schemes the matrix exercises (enum values)
MATRIX_SCHEMES = ("dctcp", "naive", "homa", "ly", "flexpass")

#: topology name -> (ClosSpec shape, config overrides)
MATRIX_TOPOLOGIES: Dict[str, Tuple[ClosSpec, Dict[str, object]]] = {
    # two racks, one spine layer: the classic shared-bottleneck shape
    "dumbbell": (
        ClosSpec(n_pods=1, aggs_per_pod=1, tors_per_pod=2, hosts_per_tor=2),
        {},
    ),
    # one rack fanning into one ToR, with foreground incast bursts
    "incast": (
        ClosSpec(n_pods=1, aggs_per_pod=1, tors_per_pod=1, hosts_per_tor=6),
        {"foreground_fraction": 0.3},
    ),
    # the default two-pod Clos the figure sweeps run on
    "clos": (
        ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=2, hosts_per_tor=4),
        {},
    ),
}


@dataclass
class MatrixCell:
    """One audited (scheme, topology) run."""

    scheme: str
    topology: str
    violations: List[str] = field(default_factory=list)
    checks: int = 0
    checkpoints: int = 0
    flows: int = 0
    completed: int = 0
    aborted: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations and not self.aborted


def matrix_config(scheme: str, topology: str, sim_time_ns: int = 2 * MILLIS,
                  seed: int = 1, load: float = 0.5,
                  audit: Optional[AuditConfig] = None):
    """Build the ExperimentConfig for one matrix cell."""
    from repro.experiments.config import ExperimentConfig, SchemeName
    from repro.experiments.sweep import default_sweep_config

    try:
        clos, overrides = MATRIX_TOPOLOGIES[topology]
    except KeyError:
        raise ValueError(
            f"unknown audit topology {topology!r}; choose from "
            f"{sorted(MATRIX_TOPOLOGIES)}") from None
    scheme_name = SchemeName(scheme)
    deployment = 0.0 if scheme_name == SchemeName.DCTCP else 1.0
    return default_sweep_config(
        scheme=scheme_name, deployment=deployment, clos=clos,
        sim_time_ns=sim_time_ns, seed=seed, load=load,
        audit=audit if audit is not None else AuditConfig(),
        **overrides,
    )


def run_matrix(schemes: Sequence[str] = MATRIX_SCHEMES,
               topologies: Sequence[str] = tuple(MATRIX_TOPOLOGIES),
               sim_time_ns: int = 2 * MILLIS, seed: int = 1,
               load: float = 0.5) -> List[MatrixCell]:
    """Run every (scheme, topology) cell and collect its audit outcome."""
    from repro.experiments.runner import run_experiment

    cells: List[MatrixCell] = []
    for topology in topologies:
        for scheme in schemes:
            cfg = matrix_config(scheme, topology, sim_time_ns=sim_time_ns,
                                seed=seed, load=load)
            res = run_experiment(cfg)
            report = res.audit
            cells.append(MatrixCell(
                scheme=scheme,
                topology=topology,
                violations=list(report.violations) if report else
                ["audit report missing from result"],
                checks=report.checks if report else 0,
                checkpoints=report.checkpoints if report else 0,
                flows=len(res.records),
                completed=res.completed,
                aborted=res.aborted,
            ))
    return cells
