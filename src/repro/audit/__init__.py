"""Opt-in correctness auditing: conservation invariants + deterministic
replay.

Enable per run with ``ExperimentConfig(audit=AuditConfig(...))``, from
the CLI with ``repro audit`` (the scheme x topology invariant matrix, or
``--replay`` for the determinism cell), or from ``tools/run_simulations.py
--audit``. Disabled (the default), nothing is constructed — zero
per-packet and per-event cost, verified by the ``audit_overhead`` A/B
bench.
"""

from repro.audit.config import AuditConfig
from repro.audit.digest import DigestRecorder, EventDigest, install_digest_taps
from repro.audit.invariants import AuditError, AuditReport, InvariantAuditor

__all__ = [
    "AuditConfig",
    "AuditError",
    "AuditReport",
    "DigestRecorder",
    "EventDigest",
    "InvariantAuditor",
    "install_digest_taps",
]
