"""Audit knobs.

:class:`AuditConfig` lives on ``ExperimentConfig`` (like
``TelemetryConfig``), so it participates in the experiment-cache content
key: a cached result always records whether — and how — it was audited,
and flipping any audit knob re-simulates. Every field is a plain scalar
so :func:`repro.experiments.cache.canonicalize` accepts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.units import MICROS


@dataclass(frozen=True)
class AuditConfig:
    """Opt-in correctness auditing for one experiment run."""

    enabled: bool = True
    #: run the cheap instantaneous-consistency checks (buffer/queue
    #: bookkeeping) every this many ns; ``None`` checks at the horizon only
    checkpoint_interval_ns: Optional[int] = 500 * MICROS
    #: record the rolling event digest (required for ``repro audit --replay``)
    digest: bool = False
    #: digest bucketing granularity; divergences are reported per epoch
    digest_epoch_ns: int = 100 * MICROS
    #: additionally capture raw event tuples for this epoch index (used by
    #: the first-divergence reporter to dump both event windows)
    capture_epoch: Optional[int] = None
    #: cap on captured raw events per run
    capture_limit: int = 256
    #: raise :class:`repro.audit.invariants.AuditError` on the first
    #: violation instead of collecting them into the report
    fail_fast: bool = False
    #: cap on collected violation messages
    max_violations: int = 64

    def __post_init__(self) -> None:
        if (self.checkpoint_interval_ns is not None
                and self.checkpoint_interval_ns <= 0):
            raise ValueError("checkpoint_interval_ns must be positive or None")
        if self.digest_epoch_ns <= 0:
            raise ValueError("digest_epoch_ns must be positive")
        if self.capture_limit <= 0:
            raise ValueError("capture_limit must be positive")
        if self.max_violations <= 0:
            raise ValueError("max_violations must be positive")
