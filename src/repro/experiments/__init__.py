"""Experiment harness: scheme wiring, runners, and per-figure reproductions."""

from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import SchemeSetup

__all__ = [
    "ExperimentConfig",
    "SchemeName",
    "ExperimentResult",
    "run_experiment",
    "SchemeSetup",
]
