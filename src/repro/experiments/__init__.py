"""Experiment harness: scheme wiring, runners, and per-figure reproductions.

This package's stable public API is what ``__all__`` lists below — configure
an :class:`ExperimentConfig` (with an optional :class:`TelemetryConfig`),
run it with :func:`run_experiment` or fan out with :func:`run_many`, and
read the :class:`ExperimentResult` (including its packed
:class:`TelemetrySeries`). Scheme wiring for custom topologies goes through
:func:`make_scheme_setup`. Durable, kill-resumable sweeps go through
:class:`SweepFabric` (or ``run_many(coordinator=...)``) against a
:class:`ResultStore` backend opened with :func:`open_store`. Anything
imported from the submodules directly (``repro.experiments.runner`` etc.)
is internal and may move without notice; see README for the documented
surface.
"""

import importlib

from repro.experiments.config import (
    ExperimentConfig,
    QueueSettings,
    SchemeName,
)
from repro.experiments.fabric import (
    CompletionReport,
    FabricConfig,
    SweepFabric,
    sweep_status,
)
from repro.experiments.parallel import FailedResult, run_many
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import (
    SchemeSetup,
    build_topology,
    make_scheme_setup,
    regional_fabric_config,
    run_regional_fabric,
)
from repro.experiments.store import ResultStore, SqliteStore, open_store
from repro.metrics.telemetry import TelemetryConfig, TelemetrySeries

__all__ = [
    "ExperimentConfig",
    "QueueSettings",
    "SchemeName",
    "TelemetryConfig",
    "TelemetrySeries",
    "ExperimentResult",
    "FailedResult",
    "run_experiment",
    "run_many",
    "SchemeSetup",
    "build_topology",
    "make_scheme_setup",
    "regional_fabric_config",
    "run_regional_fabric",
    "CompletionReport",
    "FabricConfig",
    "SweepFabric",
    "sweep_status",
    "ResultStore",
    "SqliteStore",
    "open_store",
]

#: submodules reachable lazily as attributes (``repro.experiments.figures``)
_SUBMODULES = ("cache", "config", "fabric", "figures", "parallel", "runner",
               "scenarios", "store", "sweep")


def __getattr__(name):
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.experiments.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_SUBMODULES) | set(globals()))
