"""Result-store backends for sweeps: one interface, pluggable persistence.

PR 3 introduced the content-addressed :class:`ExperimentCache` — a
directory of pickles keyed by config hash. The sweep fabric (DESIGN.md
§6g) needs the same contract behind different media: a local directory
for single-host runs, and a single SQLite file (WAL mode) that many
worker *processes* — or many hosts sharing a filesystem — can write
concurrently. This module defines that contract and the SQLite backend;
the directory backend stays in :mod:`repro.experiments.cache` and simply
inherits :class:`ResultStore`.

Contract (every backend):

* Keys come from :func:`repro.experiments.cache.config_key` — the salted
  content hash of the full config — so a result stored by any process on
  any host is valid for every other holder of the same config + salt.
* ``get`` returns a fully unpacked :class:`ExperimentResult` or ``None``;
  torn, stale-schema, or concurrently-written-then-lost entries read as
  misses, never as exceptions.
* ``put`` refuses failures and aborted results (they must re-run), and a
  *write* failure (full disk, read-only mount, locked database) degrades
  loudly-but-nonfatally: a warning log + ``write_errors`` counter, return
  ``False``, sweep continues. See ISSUE 6 satellite on silent torn
  writes.
* The payload is the same pickle both backends use —
  ``(result-with-records-stripped, PackedFlowRecords)`` — so migrating a
  store between backends is a byte copy of payloads.

``open_store`` parses user-facing specs::

    open_store("results/.store")          -> ExperimentCache (directory)
    open_store("sqlite:results/sweep.db") -> SqliteStore
    open_store("results/sweep.db")        -> SqliteStore (by suffix)
    open_store(existing_store)            -> unchanged

Worker processes receive the *spec string* (picklable, connection-free)
and open their own backend; SQLite connections never cross ``fork``.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import pickle
import sqlite3
import threading
import time
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.experiments.runner import ExperimentResult
from repro.metrics.fct import PackedFlowRecords

logger = logging.getLogger(__name__)

#: ``type(store).__name__``-independent spec prefix for the SQLite backend.
SQLITE_PREFIX = "sqlite:"

#: File suffixes that make a bare path mean "SQLite file", not "directory".
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def encode_result(result: ExperimentResult) -> bytes:
    """Serialize a clean result to the canonical payload bytes.

    Flow records are packed into typed columns first (tens of thousands of
    dataclasses become a handful of contiguous buffers), exactly as on the
    worker→parent hop.
    """
    packed = PackedFlowRecords.pack(result.records)
    stripped = dataclasses.replace(result, records=[])
    return pickle.dumps((stripped, packed), protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(payload: bytes) -> ExperimentResult:
    """Inverse of :func:`encode_result`. Raises on torn payloads — callers
    translate that into a cache miss."""
    stripped, packed = pickle.loads(payload)
    return dataclasses.replace(stripped, records=packed.unpack())


#: Exceptions that mean "this payload is torn or from an old schema" — a
#: miss, not an error. AttributeError covers renamed classes across PRs,
#: ImportError (and its ModuleNotFoundError subclass) covers pickles
#: referencing moved or deleted modules, KeyError covers removed enum
#: members looked up by value.
DECODE_ERRORS = (pickle.UnpicklingError, ValueError, EOFError,
                 AttributeError, TypeError, IndexError, ImportError,
                 KeyError)


class ResultStore:
    """Interface + shared bookkeeping for experiment-result backends.

    Subclasses implement ``_read(key) -> bytes | None`` and
    ``_write(key, payload) -> None`` (raising ``OSError`` /
    ``sqlite3.Error`` on media failure); this base class supplies keying,
    encode/decode, the never-cache-failures rule, loud-but-nonfatal write
    degradation, and hit/miss/store counters.
    """

    #: spec string that reopens this store in another process (set by
    #: subclasses; used by the sweep fabric to hand stores to workers).
    spec: str = ""

    def __init__(self, salt: Optional[str] = None):
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.skipped = 0       # puts refused (failed/aborted results)
        self.write_errors = 0  # puts that hit a media error (disk full, ...)

    # ------------------------------------------------------------- keying

    def key(self, config) -> str:
        from repro.experiments.cache import config_key

        return config_key(config, self.salt)

    # ----------------------------------------------------------- get/put

    def get(self, config) -> Optional[ExperimentResult]:
        """Return the stored result for ``config``, or None on a miss."""
        payload = self._read(self.key(config))
        if payload is None:
            self.misses += 1
            return None
        try:
            result = decode_result(payload)
        except DECODE_ERRORS:
            # A torn or stale-schema entry reads as a miss; the fresh run
            # will overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, config, result) -> bool:
        """Store a clean result; returns True iff it was durably written.

        Failed and aborted results are never stored — they are exactly the
        runs a retry might fix. A media error (disk full, read-only mount,
        database locked past its timeout) is *not* raised: the sweep keeps
        its in-memory result and every incident is logged and counted, so
        a dying disk degrades loudly instead of silently recomputing
        forever.
        """
        if not isinstance(result, ExperimentResult) or result.aborted:
            self.skipped += 1
            return False
        key = self.key(config)
        try:
            self._write(key, encode_result(result))
        except (OSError, sqlite3.Error) as exc:
            self.write_errors += 1
            logger.warning(
                "result-store write failed (%d so far) for key %s on %s: %s "
                "— result kept in memory; this config will recompute next "
                "sweep", self.write_errors, key[:12], self.describe(), exc)
            return False
        self.stores += 1
        return True

    # ------------------------------------------------- subclass interface

    def _read(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def _write(self, key: str, payload: bytes) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable location, for logs and reports."""
        return self.spec or type(self).__name__

    def close(self) -> None:
        """Release any handles; stores are reopenable from ``spec``."""

    # -------------------------------------------------------------- stats

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "skipped": self.skipped,
            "write_errors": self.write_errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.describe()} hits={self.hits} "
                f"misses={self.misses} stores={self.stores} "
                f"write_errors={self.write_errors}>")


class SqliteStore(ResultStore):
    """Single-file SQLite result store, safe for concurrent writers.

    WAL journaling lets readers proceed while a writer commits; a generous
    ``busy_timeout`` plus one-row autocommit ``INSERT OR REPLACE`` writes
    make multi-process hammering from a sweep's worker pool safe (each
    write is atomic; last writer of a key wins, and all writers of a key
    hold byte-identical payloads by construction — the key is the content
    hash of the config that produced them).

    Connections are opened lazily per ``(process, thread)`` and never
    shared across ``fork`` — workers reconstruct the store from its spec
    string.
    """

    def __init__(self, path: Union[str, Path], salt: Optional[str] = None,
                 timeout_s: float = 30.0):
        super().__init__(salt)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.spec = f"{SQLITE_PREFIX}{self.path}"
        self.timeout_s = timeout_s
        self._local = threading.local()
        self._pid = os.getpid()
        # Create the schema eagerly so a bad path fails at construction,
        # not mid-sweep.
        self._conn()

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS results (
        key        TEXT PRIMARY KEY,
        created_s  REAL NOT NULL,
        n_bytes    INTEGER NOT NULL,
        payload    BLOB NOT NULL
    )
    """

    def _conn(self) -> sqlite3.Connection:
        if os.getpid() != self._pid:
            # Forked child: drop inherited state; sqlite handles must not
            # cross fork.
            self._local = threading.local()
            self._pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=self.timeout_s)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(self._SCHEMA)
            conn.commit()
            self._local.conn = conn
        return conn

    def _read(self, key: str) -> Optional[bytes]:
        try:
            row = self._conn().execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            # A locked or corrupted database reads as a miss (same contract
            # as a torn directory entry); writes will surface the problem.
            return None
        return row[0] if row else None

    def _write(self, key: str, payload: bytes) -> None:
        conn = self._conn()
        with conn:  # one transaction per result; atomic under concurrency
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, created_s, n_bytes, payload) VALUES (?, ?, ?, ?)",
                (key, time.time(), len(payload), sqlite3.Binary(payload)),
            )

    def describe(self) -> str:
        return self.spec

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None and os.getpid() == self._pid:
            conn.close()
            self._local.conn = None

    # ------------------------------------------------------------- extras

    def __len__(self) -> int:
        return self._conn().execute(
            "SELECT COUNT(*) FROM results").fetchone()[0]

    def keys(self) -> Tuple[str, ...]:
        return tuple(k for (k,) in self._conn().execute(
            "SELECT key FROM results ORDER BY key"))


StoreSpec = Union[str, os.PathLike, ResultStore]


def open_store(spec: StoreSpec, salt: Optional[str] = None) -> ResultStore:
    """Open a result store from a user-facing spec (idempotent on stores).

    ``sqlite:PATH`` or a bare path ending in ``.db``/``.sqlite[3]`` opens
    :class:`SqliteStore`; any other path opens the directory-backed
    :class:`~repro.experiments.cache.ExperimentCache`.
    """
    if isinstance(spec, ResultStore):
        return spec
    from repro.experiments.cache import ExperimentCache

    text = os.fspath(spec)
    if text.startswith(SQLITE_PREFIX):
        return SqliteStore(text[len(SQLITE_PREFIX):], salt=salt)
    if text.endswith(SQLITE_SUFFIXES):
        return SqliteStore(text, salt=salt)
    return ExperimentCache(text, salt=salt)
