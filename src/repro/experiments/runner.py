"""Experiment runner: build, generate, simulate, measure.

``run_experiment(cfg)`` wires a Clos fabric with the scheme's queue
configuration, assigns upgraded racks, generates background (and optional
foreground incast) traffic, simulates to the horizon, and returns an
:class:`ExperimentResult` with per-flow records and switch counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.scenarios import SchemeSetup, make_scheme_setup
from repro.faults.counters import FaultCounters
from repro.metrics.fct import FctSummary, FlowRecord, summarize
from repro.metrics.queueing import QueueSampler
from repro.net.topology import Clos, build_clos
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.transports.base import FlowSpec, FlowStats
from repro.workloads.arrivals import PoissonTraffic, TrafficSpec
from repro.workloads.deployment import DeploymentPlan
from repro.workloads.distributions import workload_cdf
from repro.workloads.incast import IncastTraffic


@dataclass
class SwitchCounters:
    """Aggregated queue counters across all switch ports."""

    ecn_marked: int = 0
    dropped_selective: int = 0
    dropped_buffer: int = 0
    dropped_cap: int = 0
    enqueued: int = 0
    max_queue_bytes: int = 0
    max_red_bytes: int = 0


@dataclass
class ExperimentResult:
    config: ExperimentConfig
    records: List[FlowRecord]
    counters: SwitchCounters
    events_run: int
    wall_seconds: float
    routing_failures: int = 0
    q1_avg_kb: float = 0.0
    q1_p90_kb: float = 0.0
    q1_avg_red_kb: float = 0.0
    q1_p90_red_kb: float = 0.0
    #: everything the fault injector did to this run (zeros when clean)
    fault_counters: FaultCounters = field(default_factory=FaultCounters)
    #: True when a watchdog stopped the run early; records are then partial
    aborted: bool = False
    abort_reason: str = ""

    # ------------------------------------------------------------ queries

    def fct(self, small: bool = False, group: Optional[str] = None,
            role: Optional[str] = None) -> FctSummary:
        cutoff = self.config.scaled_cutoff_bytes() if small else None
        return summarize(self.records, small_cutoff_bytes=cutoff,
                         group=group, role=role)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def total_timeouts(self) -> int:
        return sum(r.timeouts for r in self.records)


def build_flow_specs(cfg: ExperimentConfig, clos: Clos,
                     rng: RngRegistry) -> Tuple[List[FlowSpec], DeploymentPlan]:
    """Generate all flow specs (background + foreground) with groups set."""
    deployment = 0.0 if cfg.scheme == SchemeName.DCTCP else cfg.deployment
    plan = DeploymentPlan(clos.racks(), deployment, rng.stream("deployment"))
    cdf = workload_cdf(cfg.workload)
    traffic = PoissonTraffic(
        clos.hosts, cdf, cfg.load, cfg.clos.rate_bps, cfg.sim_time_ns,
        rng.stream("arrivals"), size_scale=cfg.size_scale,
    )
    raw: List[TrafficSpec] = traffic.generate()
    if cfg.foreground_fraction > 0:
        bg_bytes_per_ns = cfg.load * len(clos.hosts) * cfg.clos.rate_bps / 8 / 1e9
        incast = IncastTraffic(
            clos.hosts, cfg.foreground_request_bytes, flows_per_sender=4,
            background_bytes_per_ns=bg_bytes_per_ns,
            foreground_fraction=cfg.foreground_fraction,
            sim_time_ns=cfg.sim_time_ns, rng=rng.stream("incast"),
            first_flow_id=len(raw) + 1,
        )
        raw.extend(incast.generate())
    specs = []
    for t in raw:
        group = plan.flow_group(t.src, t.dst)
        scheme_label = cfg.scheme.value if group == "new" else "dctcp"
        specs.append(FlowSpec(
            t.flow_id, t.src, t.dst, t.size_bytes, t.start_ns,
            scheme=scheme_label, group=group, role=t.role,
        ))
    return specs, plan


def run_experiment(cfg: ExperimentConfig,
                   sample_q1: bool = False) -> ExperimentResult:
    """Run one full simulation and collect results."""
    wall_start = time.monotonic()
    sim = Simulator()
    rng = RngRegistry(cfg.seed)
    setup = make_scheme_setup(cfg)
    clos = build_clos(sim, setup.queue_factory, cfg.clos)
    specs, _plan = build_flow_specs(cfg, clos, rng)

    fault_counters = FaultCounters()
    if cfg.faults is not None and not cfg.faults.empty:
        injector = cfg.faults.apply(sim, clos.topo, rng)
        fault_counters = injector.counters

    live: Dict[int, Tuple[FlowSpec, FlowStats]] = {}

    def on_complete(spec: FlowSpec, stats: FlowStats) -> None:
        # Nothing to do eagerly; records are built at the horizon from the
        # shared stats objects. The callback exists so callers can extend.
        pass

    def launch(spec: FlowSpec) -> None:
        stats = setup.launch(sim, spec, on_complete)
        live[spec.flow_id] = (spec, stats)

    for spec in specs:
        sim.at(spec.start_ns, launch, spec)

    samplers: List[QueueSampler] = []
    if sample_q1:
        for port in clos.tor_uplinks():
            samplers.append(QueueSampler(sim, port.queue(1),
                                         period_ns=100_000,
                                         until_ns=cfg.sim_time_ns))

    sim.run(until=cfg.sim_time_ns, max_events=cfg.max_events,
            wall_clock_s=cfg.max_wall_seconds)

    records = [FlowRecord.from_flow(s, st) for s, st in live.values()]
    counters = _collect_counters(clos)
    result = ExperimentResult(
        config=cfg,
        records=records,
        counters=counters,
        events_run=sim.events_run,
        wall_seconds=time.monotonic() - wall_start,
        routing_failures=sum(sw.routing_failures for sw in clos.topo.switches),
        fault_counters=fault_counters,
        aborted=sim.aborted,
        abort_reason=sim.abort_reason,
    )
    if samplers:
        import numpy as np

        all_bytes = [b for s in samplers for b in s.samples_bytes]
        all_red = [b for s in samplers for b in s.samples_red]
        if all_bytes:
            result.q1_avg_kb = float(np.mean(all_bytes)) / 1000
            result.q1_p90_kb = float(np.percentile(all_bytes, 90)) / 1000
        if all_red:
            result.q1_avg_red_kb = float(np.mean(all_red)) / 1000
            result.q1_p90_red_kb = float(np.percentile(all_red, 90)) / 1000
    return result


def _collect_counters(clos: Clos) -> SwitchCounters:
    agg = SwitchCounters()
    for sw in clos.topo.switches:
        for port in sw.ports.values():
            for q in port.scheduler.queues:
                st = q.stats
                agg.ecn_marked += st.ecn_marked
                agg.dropped_selective += st.dropped_selective
                agg.dropped_buffer += st.dropped_buffer
                agg.dropped_cap += st.dropped_cap
                agg.enqueued += st.enqueued
                agg.max_queue_bytes = max(agg.max_queue_bytes, st.max_bytes)
                agg.max_red_bytes = max(agg.max_red_bytes, st.max_red_bytes)
    return agg
