"""Experiment runner: build, generate, simulate, measure.

``run_experiment(cfg)`` wires a Clos fabric with the scheme's queue
configuration, assigns upgraded racks, generates background (and optional
foreground incast) traffic, simulates to the horizon, and returns an
:class:`ExperimentResult` with per-flow records and switch counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.audit.invariants import AuditReport, InvariantAuditor
from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.scenarios import (
    SchemeSetup,
    build_topology,
    make_scheme_setup,
)
from repro.faults.counters import FaultCounters
from repro.metrics.fct import FctSummary, FlowRecord, summarize
from repro.metrics.telemetry import (
    TelemetryConfig,
    TelemetrySampler,
    TelemetrySeries,
)
from repro.net.topology import Clos
from repro.sim.engine import make_simulator
from repro.sim.rng import RngRegistry
from repro.transports.base import FlowSpec, FlowStats
from repro.workloads.arrivals import (
    GroupedPoissonTraffic,
    PoissonTraffic,
    TrafficSpec,
)
from repro.workloads.deployment import DeploymentPlan
from repro.workloads.distributions import workload_cdf
from repro.workloads.gen import TrafficSource, build_sources, merge_sources
from repro.workloads.incast import IncastTraffic


@dataclass
class SwitchCounters:
    """Aggregated queue counters across all switch ports."""

    ecn_marked: int = 0
    dropped_selective: int = 0
    dropped_buffer: int = 0
    dropped_cap: int = 0
    enqueued: int = 0
    max_queue_bytes: int = 0
    max_red_bytes: int = 0


@dataclass
class ExperimentResult:
    config: ExperimentConfig
    records: List[FlowRecord]
    counters: SwitchCounters
    events_run: int
    wall_seconds: float
    routing_failures: int = 0
    q1_avg_kb: float = 0.0
    q1_p90_kb: float = 0.0
    q1_avg_red_kb: float = 0.0
    q1_p90_red_kb: float = 0.0
    #: everything the fault injector did to this run (zeros when clean)
    fault_counters: FaultCounters = field(default_factory=FaultCounters)
    #: True when a watchdog stopped the run early; records are then partial
    aborted: bool = False
    abort_reason: str = ""
    #: time-series sampled during the run (None unless cfg.telemetry is set)
    telemetry: Optional[TelemetrySeries] = None
    #: invariant/digest audit outcome (None unless cfg.audit is enabled)
    audit: Optional[AuditReport] = None

    # ------------------------------------------------------------ queries

    def fct(self, small: bool = False, group: Optional[str] = None,
            role: Optional[str] = None) -> FctSummary:
        cutoff = self.config.scaled_cutoff_bytes() if small else None
        return summarize(self.records, small_cutoff_bytes=cutoff,
                         group=group, role=role)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def total_timeouts(self) -> int:
        return sum(r.timeouts for r in self.records)


def build_flow_specs(cfg: ExperimentConfig, clos: Clos,
                     rng: RngRegistry) -> Tuple[List[FlowSpec], DeploymentPlan]:
    """Generate all flow specs (background + foreground) with groups set."""
    deployment = 0.0 if cfg.scheme == SchemeName.DCTCP else cfg.deployment
    plan = DeploymentPlan(clos.racks(), deployment, rng.stream("deployment"))
    cdf = workload_cdf(cfg.workload)
    rate_bps = cfg.reference_rate_bps
    groups = _locality_groups(cfg, clos)
    if groups is not None:
        traffic: PoissonTraffic = GroupedPoissonTraffic(
            groups, cdf, cfg.load, rate_bps, cfg.sim_time_ns,
            rng.stream("arrivals"), intra_fraction=cfg.locality_intra,
            size_scale=cfg.size_scale,
        )
    else:
        traffic = PoissonTraffic(
            clos.hosts, cdf, cfg.load, rate_bps, cfg.sim_time_ns,
            rng.stream("arrivals"), size_scale=cfg.size_scale,
        )
    raw: List[TrafficSpec] = traffic.generate()
    if cfg.foreground_fraction > 0:
        bg_bytes_per_ns = cfg.load * len(clos.hosts) * rate_bps / 8 / 1e9
        incast = IncastTraffic(
            clos.hosts, cfg.foreground_request_bytes, flows_per_sender=4,
            background_bytes_per_ns=bg_bytes_per_ns,
            foreground_fraction=cfg.foreground_fraction,
            sim_time_ns=cfg.sim_time_ns, rng=rng.stream("incast"),
            first_flow_id=len(raw) + 1,
        )
        raw.extend(incast.generate())
    specs = []
    for t in raw:
        group = plan.flow_group(t.src, t.dst)
        scheme_label = cfg.scheme.value if group == "new" else "dctcp"
        specs.append(FlowSpec(
            t.flow_id, t.src, t.dst, t.size_bytes, t.start_ns,
            scheme=scheme_label, group=group, role=t.role,
        ))
    return specs, plan


def _locality_groups(cfg: ExperimentConfig, clos) -> Optional[List[List]]:
    """Host groups for the locality matrix, or None for uniform traffic."""
    if cfg.locality_intra is None:
        return None
    return _fabric_groups(clos)


def _fabric_groups(clos) -> List[List]:
    """The fabric's natural host partition.

    Declarative fabrics group by region (falling back to racks when the
    spec has no regions); the hand-built topologies group by rack.
    """
    groups: List[List] = []
    if hasattr(clos, "hosts_by_region"):
        by_region = clos.hosts_by_region()
        groups = [members for _, members in sorted(by_region.items())]
    if len(groups) < 2:
        groups = clos.racks()
    return groups


def build_traffic_sources(cfg: ExperimentConfig,
                          clos: Clos) -> List[TrafficSource]:
    """Instantiate ``cfg.traffic`` against this run's fabric."""
    if cfg.traffic is None:
        raise ValueError("config has no traffic block")
    return build_sources(
        cfg.traffic, clos.hosts, _fabric_groups(clos),
        load=cfg.load, rate_bps=cfg.reference_rate_bps,
        sim_time_ns=cfg.sim_time_ns, size_scale=cfg.size_scale,
        default_workload=cfg.workload)


def run_experiment(cfg: ExperimentConfig,
                   sample_q1: bool = False) -> ExperimentResult:
    """Run one full simulation and collect results."""
    wall_start = time.monotonic()
    # Engine backend resolves from REPRO_SIM_ENGINE so whole process trees
    # (including run_many workers) can be flipped for A/B digest audits.
    sim = make_simulator()
    rng = RngRegistry(cfg.seed)
    setup = make_scheme_setup(cfg)
    clos = build_topology(sim, setup.queue_factory, cfg)
    specs = None
    if cfg.traffic is None:
        specs, _plan = build_flow_specs(cfg, clos, rng)

    fault_counters = FaultCounters()
    if cfg.faults is not None and not cfg.faults.empty:
        injector = cfg.faults.apply(sim, clos.topo, rng)
        fault_counters = injector.counters

    live: Dict[int, Tuple[FlowSpec, FlowStats]] = {}
    # Dependent flows (coflow replies) keyed by parent id, released on the
    # parent's completion callback; always empty on the legacy path.
    pending_children: Dict[int, Tuple[TrafficSpec, ...]] = {}

    def on_complete(spec: FlowSpec, stats: FlowStats) -> None:
        # Records are built at the horizon from the shared stats objects;
        # the eager work here is releasing this flow's dependent children
        # (their start_ns is a relative offset from completion time).
        children = pending_children.pop(spec.flow_id, None)
        if children:
            for child in children:
                arrive(child, sim.now + child.start_ns)

    def launch(spec: FlowSpec) -> None:
        stats = setup.launch(sim, spec, on_complete)
        live[spec.flow_id] = (spec, stats)

    if specs is not None:
        # Legacy path: the materialized flow list is scheduled up front.
        for spec in specs:
            sim.at(spec.start_ns, launch, spec)
    else:
        # Streaming path: pull one spec at a time from the merged source
        # stream, keeping exactly one pending arrival event in the engine —
        # constant memory regardless of how many flows the horizon holds.
        deployment = 0.0 if cfg.scheme == SchemeName.DCTCP else cfg.deployment
        plan = DeploymentPlan(clos.racks(), deployment,
                              rng.stream("deployment"))
        stream = merge_sources(build_traffic_sources(cfg, clos), rng)

        def arrive(t: TrafficSpec, start_ns: int) -> None:
            group = plan.flow_group(t.src, t.dst)
            scheme_label = cfg.scheme.value if group == "new" else "dctcp"
            if t.children:
                pending_children[t.flow_id] = t.children
            launch(FlowSpec(t.flow_id, t.src, t.dst, t.size_bytes, start_ns,
                            scheme=scheme_label, group=group, role=t.role))

        def pump() -> None:
            t = next(stream, None)
            if t is not None and t.start_ns < cfg.sim_time_ns:
                sim.at(t.start_ns, on_arrival, t)

        def on_arrival(t: TrafficSpec) -> None:
            arrive(t, t.start_ns)
            pump()

        pump()

    sampler = _attach_telemetry(sim, cfg, clos, live, sample_q1)
    auditor = _attach_audit(sim, cfg, clos, live)

    sim.run(until=cfg.sim_time_ns, max_events=cfg.max_events,
            wall_clock_s=cfg.max_wall_seconds)

    records = [FlowRecord.from_flow(s, st) for s, st in live.values()]
    counters = _collect_counters(clos)
    result = ExperimentResult(
        config=cfg,
        records=records,
        counters=counters,
        events_run=sim.events_run,
        wall_seconds=time.monotonic() - wall_start,
        routing_failures=sum(sw.routing_failures for sw in clos.topo.switches),
        fault_counters=fault_counters,
        aborted=sim.aborted,
        abort_reason=sim.abort_reason,
    )
    if auditor is not None:
        result.audit = auditor.finalize()
    if sampler is not None:
        series = sampler.freeze()
        if cfg.telemetry is not None:
            # Only an explicit request ships the series back to the caller;
            # the implicit sample_q1 sampler exists for the scalars below.
            result.telemetry = series
        if sample_q1:
            _fill_q1_stats(result, series, clos)
    return result


def _attach_audit(sim: Simulator, cfg: ExperimentConfig, clos: Clos,
                  live) -> Optional[InvariantAuditor]:
    """Build and arm the run's invariant auditor (or None when off).

    Runs after fault splicing (so digest taps wrap the spliced links) and
    before traffic starts (the packet-pool baseline is snapshotted at
    construction). When ``cfg.audit`` is None or disabled, nothing is
    constructed at all — the same zero-cost discipline as telemetry.
    """
    acfg = cfg.audit
    if acfg is None or not acfg.enabled:
        return None
    auditor = InvariantAuditor(sim, clos.topo, live, config=acfg)
    auditor.install(cfg.sim_time_ns)
    return auditor


def _attach_telemetry(sim: Simulator, cfg: ExperimentConfig, clos: Clos,
                      live, sample_q1: bool) -> Optional[TelemetrySampler]:
    """Build and start the run's telemetry sampler (or None when off).

    ``sample_q1`` alone synthesizes a minimal port-only config so the
    legacy q1 occupancy scalars keep working without telemetry enabled.
    """
    tcfg = cfg.telemetry
    if tcfg is not None and not tcfg.enabled:
        tcfg = None
    if tcfg is None:
        if not sample_q1:
            return None
        # Bound generously: never overwrite within the horizon, so the q1
        # percentiles see every sample exactly like the old QueueSampler.
        tcfg = TelemetryConfig(
            max_samples=cfg.sim_time_ns // 100_000 + 8,
            flows="none", links=False, pool=False, credit=False,
        )
    ports_mode = tcfg.ports
    if sample_q1 and ports_mode == "none":
        ports_mode = "tor_uplinks"
    sampler = TelemetrySampler(sim, interval_ns=tcfg.interval_ns,
                               max_samples=tcfg.max_samples,
                               until_ns=cfg.sim_time_ns)
    if ports_mode == "all":
        watched = [p for sw in clos.topo.switches for p in sw.ports.values()]
    elif ports_mode == "tor_uplinks":
        watched = list(clos.tor_uplinks())
    else:
        watched = []
    for port in watched:
        sampler.watch_port(port)
        if tcfg.links:
            sampler.watch_link(port)
    if tcfg.pool:
        sampler.watch_pool()
    if tcfg.flows != "none" or tcfg.credit:
        sampler.watch_flows(live.values, mode=tcfg.flows,
                            max_series=tcfg.max_flow_series,
                            credit=tcfg.credit)
    sampler.start()
    return sampler


def _fill_q1_stats(result: ExperimentResult, series: TelemetrySeries,
                   clos: Clos) -> None:
    """Legacy q1 occupancy scalars, computed from the sampled series."""
    import numpy as np

    all_bytes: List[float] = []
    all_red: List[float] = []
    for port in clos.tor_uplinks():
        depth = f"port.{port.name}.q1.depth_bytes"
        red = f"port.{port.name}.q1.red_bytes"
        if depth in series:
            vals = series.values(depth)
            all_bytes.extend(vals)
            # A queue without selective dropping has no red series; the old
            # sampler recorded constant zeros for it — reproduce that.
            all_red.extend(series.values(red) if red in series
                           else [0.0] * len(vals))
    if all_bytes:
        result.q1_avg_kb = float(np.mean(all_bytes)) / 1000
        result.q1_p90_kb = float(np.percentile(all_bytes, 90)) / 1000
    if all_red:
        result.q1_avg_red_kb = float(np.mean(all_red)) / 1000
        result.q1_p90_red_kb = float(np.percentile(all_red, 90)) / 1000


def _collect_counters(clos: Clos) -> SwitchCounters:
    agg = SwitchCounters()
    for sw in clos.topo.switches:
        for port in sw.ports.values():
            for q in port.scheduler.queues:
                st = q.stats
                agg.ecn_marked += st.ecn_marked
                agg.dropped_selective += st.dropped_selective
                agg.dropped_buffer += st.dropped_buffer
                agg.dropped_cap += st.dropped_cap
                agg.enqueued += st.enqueued
                agg.max_queue_bytes = max(agg.max_queue_bytes, st.max_bytes)
                agg.max_red_bytes = max(agg.max_red_bytes, st.max_red_bytes)
    return agg
