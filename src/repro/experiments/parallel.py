"""Multi-process experiment execution.

The paper's artifact notes that "as each simulation runs in a single
thread, the given script automatically leverages multiple CPUs to
parallelize simulations" — same here: configurations are embarrassingly
parallel, and both :class:`ExperimentConfig` and :class:`ExperimentResult`
are plain picklable data, so a process pool maps over them directly.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment


def _worker(cfg: ExperimentConfig) -> ExperimentResult:
    result = run_experiment(cfg)
    # FlowSpec host references are not needed downstream and would drag the
    # whole topology through pickle; records are already plain data.
    return result


def run_many(configs: Sequence[ExperimentConfig],
             processes: Optional[int] = None) -> List[ExperimentResult]:
    """Run experiments, one process per CPU (serial when only one CPU or a
    single config — avoids pool overhead and keeps tracebacks simple)."""
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(configs))
    if processes <= 1:
        return [run_experiment(cfg) for cfg in configs]
    with multiprocessing.Pool(processes=processes) as pool:
        return pool.map(_worker, list(configs))
