"""Multi-process experiment execution, resilient to per-config failures.

The paper's artifact notes that "as each simulation runs in a single
thread, the given script automatically leverages multiple CPUs to
parallelize simulations" — same here: configurations are embarrassingly
parallel, and both :class:`ExperimentConfig` and :class:`ExperimentResult`
are plain picklable data, so a process pool maps over them directly.

Execution model (PR 3):

* Work streams through ``imap_unordered`` with explicit chunking — the
  parent consumes each result the moment its worker finishes instead of
  blocking on a full ``map``, so one slow config cannot stall progress
  reporting or cache writes for the rest of the sweep.
* Each worker keys its result by config index; the parent slots results
  back into a ``len(configs)``-sized list, so callers always see exactly
  one entry per config, in config order, regardless of completion order.
* Workers pack flow records into typed columns
  (:class:`repro.metrics.fct.PackedFlowRecords`) before pickling — tens of
  thousands of dataclasses become a handful of contiguous buffers on the
  worker→parent hop.
* An optional on-disk :class:`repro.experiments.cache.ExperimentCache`
  short-circuits configs whose results are already stored; fresh clean
  results are written back as they arrive.

A sweep of N configs must not die because one config is broken or one
worker leaks: exceptions are captured per config into a
:class:`FailedResult` (with the full traceback and the offending config
echoed back), and pool workers are recycled every few tasks so a leaking
simulation cannot poison a long sweep.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.experiments.cache import ExperimentCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.metrics.fct import PackedFlowRecords

logger = logging.getLogger(__name__)

#: Pool workers are replaced after this many simulations, bounding the
#: damage a slow memory leak in any one config can do to a long sweep.
DEFAULT_MAX_TASKS_PER_CHILD = 16

#: Progress is logged at least this often (seconds) while results stream in.
PROGRESS_LOG_PERIOD_S = 10.0


@dataclass
class FailedResult:
    """A config that raised instead of producing an ExperimentResult.

    Sweeps receive one of these *in position* (the result list always has
    exactly ``len(configs)`` entries) so downstream tables can report the
    hole instead of the whole run crashing.
    """

    config: ExperimentConfig
    error: str       # repr of the exception
    traceback: str   # full formatted traceback from the worker
    retried: bool = False

    @property
    def failed(self) -> bool:
        return True


def _worker(cfg: ExperimentConfig) -> Union[ExperimentResult, FailedResult]:
    try:
        return run_experiment(cfg)
    except Exception as exc:  # noqa: BLE001 - the whole point is containment
        return FailedResult(config=cfg, error=repr(exc),
                            traceback=traceback.format_exc())


def _indexed_worker(item: Tuple[int, ExperimentConfig]):
    """Pool task: run one config, return ``(index, packed result)``.

    The index key makes completion order irrelevant; packing shrinks the
    result's pickle before it crosses the process boundary.
    """
    index, cfg = item
    result = _worker(cfg)
    if isinstance(result, ExperimentResult):
        packed = PackedFlowRecords.pack(result.records)
        # ``replace`` keeps every other field — including ``telemetry``,
        # whose TelemetrySeries is already packed typed-array columns and
        # needs no special handling across the process boundary.
        return index, replace(result, records=[]), packed
    return index, result, None


def _unpack(result, packed) -> Union[ExperimentResult, FailedResult]:
    if packed is None:
        return result
    return replace(result, records=packed.unpack())


def default_chunksize(pending: int, processes: int) -> int:
    """Chunk so each worker sees ~4 batches (amortizes IPC without letting
    one chunk of slow configs serialize the tail), capped at 8."""
    return max(1, min(8, pending // (processes * 4) or 1))


def run_many(
    configs: Sequence[ExperimentConfig],
    processes: Optional[int] = None,
    retry_failed: bool = False,
    max_tasks_per_child: Optional[int] = DEFAULT_MAX_TASKS_PER_CHILD,
    cache: Optional[Union[ExperimentCache, str, os.PathLike]] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[Union[ExperimentResult, FailedResult]]:
    """Run experiments, one process per CPU (serial when only one CPU or a
    single config — avoids pool overhead and keeps tracebacks simple).

    Always returns ``len(configs)`` entries in config order; a config that
    raises yields a :class:`FailedResult` instead of crashing the pool.
    ``retry_failed`` re-runs each failed config exactly once (transient
    failures — OOM kills, flaky I/O — often clear on retry; deterministic
    bugs fail again and keep their FailedResult, marked ``retried``).

    ``cache`` (an :class:`ExperimentCache` or a directory path) serves
    already-stored configs without simulating them and stores fresh clean
    results. ``chunksize`` overrides the ``imap_unordered`` batching.
    ``progress(done, total)`` is called after every completed config, cache
    hits included.
    """
    total = len(configs)
    results: List[Optional[Union[ExperimentResult, FailedResult]]] = (
        [None] * total
    )
    if cache is not None and not isinstance(cache, ExperimentCache):
        cache = ExperimentCache(cache)

    done = 0
    last_log = time.monotonic()

    def note_done(index: int) -> None:
        nonlocal done, last_log
        done += 1
        if progress is not None:
            progress(done, total)
        now = time.monotonic()
        if done == total or now - last_log >= PROGRESS_LOG_PERIOD_S:
            last_log = now
            failed = sum(1 for r in results if isinstance(r, FailedResult))
            logger.info("sweep progress: %d/%d configs done (%d failed)",
                        done, total, failed)

    # Cache pass: anything already stored never reaches the pool.
    pending: List[Tuple[int, ExperimentConfig]] = []
    for i, cfg in enumerate(configs):
        hit = cache.get(cfg) if cache is not None else None
        if hit is not None:
            results[i] = hit
            note_done(i)
        else:
            pending.append((i, cfg))
    if cache is not None and total and not pending:
        logger.info("sweep fully served from cache (%d configs)", total)

    if pending:
        if processes is None:
            processes = os.cpu_count() or 1
        processes = min(processes, len(pending))
        if processes <= 1:
            for i, cfg in pending:
                result = _worker(cfg)
                results[i] = result
                if cache is not None:
                    cache.put(cfg, result)
                note_done(i)
        else:
            if chunksize is None:
                chunksize = default_chunksize(len(pending), processes)
            with multiprocessing.Pool(
                processes=processes, maxtasksperchild=max_tasks_per_child
            ) as pool:
                for index, stripped, packed in pool.imap_unordered(
                    _indexed_worker, pending, chunksize=chunksize
                ):
                    result = _unpack(stripped, packed)
                    results[index] = result
                    if cache is not None:
                        cache.put(configs[index], result)
                    note_done(index)

    if retry_failed:
        for i, result in enumerate(results):
            if isinstance(result, FailedResult):
                second = _worker(result.config)
                if isinstance(second, FailedResult):
                    second.retried = True
                elif cache is not None:
                    cache.put(result.config, second)
                results[i] = second

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
