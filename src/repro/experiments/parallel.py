"""Multi-process experiment execution, resilient to per-config failures.

The paper's artifact notes that "as each simulation runs in a single
thread, the given script automatically leverages multiple CPUs to
parallelize simulations" — same here: configurations are embarrassingly
parallel, and both :class:`ExperimentConfig` and :class:`ExperimentResult`
are plain picklable data, so a process pool maps over them directly.

Execution model (PR 3):

* Work streams through ``imap_unordered`` with explicit chunking — the
  parent consumes each result the moment its worker finishes instead of
  blocking on a full ``map``, so one slow config cannot stall progress
  reporting or cache writes for the rest of the sweep.
* Each worker keys its result by config index; the parent slots results
  back into a ``len(configs)``-sized list, so callers always see exactly
  one entry per config, in config order, regardless of completion order.
* Workers pack flow records into typed columns
  (:class:`repro.metrics.fct.PackedFlowRecords`) before pickling — tens of
  thousands of dataclasses become a handful of contiguous buffers on the
  worker→parent hop.
* An optional on-disk :class:`repro.experiments.cache.ExperimentCache`
  short-circuits configs whose results are already stored; fresh clean
  results are written back as they arrive.

A sweep of N configs must not die because one config is broken or one
worker leaks: exceptions are captured per config into a
:class:`FailedResult` (with the full traceback and the offending config
echoed back), and pool workers are recycled every few tasks so a leaking
simulation cannot poison a long sweep.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import random
import time
import traceback
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.store import ResultStore, open_store
from repro.metrics.fct import PackedFlowRecords

logger = logging.getLogger(__name__)

#: Pool workers are replaced after this many simulations, bounding the
#: damage a slow memory leak in any one config can do to a long sweep.
DEFAULT_MAX_TASKS_PER_CHILD = 16

#: Progress is logged at least this often (seconds) while results stream in.
PROGRESS_LOG_PERIOD_S = 10.0

#: Jitter fraction for retry backoff: each delay is stretched by up to
#: this much, seeded, so retrying cells never re-synchronize.
RETRY_JITTER = 0.5


@dataclass
class FailedResult:
    """A config that raised instead of producing an ExperimentResult.

    Sweeps receive one of these *in position* (the result list always has
    exactly ``len(configs)`` entries) so downstream tables can report the
    hole instead of the whole run crashing. The stamps identify *where*
    and *how long* the attempt ran: an OOM-killed or wedged worker shows
    a foreign pid and a long wall clock, a deterministic config bug fails
    fast in every attempt.
    """

    config: ExperimentConfig
    error: str       # repr of the exception
    traceback: str   # full formatted traceback from the worker
    retried: bool = False
    #: total executions attempted for this config (1 = never retried)
    attempts: int = 1
    #: pid of the worker process the *last* attempt ran in
    worker_pid: int = 0
    #: wall-clock seconds the last attempt ran before failing
    wall_seconds: float = 0.0

    @property
    def failed(self) -> bool:
        return True


def retry_delay_s(attempt: int, base_s: float, seed: int, token) -> float:
    """Deterministic exponential backoff with jitter for retry ``attempt``
    (1-based) of the cell identified by ``token``.

    ``base_s * 2**(attempt-1)``, stretched by up to :data:`RETRY_JITTER`
    from an rng seeded on ``(seed, token, attempt)`` — reproducible across
    runs and hosts, yet distinct per cell so a burst of failures does not
    retry in lockstep.
    """
    if base_s <= 0:
        return 0.0
    rng = random.Random(f"{seed}:{token}:{attempt}")
    return base_s * (2 ** (attempt - 1)) * (1.0 + RETRY_JITTER * rng.random())


def _worker(cfg: ExperimentConfig) -> Union[ExperimentResult, FailedResult]:
    start = time.monotonic()
    try:
        return run_experiment(cfg)
    except Exception as exc:  # noqa: BLE001 - the whole point is containment
        return FailedResult(config=cfg, error=repr(exc),
                            traceback=traceback.format_exc(),
                            worker_pid=os.getpid(),
                            wall_seconds=time.monotonic() - start)


def _indexed_worker(item: Tuple[int, ExperimentConfig]):
    """Pool task: run one config, return ``(index, packed result)``.

    The index key makes completion order irrelevant; packing shrinks the
    result's pickle before it crosses the process boundary.
    """
    index, cfg = item
    result = _worker(cfg)
    if isinstance(result, ExperimentResult):
        packed = PackedFlowRecords.pack(result.records)
        # ``replace`` keeps every other field — including ``telemetry``,
        # whose TelemetrySeries is already packed typed-array columns and
        # needs no special handling across the process boundary.
        return index, replace(result, records=[]), packed
    return index, result, None


def _unpack(result, packed) -> Union[ExperimentResult, FailedResult]:
    if packed is None:
        return result
    return replace(result, records=packed.unpack())


def default_chunksize(pending: int, processes: int) -> int:
    """Chunk so each worker sees ~4 batches (amortizes IPC without letting
    one chunk of slow configs serialize the tail), capped at 8."""
    return max(1, min(8, pending // (processes * 4) or 1))


def run_many(
    configs: Sequence[ExperimentConfig],
    processes: Optional[int] = None,
    retry_failed: bool = False,
    max_tasks_per_child: Optional[int] = DEFAULT_MAX_TASKS_PER_CHILD,
    cache: Optional[Union[ResultStore, str, os.PathLike]] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    max_retries: Optional[int] = None,
    retry_base_s: float = 0.0,
    retry_seed: int = 0,
    coordinator=None,
) -> List[Union[ExperimentResult, FailedResult]]:
    """Run experiments, one process per CPU (serial when only one CPU or a
    single config — avoids pool overhead and keeps tracebacks simple).

    Always returns ``len(configs)`` entries in config order; a config that
    raises yields a :class:`FailedResult` instead of crashing the pool.

    ``max_retries`` re-runs each failed config up to that many extra times
    with seeded exponential backoff (``retry_base_s`` doubling per attempt,
    plus deterministic jitter from ``retry_seed`` — zero base means
    immediate retries). Transient failures — OOM kills, flaky I/O — often
    clear on retry; deterministic bugs fail every attempt and keep their
    :class:`FailedResult`, with ``attempts`` recording the total tries.
    ``retry_failed=True`` is the legacy spelling of
    ``max_retries=1, retry_base_s=0``.

    ``cache`` — a :class:`~repro.experiments.store.ResultStore`, a
    directory path, or a ``sqlite:`` spec (see
    :func:`repro.experiments.store.open_store`) — serves already-stored
    configs without simulating them and stores fresh clean results.
    ``chunksize`` overrides the ``imap_unordered`` batching.
    ``progress(done, total)`` is called after every completed config, cache
    hits included.

    ``coordinator`` — a :class:`repro.experiments.fabric.SweepFabric` —
    delegates the whole sweep to the durable fabric (persistent work
    queue, leases, crash-resume; DESIGN.md §6g). The return contract is
    unchanged; every other execution knob is then read from the fabric's
    own config.
    """
    if coordinator is not None:
        return coordinator.run(configs, processes=processes,
                               progress=progress)
    total = len(configs)
    results: List[Optional[Union[ExperimentResult, FailedResult]]] = (
        [None] * total
    )
    if cache is not None:
        cache = open_store(cache)

    done = 0
    last_log = time.monotonic()

    def note_done(index: int) -> None:
        nonlocal done, last_log
        done += 1
        if progress is not None:
            progress(done, total)
        now = time.monotonic()
        if done == total or now - last_log >= PROGRESS_LOG_PERIOD_S:
            last_log = now
            failed = sum(1 for r in results if isinstance(r, FailedResult))
            logger.info("sweep progress: %d/%d configs done (%d failed)",
                        done, total, failed)

    # Cache pass: anything already stored never reaches the pool.
    pending: List[Tuple[int, ExperimentConfig]] = []
    for i, cfg in enumerate(configs):
        hit = cache.get(cfg) if cache is not None else None
        if hit is not None:
            results[i] = hit
            note_done(i)
        else:
            pending.append((i, cfg))
    if cache is not None and total and not pending:
        logger.info("sweep fully served from cache (%d configs)", total)

    if pending:
        if processes is None:
            processes = os.cpu_count() or 1
        processes = min(processes, len(pending))
        if processes <= 1:
            for i, cfg in pending:
                result = _worker(cfg)
                results[i] = result
                if cache is not None:
                    cache.put(cfg, result)
                note_done(i)
        else:
            if chunksize is None:
                chunksize = default_chunksize(len(pending), processes)
            with multiprocessing.Pool(
                processes=processes, maxtasksperchild=max_tasks_per_child
            ) as pool:
                for index, stripped, packed in pool.imap_unordered(
                    _indexed_worker, pending, chunksize=chunksize
                ):
                    result = _unpack(stripped, packed)
                    results[index] = result
                    if cache is not None:
                        cache.put(configs[index], result)
                    note_done(index)

    if retry_failed and max_retries is None:
        max_retries = 1
    for rnd in range(1, (max_retries or 0) + 1):
        failed = [i for i, r in enumerate(results)
                  if isinstance(r, FailedResult)]
        if not failed:
            break
        logger.info("retry round %d/%d: %d failed config(s)",
                    rnd, max_retries, len(failed))
        for i in failed:
            delay = retry_delay_s(rnd, retry_base_s, retry_seed, i)
            if delay > 0:
                time.sleep(delay)
            fresh = _worker(configs[i])
            if isinstance(fresh, FailedResult):
                fresh.retried = True
                fresh.attempts = rnd + 1
            elif cache is not None:
                cache.put(configs[i], fresh)
            results[i] = fresh

    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
