"""Multi-process experiment execution, resilient to per-config failures.

The paper's artifact notes that "as each simulation runs in a single
thread, the given script automatically leverages multiple CPUs to
parallelize simulations" — same here: configurations are embarrassingly
parallel, and both :class:`ExperimentConfig` and :class:`ExperimentResult`
are plain picklable data, so a process pool maps over them directly.

A sweep of N configs must not die because one config is broken or one
worker leaks: exceptions are captured per config into a
:class:`FailedResult` (with the full traceback and the offending config
echoed back), and pool workers are recycled every few tasks so a leaking
simulation cannot poison a long sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment

#: Pool workers are replaced after this many simulations, bounding the
#: damage a slow memory leak in any one config can do to a long sweep.
DEFAULT_MAX_TASKS_PER_CHILD = 16


@dataclass
class FailedResult:
    """A config that raised instead of producing an ExperimentResult.

    Sweeps receive one of these *in position* (the result list always has
    exactly ``len(configs)`` entries) so downstream tables can report the
    hole instead of the whole run crashing.
    """

    config: ExperimentConfig
    error: str       # repr of the exception
    traceback: str   # full formatted traceback from the worker
    retried: bool = False

    @property
    def failed(self) -> bool:
        return True


def _worker(cfg: ExperimentConfig) -> Union[ExperimentResult, FailedResult]:
    # Results are already plain data (records are FlowRecords, the config a
    # plain dataclass), so nothing needs stripping before pickling back.
    try:
        return run_experiment(cfg)
    except Exception as exc:  # noqa: BLE001 - the whole point is containment
        return FailedResult(config=cfg, error=repr(exc),
                            traceback=traceback.format_exc())


def run_many(
    configs: Sequence[ExperimentConfig],
    processes: Optional[int] = None,
    retry_failed: bool = False,
    max_tasks_per_child: Optional[int] = DEFAULT_MAX_TASKS_PER_CHILD,
) -> List[Union[ExperimentResult, FailedResult]]:
    """Run experiments, one process per CPU (serial when only one CPU or a
    single config — avoids pool overhead and keeps tracebacks simple).

    Always returns ``len(configs)`` entries in config order; a config that
    raises yields a :class:`FailedResult` instead of crashing the pool.
    ``retry_failed`` re-runs each failed config exactly once (transient
    failures — OOM kills, flaky I/O — often clear on retry; deterministic
    bugs fail again and keep their FailedResult, marked ``retried``).
    """
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(configs))
    if processes <= 1:
        results = [_worker(cfg) for cfg in configs]
    else:
        with multiprocessing.Pool(
            processes=processes, maxtasksperchild=max_tasks_per_child
        ) as pool:
            results = pool.map(_worker, list(configs))
    if retry_failed:
        for i, result in enumerate(results):
            if isinstance(result, FailedResult):
                second = _worker(result.config)
                if isinstance(second, FailedResult):
                    second.retried = True
                results[i] = second
    return results
