"""Scheme wiring: switch queue configurations and endpoint factories.

Every deployment scheme in §6.2 is a pair of decisions:

1. **How switch ports are configured** (``queue_factory``): which queues
   exist, their priorities/weights, credit rate limits, ECN and selective-
   dropping thresholds, and the DSCP -> queue classifier.
2. **Which transport a "new" flow uses** (``launch``): legacy flows are
   always DCTCP; upgraded flows are ExpressPass (naïve/oWF), Layering, or
   FlexPass (and its §4.3 variants).

:class:`SchemeSetup` bundles both so topology builders and traffic
generators stay scheme-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.core.variants import (
    Rc3SplitReceiver,
    Rc3SplitSender,
    alt_queue_params,
)
from repro.experiments.config import ExperimentConfig, QueueSettings, SchemeName
from repro.net.packet import Dscp
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.ratelimit import TokenBucket
from repro.net.scheduler import QueueSchedule
from repro.net.topology import ClosSpec
from repro.sim.units import KB, MILLIS
from repro.transports.base import CompletionCallback, FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA, FeedbackParams
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender
from repro.transports.expresspass import (
    ExpressPassParams,
    ExpressPassReceiver,
    ExpressPassSender,
)
from repro.transports.homa import HomaParams, HomaReceiver, HomaSender
from repro.transports.layering import LayeringParams, LayeringReceiver, LayeringSender

#: Every DSCP the classifier must map somewhere.
ALL_DSCPS: List[int] = [d.value for d in Dscp] + [
    Dscp.HOMA_BASE + p for p in range(8)
]

def _scaled(anchor_at_40g: int, rate_bps: int) -> int:
    """Rate-proportional threshold: equal queueing *delay* to the paper's
    40 Gbps configuration. Floored at ~4 MTUs so marking still works on
    slow links."""
    return max(4 * 1584, int(anchor_at_40g * rate_bps / 40e9))


def _q1_ecn_bytes(qs: QueueSettings, rate_bps: int) -> int:
    if qs.q1_ecn_bytes is not None:
        return qs.q1_ecn_bytes
    return _scaled(QueueSettings.Q1_ECN_AT_40G, rate_bps)


def _q1_seldrop_bytes(qs: QueueSettings, rate_bps: int) -> int:
    if qs.q1_seldrop_bytes is not None:
        return qs.q1_seldrop_bytes
    return _scaled(QueueSettings.Q1_SELDROP_AT_40G, rate_bps)


def _q2_ecn_bytes(qs: QueueSettings, rate_bps: int) -> int:
    if qs.q2_ecn_bytes is not None:
        return qs.q2_ecn_bytes
    return _scaled(QueueSettings.Q2_ECN_AT_40G, rate_bps)


# ------------------------------------------------------------ queue factories


def flexpass_queue_factory(qs: QueueSettings):
    """§4.1 switch configuration: Q0 credits (strict priority, rate limited
    to w_q), Q1 FlexPass data (ECN + selective dropping), Q2 legacy —
    Q1/Q2 scheduled by DWRR with weights w_q / 1-w_q.

    Host NICs carry the same queue structure but their credit limiter runs
    at the full line-rate equivalent: per-flow credit pacing already caps
    each flow at w_q, and the testbed behaviour of Figure 7(b) — two
    proactive sub-flows together filling the link and starving reactive —
    requires the NIC not to clamp the *aggregate* to w_q.
    """

    def factory(name: str, rate_bps: int, is_host_nic: bool):
        credit_q = PacketQueue(
            QueueConfig(name="q0-credit", capacity_bytes=qs.credit_buffer_bytes)
        )
        flex_q = PacketQueue(
            QueueConfig(
                name="q1-flexpass",
                ecn_threshold_bytes=_q1_ecn_bytes(qs, rate_bps),
                selective_drop_bytes=_q1_seldrop_bytes(qs, rate_bps),
            )
        )
        legacy_q = PacketQueue(
            QueueConfig(name="q2-legacy", ecn_threshold_bytes=_q2_ecn_bytes(qs, rate_bps))
        )
        credit_fraction = 1.0 if is_host_nic else qs.wq
        pacer = TokenBucket(
            max(1, int(rate_bps * credit_fraction * CREDIT_PER_DATA)),
            bucket_bytes=2 * 84,
        )
        schedules = [
            QueueSchedule(credit_q, priority=0, weight=1.0, pacer=pacer),
            QueueSchedule(flex_q, priority=1, weight=qs.wq),
            QueueSchedule(legacy_q, priority=1, weight=1.0 - qs.wq),
        ]
        classifier = {d: 2 for d in ALL_DSCPS}
        classifier[Dscp.CREDIT.value] = 0
        classifier[Dscp.PROACTIVE_DATA.value] = 1
        classifier[Dscp.REACTIVE_DATA.value] = 1
        classifier[Dscp.FLEX_CONTROL.value] = 1
        return schedules, classifier

    return factory


def naive_queue_factory(qs: QueueSettings):
    """Naïve deployment: full-rate credit queue + ONE shared data queue for
    ExpressPass data and legacy traffic (no isolation)."""

    def factory(name: str, rate_bps: int, is_host_nic: bool):
        credit_q = PacketQueue(
            QueueConfig(name="q0-credit", capacity_bytes=qs.credit_buffer_bytes)
        )
        data_q = PacketQueue(
            QueueConfig(name="q1-shared", ecn_threshold_bytes=_q2_ecn_bytes(qs, rate_bps))
        )
        pacer = TokenBucket(max(1, int(rate_bps * CREDIT_PER_DATA)), bucket_bytes=2 * 84)
        schedules = [
            QueueSchedule(credit_q, priority=0, weight=1.0, pacer=pacer),
            QueueSchedule(data_q, priority=1, weight=1.0),
        ]
        classifier = {d: 1 for d in ALL_DSCPS}
        classifier[Dscp.CREDIT.value] = 0
        return schedules, classifier

    return factory


def owf_queue_factory(qs: QueueSettings, fraction: float):
    """Oracle WFQ: two data queues weighted by the *known* traffic split
    (the impractical scheme the paper uses as the upper baseline)."""
    fraction = min(max(fraction, 0.02), 0.98)  # DWRR needs nonzero weights

    def factory(name: str, rate_bps: int, is_host_nic: bool):
        credit_q = PacketQueue(
            QueueConfig(name="q0-credit", capacity_bytes=qs.credit_buffer_bytes)
        )
        xp_q = PacketQueue(QueueConfig(name="q1-xp"))
        legacy_q = PacketQueue(
            QueueConfig(name="q2-legacy", ecn_threshold_bytes=_q2_ecn_bytes(qs, rate_bps))
        )
        credit_fraction = 1.0 if is_host_nic else fraction
        pacer = TokenBucket(
            max(1, int(rate_bps * credit_fraction * CREDIT_PER_DATA)),
            bucket_bytes=2 * 84,
        )
        schedules = [
            QueueSchedule(credit_q, priority=0, weight=1.0, pacer=pacer),
            QueueSchedule(xp_q, priority=1, weight=fraction),
            QueueSchedule(legacy_q, priority=1, weight=1.0 - fraction),
        ]
        classifier = {d: 2 for d in ALL_DSCPS}
        classifier[Dscp.CREDIT.value] = 0
        classifier[Dscp.PROACTIVE_DATA.value] = 1
        classifier[Dscp.FLEX_CONTROL.value] = 1
        return schedules, classifier

    return factory


def homa_shared_queue_factory(ecn_kb: int = 100):
    """Figure 1(b) configuration: grants in a small strict-priority queue,
    Homa data and DCTCP sharing one ECN FIFO (no coexistence measures).

    Note (DESIGN.md): with DCTCP alone in a strictly-higher-priority queue
    (footnote 3's testbed mapping), a work-conserving per-packet priority
    scheduler provably protects ACK-clocked DCTCP — our model shows that,
    see tests. The published starvation therefore reproduces under the
    shared-queue premise the figure is actually making a point about.
    """

    def factory(name: str, rate_bps: int, is_host_nic: bool):
        grant_q = PacketQueue(QueueConfig(name="grants", capacity_bytes=10 * KB))
        data_q = PacketQueue(
            QueueConfig(name="shared", ecn_threshold_bytes=ecn_kb * KB)
        )
        schedules = [
            QueueSchedule(grant_q, priority=0, weight=1.0),
            QueueSchedule(data_q, priority=1, weight=1.0),
        ]
        classifier = {d: 1 for d in ALL_DSCPS}
        classifier[Dscp.HOMA_BASE + 0] = 0  # grants
        return schedules, classifier

    return factory


def homa_queue_factory(n_prios: int = 8):
    """Eight strict priority queues; DCTCP mapped to the highest (footnote 3)."""

    def factory(name: str, rate_bps: int, is_host_nic: bool):
        schedules = []
        classifier: Dict[int, int] = {}
        for p in range(n_prios):
            q = PacketQueue(QueueConfig(name=f"prio{p}"))
            schedules.append(QueueSchedule(q, priority=p, weight=1.0))
            classifier[Dscp.HOMA_BASE + p] = p
        for d in (Dscp.LEGACY, Dscp.CREDIT, Dscp.PROACTIVE_DATA,
                  Dscp.REACTIVE_DATA, Dscp.FLEX_CONTROL):
            classifier[d.value] = 0
        # give the DCTCP queue its ECN signal
        schedules[0].queue.config.ecn_threshold_bytes = 65 * KB
        return schedules, classifier

    return factory


# --------------------------------------------------------------- SchemeSetup


@dataclass
class SchemeSetup:
    """Queue factory + per-flow endpoint launcher for one scheme."""

    name: SchemeName
    queue_factory: Callable
    #: launch(sim, spec, stats, on_complete) -> sender (already registered)
    launch_new: Callable
    launch_legacy: Callable

    def launch(self, sim, spec: FlowSpec, on_complete: Optional[CompletionCallback]):
        """Create endpoints for ``spec`` and schedule the sender start."""
        stats = FlowStats()
        if spec.group == "new":
            sender = self.launch_new(sim, spec, stats, on_complete)
        else:
            sender = self.launch_legacy(sim, spec, stats, on_complete)
        if spec.start_ns >= sim.now:
            sim.at(spec.start_ns, sender.start)
        else:
            sender.start()
        return stats


def dctcp_launcher():
    """Legacy-flow launcher: plain DCTCP endpoints."""

    def launch(sim, spec, stats, on_complete):
        params = DctcpParams()
        DctcpReceiver(sim, spec, stats, params, on_complete=on_complete)
        return DctcpSender(sim, spec, stats, params)

    return launch


def expresspass_launcher(cfg: ExperimentConfig, credit_fraction: float,
                         shared_queue: bool):
    """ExpressPass endpoints credit-limited to ``credit_fraction`` of the
    line rate; ``shared_queue`` remaps data/control DSCPs for configs where
    new-transport traffic shares the legacy data queue."""
    rate = cfg.reference_rate_bps

    def launch(sim, spec, stats, on_complete):
        params = ExpressPassParams(
            max_credit_rate_bps=rate * credit_fraction * CREDIT_PER_DATA,
            update_period_ns=cfg.update_period_ns,
        )
        if shared_queue:
            # naïve scheme: data and control share the legacy queue's DSCP
            params = replace(
                params,
                data_dscp=Dscp.PROACTIVE_DATA,  # classifier sends it to Q1 anyway
                ack_dscp=Dscp.FLEX_CONTROL,
                ctrl_dscp=Dscp.FLEX_CONTROL,
            )
        ExpressPassReceiver(sim, spec, stats, params, on_complete=on_complete)
        return ExpressPassSender(sim, spec, stats, params)

    return launch


def layering_launcher(cfg: ExperimentConfig):
    """ExpressPass+ window-overlay endpoints (the Layering scheme [45])."""
    rate = cfg.reference_rate_bps

    def launch(sim, spec, stats, on_complete):
        params = LayeringParams(
            max_credit_rate_bps=rate * CREDIT_PER_DATA,
            update_period_ns=cfg.update_period_ns,
        )
        LayeringReceiver(sim, spec, stats, params, on_complete=on_complete)
        return LayeringSender(sim, spec, stats, params)

    return launch


def flexpass_params_for(cfg: ExperimentConfig) -> FlexPassParams:
    return FlexPassParams(
        max_credit_rate_bps=cfg.reference_rate_bps * cfg.queues.wq * CREDIT_PER_DATA,
        update_period_ns=cfg.update_period_ns,
    )


def flexpass_launcher(cfg: ExperimentConfig, variant: str = ""):
    """FlexPass endpoints; ``variant`` selects the §4.3 alternatives
    ("rc3" RC3-splitting, "altq" alternative queueing, "" = base)."""

    def launch(sim, spec, stats, on_complete):
        params = flexpass_params_for(cfg)
        if variant == "altq":
            params = alt_queue_params(params)
        if variant == "rc3":
            params = replace(params, enable_proactive_rtx=False)
            Rc3SplitReceiver(sim, spec, stats, params, on_complete=on_complete)
            return Rc3SplitSender(sim, spec, stats, params)
        FlexPassReceiver(sim, spec, stats, params, on_complete=on_complete)
        return FlexPassSender(sim, spec, stats, params)

    return launch


def homa_launcher(cfg: ExperimentConfig):
    """Receiver-driven Homa endpoints granting at the full line rate
    (the Figure 1(b) baseline: no awareness of coexisting legacy traffic)."""
    rate = cfg.reference_rate_bps

    def launch(sim, spec, stats, on_complete):
        params = HomaParams(grant_rate_bps=rate, grant_prio=0,
                            unscheduled_prio=1, scheduled_prio=1)
        HomaReceiver(sim, spec, stats, params, on_complete=on_complete)
        return HomaSender(sim, spec, stats, params)

    return launch


def make_scheme_setup(cfg: ExperimentConfig) -> SchemeSetup:
    """Build the queue factory and flow launchers for ``cfg.scheme``.

    This is the one audited launch path: figures, sweeps, and the runner
    all derive their endpoints from the launchers assembled here.
    """
    qs = cfg.queues
    legacy = dctcp_launcher()
    scheme = cfg.scheme
    if scheme == SchemeName.DCTCP:
        return SchemeSetup(scheme, flexpass_queue_factory(qs), legacy, legacy)
    if scheme == SchemeName.NAIVE:
        return SchemeSetup(
            scheme, naive_queue_factory(qs),
            expresspass_launcher(cfg, credit_fraction=1.0, shared_queue=True),
            legacy,
        )
    if scheme == SchemeName.OWF:
        # the oracle knows the true fraction of new-transport traffic
        fraction = max(cfg.deployment ** 2, 0.02)  # both endpoints upgraded
        return SchemeSetup(
            scheme, owf_queue_factory(qs, fraction),
            expresspass_launcher(cfg, credit_fraction=fraction, shared_queue=False),
            legacy,
        )
    if scheme == SchemeName.LAYERING:
        return SchemeSetup(
            scheme, naive_queue_factory(qs), layering_launcher(cfg), legacy
        )
    if scheme == SchemeName.FLEXPASS:
        return SchemeSetup(
            scheme, flexpass_queue_factory(qs), flexpass_launcher(cfg), legacy
        )
    if scheme == SchemeName.FLEXPASS_RC3:
        return SchemeSetup(
            scheme, flexpass_queue_factory(qs), flexpass_launcher(cfg, "rc3"), legacy
        )
    if scheme == SchemeName.FLEXPASS_ALTQ:
        return SchemeSetup(
            scheme, flexpass_queue_factory(qs), flexpass_launcher(cfg, "altq"), legacy
        )
    if scheme == SchemeName.HOMA:
        return SchemeSetup(
            scheme, homa_shared_queue_factory(), homa_launcher(cfg), legacy
        )
    raise ValueError(f"unknown scheme {scheme}")


def build_topology(sim, make_queues, cfg: ExperimentConfig):
    """Resolve the config's fabric through the topology registry.

    A declarative ``cfg.topology_spec`` builds the "fabric" kind; otherwise
    the classic "clos" kind builds from ``cfg.clos``. Either way the handle
    duck-types :class:`repro.net.topology.Clos` for the runner.
    """
    from repro.net.topology import build

    if cfg.topology_spec is not None:
        return build("fabric", sim, make_queues, cfg.topology_spec)
    return build("clos", sim, make_queues, cfg.clos)


# --------------------------------------------------------------------------
# Regional declarative fabrics (multi-DC what-if studies)


def regional_fabric_config(spec, scheme: SchemeName = SchemeName.FLEXPASS,
                           load: float = 0.5, sim_time_ns: int = 2 * MILLIS,
                           seed: int = 1,
                           locality_intra: Optional[float] = 0.8,
                           **overrides) -> ExperimentConfig:
    """Config for any scheme over a declarative :class:`TopologySpec`.

    ``spec`` is a TopologySpec or a path to a YAML/JSON file or CSV
    directory. ``locality_intra`` keeps that fraction of traffic inside the
    sender's region (WAN backbones carry the rest); None is uniform
    all-to-all.
    """
    from repro.net.fabric import TopologySpec, load_topology_spec

    if not isinstance(spec, TopologySpec):
        spec = load_topology_spec(spec)
    spec.validate()
    params = dict(
        scheme=SchemeName(scheme), topology_spec=spec, load=load,
        sim_time_ns=sim_time_ns, seed=seed, locality_intra=locality_intra,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def run_regional_fabric(spec, **kwargs):
    """Build a regional-fabric config and run it (convenience launcher)."""
    from repro.experiments.runner import run_experiment

    return run_experiment(regional_fabric_config(spec, **kwargs))


# --------------------------------------------------------------------------
# Paper-scale Clos deployment scenario (§6.2, Figs 10-11)

#: one §6.2 pod: 4 ToRs x 6 hosts (2 aggs ride along per pod)
PAPER_HOSTS_PER_POD = 24


def paper_scale_config(hosts: int = 192, full_load: bool = False,
                       scheme: SchemeName = SchemeName.FLEXPASS,
                       sim_time_ns: Optional[int] = None, seed: int = 1,
                       **overrides) -> ExperimentConfig:
    """The §6.2 Clos deployment scenario at (a fraction of) paper scale.

    ``hosts`` must be a multiple of 24 — the paper pod is 4 ToRs x 6 hosts
    with 2 aggs and 40 Gbps everywhere; ``hosts=192`` (8 pods) is the full
    Figs 10-11 fabric. ``full_load`` runs the traffic generator at load 1.0
    with unscaled flow sizes (the paper's saturation operating point);
    otherwise load 0.5. Flow sizes are always unscaled (``size_scale=1``) —
    this scenario exists to exercise the credit plane at real credit rates.
    """
    if hosts <= 0 or hosts % PAPER_HOSTS_PER_POD:
        raise ValueError(
            f"hosts must be a positive multiple of {PAPER_HOSTS_PER_POD} "
            f"(one paper pod), got {hosts}")
    clos = replace(ClosSpec.paper_scale(), n_pods=hosts // PAPER_HOSTS_PER_POD)
    params = dict(
        scheme=scheme, clos=clos, size_scale=1.0,
        load=1.0 if full_load else 0.5,
        sim_time_ns=2 * MILLIS if sim_time_ns is None else sim_time_ns,
        seed=seed,
    )
    params.update(overrides)
    return ExperimentConfig(**params)
