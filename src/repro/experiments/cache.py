"""Content-addressed on-disk cache for experiment results.

A sweep iterates on plotting and analysis far more often than on the
simulator itself; re-running sixty clean simulations to tweak a figure is
pure waste. The cache keys each :class:`ExperimentConfig` by a stable
content hash — every field, recursively through nested dataclasses, enums,
and fault plans — salted with a code-version string, and stores the
result with its flow records packed into typed columns
(:class:`repro.metrics.fct.PackedFlowRecords`).

Keying rules (also documented in DESIGN.md §6d):

* The key is ``sha256(salt || canonical(config))``. ``canonical`` renders
  the config as a nested tuple tree: dataclasses become
  ``(classname, (field, value)...)`` in field order, enums their values,
  floats ``repr``'d (so 0.5 and 0.25 never collide via rounding).
  Any config field change — seed, load, a nested queue threshold, a fault
  plan — therefore changes the key.
* The salt defaults to :data:`DEFAULT_CODE_SALT`, which MUST be bumped in
  any PR that changes simulation behavior; ``REPRO_CACHE_SALT`` overrides
  it (tests, emergency invalidation).
* Failures are never cached: a :class:`FailedResult` or an aborted
  (watchdog-stopped) result always re-runs next sweep.

Storage is one pickle per key under ``root/<key[:2]>/<key>.pkl``, written
atomically (temp file + rename) so a crashed sweep cannot leave a torn
entry behind.

Since ISSUE 6 the cache is one backend of the
:class:`repro.experiments.store.ResultStore` interface (the other is a
concurrent-writer-safe SQLite file); keying and payload format live here
and in :mod:`repro.experiments.store` respectively, and a failed write —
full disk, read-only mount — is counted and logged instead of silently
losing the entry or killing the sweep.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.experiments.store import ResultStore

#: Bump whenever simulation semantics change, so stale results cannot leak
#: across PRs. ``REPRO_CACHE_SALT`` overrides (emergency invalidation).
DEFAULT_CODE_SALT = "sim-v9"  # PR 10: realized-mean lambda + traffic block join the config key


def canonicalize(value) -> object:
    """Render a config value as a nested tuple tree with a stable repr."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, canonicalize(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, canonicalize(value.value))
    if isinstance(value, (list, tuple)):
        return tuple(canonicalize(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (canonicalize(k), canonicalize(v)) for k, v in value.items()
        ))
    if isinstance(value, float):
        # repr is exact for floats; str() of e.g. numpy scalars is not.
        return f"f:{value!r}"
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__} for cache keying; "
        f"add a case (silently repr()-ing it could make distinct configs "
        f"collide)"
    )


def config_key(config, salt: Optional[str] = None) -> str:
    """Stable content hash of a config, salted by code version."""
    if salt is None:
        salt = os.environ.get("REPRO_CACHE_SALT", DEFAULT_CODE_SALT)
    payload = repr((salt, canonicalize(config))).encode()
    return hashlib.sha256(payload).hexdigest()


class ExperimentCache(ResultStore):
    """Directory-backed result cache, keyed by config content hash.

    Concurrent writers (multiple worker processes, or hosts sharing the
    directory over NFS) are safe: every write is temp-file + atomic
    rename, and duplicate writers of one key carry byte-identical
    payloads by construction.
    """

    def __init__(self, root: Union[str, Path], salt: Optional[str] = None):
        super().__init__(salt)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.spec = str(self.root)

    # ------------------------------------------------------------- lookup

    def path(self, config) -> Path:
        return self._key_path(self.key(config))

    def _key_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _read(self, key: str) -> Optional[bytes]:
        try:
            return self._key_path(key).read_bytes()
        except OSError:
            return None

    def _write(self, key: str, payload: bytes) -> None:
        path = self._key_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def describe(self) -> str:
        return str(self.root)
