"""Content-addressed on-disk cache for experiment results.

A sweep iterates on plotting and analysis far more often than on the
simulator itself; re-running sixty clean simulations to tweak a figure is
pure waste. The cache keys each :class:`ExperimentConfig` by a stable
content hash — every field, recursively through nested dataclasses, enums,
and fault plans — salted with a code-version string, and stores the
result with its flow records packed into typed columns
(:class:`repro.metrics.fct.PackedFlowRecords`).

Keying rules (also documented in DESIGN.md §6d):

* The key is ``sha256(salt || canonical(config))``. ``canonical`` renders
  the config as a nested tuple tree: dataclasses become
  ``(classname, (field, value)...)`` in field order, enums their values,
  floats ``repr``'d (so 0.5 and 0.25 never collide via rounding).
  Any config field change — seed, load, a nested queue threshold, a fault
  plan — therefore changes the key.
* The salt defaults to :data:`DEFAULT_CODE_SALT`, which MUST be bumped in
  any PR that changes simulation behavior; ``REPRO_CACHE_SALT`` overrides
  it (tests, emergency invalidation).
* Failures are never cached: a :class:`FailedResult` or an aborted
  (watchdog-stopped) result always re-runs next sweep.

Storage is one pickle per key under ``root/<key[:2]>/<key>.pkl``, written
atomically (temp file + rename) so a crashed sweep cannot leave a torn
entry behind.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.experiments.runner import ExperimentResult
from repro.metrics.fct import PackedFlowRecords

#: Bump whenever simulation semantics change, so stale results cannot leak
#: across PRs. ``REPRO_CACHE_SALT`` overrides (emergency invalidation).
DEFAULT_CODE_SALT = "sim-v5"


def canonicalize(value) -> object:
    """Render a config value as a nested tuple tree with a stable repr."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, canonicalize(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, canonicalize(value.value))
    if isinstance(value, (list, tuple)):
        return tuple(canonicalize(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (canonicalize(k), canonicalize(v)) for k, v in value.items()
        ))
    if isinstance(value, float):
        # repr is exact for floats; str() of e.g. numpy scalars is not.
        return f"f:{value!r}"
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__} for cache keying; "
        f"add a case (silently repr()-ing it could make distinct configs "
        f"collide)"
    )


def config_key(config, salt: Optional[str] = None) -> str:
    """Stable content hash of a config, salted by code version."""
    if salt is None:
        salt = os.environ.get("REPRO_CACHE_SALT", DEFAULT_CODE_SALT)
    payload = repr((salt, canonicalize(config))).encode()
    return hashlib.sha256(payload).hexdigest()


class ExperimentCache:
    """Directory-backed result cache, keyed by config content hash."""

    def __init__(self, root: Union[str, Path], salt: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.skipped = 0  # puts refused (failed/aborted results)

    # ------------------------------------------------------------- lookup

    def key(self, config) -> str:
        return config_key(config, self.salt)

    def path(self, config) -> Path:
        key = self.key(config)
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, config) -> Optional[ExperimentResult]:
        """Return the cached result for ``config``, or None on a miss."""
        path = self.path(config)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (pickle.UnpicklingError, ValueError, EOFError, AttributeError):
            # A torn or stale-schema entry reads as a miss; the fresh run
            # will overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        stripped, packed = payload
        return dataclasses.replace(stripped, records=packed.unpack())

    def put(self, config, result) -> bool:
        """Store a result. Returns False (and stores nothing) for failures.

        Failed and aborted results must never be served from cache — they
        are exactly the runs a retry might fix.
        """
        if not isinstance(result, ExperimentResult) or result.aborted:
            self.skipped += 1
            return False
        packed = PackedFlowRecords.pack(result.records)
        stripped = dataclasses.replace(result, records=[])
        path = self.path(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((stripped, packed), fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return True

    # ------------------------------------------------------------ stats

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "skipped": self.skipped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ExperimentCache {self.root} hits={self.hits} "
                f"misses={self.misses} stores={self.stores}>")
