"""Per-figure reproduction harness (microbenchmarks: Figures 1, 5a, 7, 8, 9).

Each ``figNN_*`` function builds the paper's scenario (scaled for pure-Python
execution), runs it, and returns a small result object whose ``rows()`` /
``print_report()`` emit the same series the paper plots. The deployment
sweeps (Figures 10-18) live in :mod:`repro.experiments.sweep`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.counters import FaultCounters

from repro.experiments.config import ExperimentConfig, QueueSettings, SchemeName
from repro.experiments.scenarios import (
    dctcp_launcher,
    expresspass_launcher,
    flexpass_launcher,
    flexpass_queue_factory,
    homa_launcher,
    homa_shared_queue_factory,
    naive_queue_factory,
)
from repro.metrics.summary import format_table
from repro.metrics.telemetry import TelemetrySampler
from repro.metrics.throughput import starvation_fraction
from repro.net.topology import (
    DumbbellSpec,
    StarSpec,
    build_dumbbell,
    build_star,
)
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats

RATE = 10 * GBPS

#: timeline resolution for the throughput figures (the paper plots 1 ms bins)
_BIN_NS = 1 * MILLIS


# ----------------------------------------------------------------- launchers
#
# Every figure goes through the same audited launch path as the sweeps:
# :func:`repro.experiments.scenarios.make_scheme_setup`'s launcher builders,
# parameterized by a figure-scale ExperimentConfig. The old ``_launch_*``
# helpers survive only as deprecated shims.


def _figure_cfg(scheme: SchemeName = SchemeName.FLEXPASS,
                wq: float = 0.5) -> ExperimentConfig:
    """The config the figure topologies imply: 10 Gbps links, weight wq."""
    return ExperimentConfig(scheme=scheme, queues=QueueSettings(wq=wq))


def _start(sim, launcher, spec, stats, done=None) -> None:
    """Create endpoints via a scenarios launcher and schedule the start."""
    sender = launcher(sim, spec, stats, done)
    sim.at(spec.start_ns, sender.start)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use repro.experiments.scenarios.{new}",
        DeprecationWarning, stacklevel=3,
    )


def _launch_dctcp(sim, spec, stats, done=None):
    _deprecated("_launch_dctcp", "dctcp_launcher()")
    _start(sim, dctcp_launcher(), spec, stats, done)


def _launch_xp(sim, spec, stats, done=None, wq=1.0):
    _deprecated("_launch_xp", "expresspass_launcher(cfg, ...)")
    _start(sim, expresspass_launcher(_figure_cfg(), credit_fraction=wq,
                                     shared_queue=True), spec, stats, done)


def _launch_fp(sim, spec, stats, done=None, wq=0.5):
    _deprecated("_launch_fp", "flexpass_launcher(cfg)")
    _start(sim, flexpass_launcher(_figure_cfg(wq=wq)), spec, stats, done)


def _launch_homa(sim, spec, stats, done=None):
    _deprecated("_launch_homa", "homa_launcher(cfg)")
    _start(sim, homa_launcher(_figure_cfg()), spec, stats, done)


# ------------------------------------------------------------------ sampling


def _goodput_sampler(sim, cums: Callable[[], Dict[str, float]],
                     horizon_ns: int) -> TelemetrySampler:
    """Telemetry sampler recording per-category goodput, in Gbps per bin.

    ``cums`` returns cumulative delivered bytes per category (all
    categories, every call, so every series covers every bin); the counter
    scale 8/bin turns per-bin byte deltas into Gbps.
    """
    sampler = TelemetrySampler(sim, interval_ns=_BIN_NS,
                               max_samples=horizon_ns // _BIN_NS + 8,
                               until_ns=horizon_ns)
    sampler.add_counter_map(cums, scale=8.0 / _BIN_NS)
    sampler.start()
    return sampler


def _series(sampler: TelemetrySampler, categories: Sequence[str],
            horizon_ns: int) -> Dict[str, List[float]]:
    tel = sampler.freeze()
    return {c: (tel.aligned_values(c, horizon_ns) if c in tel
                else [0.0] * max(1, horizon_ns // _BIN_NS))
            for c in categories}


# ------------------------------------------------------------------ Figure 1


@dataclass
class ThroughputFigure:
    """A throughput-vs-time comparison on one bottleneck."""

    title: str
    bin_ms: float
    series: Dict[str, List[float]]  # category -> Gbps per bin
    capacity_gbps: float

    def share(self, category: str) -> float:
        total = sum(sum(s) for s in self.series.values())
        return sum(self.series[category]) / total if total else 0.0

    def starvation(self, category: str, threshold: float = 0.2) -> float:
        return starvation_fraction(self.series[category], self.capacity_gbps,
                                   threshold)

    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (name, f"{self.share(name) * 100:.1f}%",
             f"{self.starvation(name) * 100:.1f}%")
            for name in sorted(self.series)
        ]

    def print_report(self) -> None:
        print(f"\n== {self.title} ==")
        print(format_table(("traffic", "bandwidth share", "starvation time"),
                           self.rows()))


def fig01a_expresspass_vs_dctcp(duration_ms: int = 40,
                                flow_mb: int = 60) -> ThroughputFigure:
    """Figure 1(a): one ExpressPass flow starves one DCTCP flow on a 10G
    dumbbell when both share the data queue (naïve coexistence)."""
    sim = Simulator()
    cfg = _figure_cfg(SchemeName.NAIVE)
    db = build_dumbbell(sim, naive_queue_factory(QueueSettings()),
                        DumbbellSpec(n_pairs=2))
    xp_stats, dc_stats = FlowStats(), FlowStats()
    _start(sim, expresspass_launcher(cfg, credit_fraction=1.0, shared_queue=True),
           FlowSpec(1, db.senders[0], db.receivers[0], flow_mb * MB, 0,
                    scheme="expresspass"), xp_stats)
    _start(sim, dctcp_launcher(),
           FlowSpec(2, db.senders[1], db.receivers[1], flow_mb * MB, 0,
                    scheme="dctcp"), dc_stats)
    horizon = duration_ms * MILLIS
    sampler = _goodput_sampler(sim, lambda: {
        "expresspass": xp_stats.delivered_bytes,
        "dctcp": dc_stats.delivered_bytes,
    }, horizon)
    sim.run(until=horizon)
    return ThroughputFigure(
        "Figure 1(a): ExpressPass vs DCTCP, shared queue",
        1.0, _series(sampler, ("expresspass", "dctcp"), horizon), 10.0,
    )


def fig01b_homa_vs_dctcp(duration_ms: int = 40, n_each: int = 16,
                         flow_mb: int = 8) -> ThroughputFigure:
    """Figure 1(b): 16 Homa flows starve 16 DCTCP flows when nothing
    isolates them — Homa grants at the full link capacity with no awareness
    of the reactive traffic, DCTCP backs off on the resulting marks."""
    sim = Simulator()
    cfg = _figure_cfg(SchemeName.HOMA)
    db = build_dumbbell(sim, homa_shared_queue_factory(),
                        DumbbellSpec(n_pairs=2))
    homa_stats: List[FlowStats] = []
    dctcp_stats: List[FlowStats] = []
    launch_homa = homa_launcher(cfg)
    launch_dctcp = dctcp_launcher()
    fid = 0
    for i in range(n_each):
        fid += 1
        st = FlowStats()
        homa_stats.append(st)
        _start(sim, launch_homa, FlowSpec(fid, db.senders[0], db.receivers[0],
                                          flow_mb * MB, 0, scheme="homa"), st)
        fid += 1
        st = FlowStats()
        dctcp_stats.append(st)
        _start(sim, launch_dctcp, FlowSpec(fid, db.senders[1], db.receivers[1],
                                           flow_mb * MB, 0, scheme="dctcp"), st)
    horizon = duration_ms * MILLIS
    sampler = _goodput_sampler(sim, lambda: {
        "homa": sum(s.delivered_bytes for s in homa_stats),
        "dctcp": sum(s.delivered_bytes for s in dctcp_stats),
    }, horizon)
    sim.run(until=horizon)
    return ThroughputFigure(
        "Figure 1(b): Homa vs DCTCP, no isolation",
        1.0, _series(sampler, ("homa", "dctcp"), horizon), 10.0,
    )


# ------------------------------------------------------------------ Figure 7


def fig07_subflow_throughput(scenario: str,
                             duration_ms: int = 40) -> ThroughputFigure:
    """Figure 7: sub-flow bandwidth shares on a two-to-one testbed topology.

    ``scenario``: "one_flexpass" (a), "two_flexpass" (b), or
    "dctcp_vs_flexpass" (c).
    """
    sim = Simulator()
    cfg = _figure_cfg(SchemeName.FLEXPASS, wq=0.5)
    star = build_star(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                      StarSpec(n_hosts=3))
    receiver = star.hosts[2]
    launch_fp = flexpass_launcher(cfg)
    fp_stats: List[FlowStats] = []
    dc_stats: List[FlowStats] = []
    size = 50 * MB
    if scenario == "one_flexpass":
        fp_stats.append(FlowStats())
        _start(sim, launch_fp, FlowSpec(1, star.hosts[0], receiver, size, 0,
                                        scheme="flexpass", group="new"),
               fp_stats[0])
    elif scenario == "two_flexpass":
        for i in (0, 1):
            fp_stats.append(FlowStats())
            _start(sim, launch_fp,
                   FlowSpec(i + 1, star.hosts[i], receiver, size, 0,
                            scheme="flexpass", group="new"), fp_stats[i])
    elif scenario == "dctcp_vs_flexpass":
        fp_stats.append(FlowStats())
        _start(sim, launch_fp, FlowSpec(1, star.hosts[0], receiver, size, 0,
                                        scheme="flexpass", group="new"),
               fp_stats[0])
        dc_stats.append(FlowStats())
        _start(sim, dctcp_launcher(),
               FlowSpec(2, star.hosts[1], receiver, size, 0, scheme="dctcp"),
               dc_stats[0])
    else:
        raise ValueError(f"unknown scenario {scenario!r}")

    def cums() -> Dict[str, float]:
        out = {
            "proactive": sum(s.proactive_bytes for s in fp_stats),
            "reactive": sum(s.reactive_bytes for s in fp_stats),
        }
        if dc_stats:
            out["dctcp"] = sum(s.delivered_bytes for s in dc_stats)
        return out

    horizon = duration_ms * MILLIS
    sampler = _goodput_sampler(sim, cums, horizon)
    sim.run(until=horizon)
    categories = ["proactive", "reactive"] + (["dctcp"] if dc_stats else [])
    return ThroughputFigure(
        f"Figure 7 ({scenario})", 1.0,
        _series(sampler, categories, horizon), 10.0,
    )


# ------------------------------------------------------------------ Figure 8


@dataclass
class IncastFigure:
    """Tail FCT vs incast degree for several transports (Figure 8)."""

    n_flows: List[int]
    #: scheme -> [max FCT ms per point], aligned with n_flows
    tail_fct_ms: Dict[str, List[float]]
    timeouts: Dict[str, List[int]]

    def rows(self):
        out = []
        for i, n in enumerate(self.n_flows):
            for scheme in sorted(self.tail_fct_ms):
                out.append((n, scheme, self.tail_fct_ms[scheme][i],
                            self.timeouts[scheme][i]))
        return out

    def print_report(self):
        print("\n== Figure 8: incast tail FCT (64 kB responses, 8 senders) ==")
        print(format_table(("flows", "scheme", "max FCT (ms)", "timeouts"),
                           self.rows()))


def fig08_incast(n_flows_list: Sequence[int] = (8, 24, 48, 80),
                 response_kb: int = 64) -> IncastFigure:
    """Figure 8: 8-to-1 incast; DCTCP hits RTOs at high degree, ExpressPass
    and FlexPass never do."""
    cfg = _figure_cfg(wq=0.5)
    schemes = {
        "dctcp": (dctcp_launcher(),
                  flexpass_queue_factory(QueueSettings(wq=0.5))),
        "expresspass": (expresspass_launcher(cfg, credit_fraction=0.5,
                                             shared_queue=True),
                        flexpass_queue_factory(QueueSettings(wq=0.5))),
        "flexpass": (flexpass_launcher(cfg),
                     flexpass_queue_factory(QueueSettings(wq=0.5))),
    }
    fig = IncastFigure(list(n_flows_list),
                       {s: [] for s in schemes}, {s: [] for s in schemes})
    for n in n_flows_list:
        for name, (launch, factory) in schemes.items():
            sim = Simulator()
            star = build_star(sim, factory,
                              StarSpec(n_hosts=9, buffer_bytes=2 * MB))
            receiver = star.hosts[0]
            stats_list = []
            fid = 0
            senders = star.hosts[1:]
            for k in range(n):
                fid += 1
                src = senders[k % len(senders)]
                spec = FlowSpec(fid, src, receiver, response_kb * KB, 0,
                                scheme=name, group="new")
                st = FlowStats()
                stats_list.append(st)
                _start(sim, launch, spec, st)
            sim.run(until=400 * MILLIS)
            fcts = [s.fct_ns() / 1e6 for s in stats_list if s.completed]
            fig.tail_fct_ms[name].append(max(fcts) if fcts else float("inf"))
            fig.timeouts[name].append(sum(s.timeouts for s in stats_list))
    return fig


# ------------------------------------------------------------------ Figure 9


def fig09_coexistence(scheme: str, duration_ms: int = 40,
                      flow_mb: int = 60) -> ThroughputFigure:
    """Figure 9: one new-transport flow vs one DCTCP flow on a shared 10G
    bottleneck. ``scheme`` is "expresspass" (a) or "flexpass" (b); (c)'s
    starvation-time bars come from ``ThroughputFigure.starvation``."""
    sim = Simulator()
    if scheme == "expresspass":
        factory = naive_queue_factory(QueueSettings())
        launch = expresspass_launcher(_figure_cfg(SchemeName.NAIVE),
                                      credit_fraction=1.0, shared_queue=True)
    elif scheme == "flexpass":
        factory = flexpass_queue_factory(QueueSettings(wq=0.5))
        launch = flexpass_launcher(_figure_cfg(wq=0.5))
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    db = build_dumbbell(sim, factory, DumbbellSpec(n_pairs=2))
    new_stats, dc_stats = FlowStats(), FlowStats()
    _start(sim, launch, FlowSpec(1, db.senders[0], db.receivers[0],
                                 flow_mb * MB, 0, scheme=scheme, group="new"),
           new_stats)
    _start(sim, dctcp_launcher(),
           FlowSpec(2, db.senders[1], db.receivers[1], flow_mb * MB, 0,
                    scheme="dctcp"), dc_stats)
    horizon = duration_ms * MILLIS
    sampler = _goodput_sampler(sim, lambda: {
        scheme: new_stats.delivered_bytes,
        "dctcp": dc_stats.delivered_bytes,
    }, horizon)
    sim.run(until=horizon)
    return ThroughputFigure(
        f"Figure 9: {scheme} vs DCTCP", 1.0,
        _series(sampler, (scheme, "dctcp"), horizon), 10.0,
    )


# ------------------------------------------------- failure-recovery scenario


@dataclass
class FailureRecoveryReport:
    """§4.3 robustness scenario: a mid-transfer link outage on the
    bottleneck, recovered by each transport's loss-recovery machinery."""

    title: str
    down_ms: float
    up_ms: float
    rows_: List[Tuple[object, ...]]
    counters: "FaultCounters"

    def rows(self) -> List[Tuple[object, ...]]:
        return self.rows_

    def print_report(self) -> None:
        print(f"\n== {self.title} ==")
        print(format_table(
            ("flow", "completed", "delivered MB", "FCT (ms)", "rtx",
             "proactive rtx", "timeouts"),
            self.rows_,
        ))
        c = self.counters
        print(format_table(
            ("fault counter", "value"),
            [
                ("in-flight packets destroyed", c.discarded_in_flight),
                ("packets sent into dead link", c.dropped_link_down),
                ("route recomputations", c.reroutes),
                ("link failures / restores",
                 f"{c.link_failures} / {c.link_restores}"),
            ],
        ))


def failure_recovery(down_ms: float = 2.0, up_ms: float = 6.0,
                     flow_mb: int = 8,
                     horizon_ms: int = 100) -> FailureRecoveryReport:
    """One FlexPass and one DCTCP flow share a dumbbell whose bottleneck
    link dies mid-transfer and comes back ``up_ms - down_ms`` ms later.

    Everything in flight on the cable is destroyed and both directions eat
    packets until the repair; routes reconverge on both transitions. The
    paper's claim (§4.3) is that FlexPass recovers non-congestion losses
    through the reactive sub-flow and proactive retransmission — DCTCP
    recovers through its RTO — and both flows complete exactly once.
    """
    from repro.faults import LinkDownEvent, LinkUpEvent, schedule_failure_events

    sim = Simulator()
    db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                        DumbbellSpec(n_pairs=2))
    completions: List[int] = []

    def done(spec, stats):
        completions.append(spec.flow_id)

    fp_stats, dc_stats = FlowStats(), FlowStats()
    _start(sim, flexpass_launcher(_figure_cfg(wq=0.5)),
           FlowSpec(1, db.senders[0], db.receivers[0], flow_mb * MB, 0,
                    scheme="flexpass", group="new"), fp_stats, done)
    _start(sim, dctcp_launcher(),
           FlowSpec(2, db.senders[1], db.receivers[1], flow_mb * MB, 0,
                    scheme="dctcp"), dc_stats, done)

    counters = schedule_failure_events(sim, db.topo, [
        LinkDownEvent(int(down_ms * MILLIS), "swL", "swR"),
        LinkUpEvent(int(up_ms * MILLIS), "swL", "swR"),
    ])
    sim.run(until=horizon_ms * MILLIS)

    def row(name, flow_id, stats):
        return (
            name,
            f"{'yes' if completions.count(flow_id) == 1 else 'NO'}"
            f" (x{completions.count(flow_id)})",
            f"{stats.delivered_bytes / MB:.1f}",
            f"{stats.fct_ns() / MILLIS:.2f}" if stats.completed else "-",
            stats.retransmissions,
            stats.proactive_retransmissions,
            stats.timeouts,
        )

    return FailureRecoveryReport(
        title=(f"Failure recovery: bottleneck down at {down_ms} ms, "
               f"repaired at {up_ms} ms"),
        down_ms=down_ms, up_ms=up_ms,
        rows_=[row("flexpass", 1, fp_stats), row("dctcp", 2, dc_stats)],
        counters=counters,
    )
