"""Per-figure reproduction harness (microbenchmarks: Figures 1, 5a, 7, 8, 9).

Each ``figNN_*`` function builds the paper's scenario (scaled for pure-Python
execution), runs it, and returns a small result object whose ``rows()`` /
``print_report()`` emit the same series the paper plots. The deployment
sweeps (Figures 10-18) live in :mod:`repro.experiments.sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.counters import FaultCounters

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import ExperimentConfig, QueueSettings, SchemeName
from repro.experiments.scenarios import (
    flexpass_queue_factory,
    homa_queue_factory,
    homa_shared_queue_factory,
    naive_queue_factory,
)
from repro.metrics.summary import format_table
from repro.metrics.throughput import ThroughputMonitor, starvation_fraction
from repro.net.packet import Dscp, Packet, PacketKind
from repro.net.topology import (
    DumbbellSpec,
    StarSpec,
    build_dumbbell,
    build_star,
)
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender
from repro.transports.expresspass import (
    ExpressPassParams,
    ExpressPassReceiver,
    ExpressPassSender,
)
from repro.transports.homa import HomaParams, HomaReceiver, HomaSender

RATE = 10 * GBPS


# ------------------------------------------------------------ tiny launchers


def _launch_dctcp(sim, spec, stats, done=None):
    params = DctcpParams()
    DctcpReceiver(sim, spec, stats, params, on_complete=done)
    sender = DctcpSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)


def _launch_xp(sim, spec, stats, done=None, wq=1.0):
    params = ExpressPassParams(max_credit_rate_bps=RATE * wq * CREDIT_PER_DATA)
    ExpressPassReceiver(sim, spec, stats, params, on_complete=done)
    sender = ExpressPassSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)


def _launch_fp(sim, spec, stats, done=None, wq=0.5):
    params = FlexPassParams(max_credit_rate_bps=RATE * wq * CREDIT_PER_DATA)
    FlexPassReceiver(sim, spec, stats, params, on_complete=done)
    sender = FlexPassSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)


def _launch_homa(sim, spec, stats, done=None):
    params = HomaParams(grant_rate_bps=RATE, grant_prio=0,
                        unscheduled_prio=1, scheduled_prio=1)
    HomaReceiver(sim, spec, stats, params, on_complete=done)
    sender = HomaSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)


def _classify_by_scheme(flow_schemes: Dict[int, str]):
    def classify(pkt: Packet) -> Optional[str]:
        if pkt.kind != PacketKind.DATA:
            return None
        return flow_schemes.get(pkt.flow_id)

    return classify


def _classify_by_subflow(flow_schemes: Dict[int, str]):
    def classify(pkt: Packet) -> Optional[str]:
        if pkt.kind != PacketKind.DATA:
            return None
        base = flow_schemes.get(pkt.flow_id)
        if base is None:
            return None
        if base == "flexpass":
            return "proactive" if pkt.subflow == 0 else "reactive"
        return base

    return classify


# ------------------------------------------------------------------ Figure 1


@dataclass
class ThroughputFigure:
    """A throughput-vs-time comparison on one bottleneck."""

    title: str
    bin_ms: float
    series: Dict[str, List[float]]  # category -> Gbps per bin
    capacity_gbps: float

    def share(self, category: str) -> float:
        total = sum(sum(s) for s in self.series.values())
        return sum(self.series[category]) / total if total else 0.0

    def starvation(self, category: str, threshold: float = 0.2) -> float:
        return starvation_fraction(self.series[category], self.capacity_gbps,
                                   threshold)

    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (name, f"{self.share(name) * 100:.1f}%",
             f"{self.starvation(name) * 100:.1f}%")
            for name in sorted(self.series)
        ]

    def print_report(self) -> None:
        print(f"\n== {self.title} ==")
        print(format_table(("traffic", "bandwidth share", "starvation time"),
                           self.rows()))


def fig01a_expresspass_vs_dctcp(duration_ms: int = 40,
                                flow_mb: int = 60) -> ThroughputFigure:
    """Figure 1(a): one ExpressPass flow starves one DCTCP flow on a 10G
    dumbbell when both share the data queue (naïve coexistence)."""
    sim = Simulator()
    db = build_dumbbell(sim, naive_queue_factory(QueueSettings()),
                        DumbbellSpec(n_pairs=2))
    schemes = {1: "expresspass", 2: "dctcp"}
    mon = ThroughputMonitor(db.bottleneck, _classify_by_scheme(schemes))
    _launch_xp(sim, FlowSpec(1, db.senders[0], db.receivers[0], flow_mb * MB, 0,
                             scheme="expresspass"), FlowStats())
    _launch_dctcp(sim, FlowSpec(2, db.senders[1], db.receivers[1], flow_mb * MB, 0,
                                scheme="dctcp"), FlowStats())
    horizon = duration_ms * MILLIS
    sim.run(until=horizon)
    return ThroughputFigure(
        "Figure 1(a): ExpressPass vs DCTCP, shared queue",
        1.0, {k: mon.series_gbps(k, horizon) for k in schemes.values()}, 10.0,
    )


def fig01b_homa_vs_dctcp(duration_ms: int = 40, n_each: int = 16,
                         flow_mb: int = 8) -> ThroughputFigure:
    """Figure 1(b): 16 Homa flows starve 16 DCTCP flows when nothing
    isolates them — Homa grants at the full link capacity with no awareness
    of the reactive traffic, DCTCP backs off on the resulting marks."""
    sim = Simulator()
    db = build_dumbbell(sim, homa_shared_queue_factory(),
                        DumbbellSpec(n_pairs=2))
    schemes: Dict[int, str] = {}
    mon = ThroughputMonitor(db.bottleneck, _classify_by_scheme(schemes))
    fid = 0
    for i in range(n_each):
        fid += 1
        schemes[fid] = "homa"
        _launch_homa(sim, FlowSpec(fid, db.senders[0], db.receivers[0],
                                   flow_mb * MB, 0, scheme="homa"), FlowStats())
        fid += 1
        schemes[fid] = "dctcp"
        _launch_dctcp(sim, FlowSpec(fid, db.senders[1], db.receivers[1],
                                    flow_mb * MB, 0, scheme="dctcp"), FlowStats())
    horizon = duration_ms * MILLIS
    sim.run(until=horizon)
    return ThroughputFigure(
        "Figure 1(b): Homa vs DCTCP, no isolation",
        1.0,
        {"homa": mon.series_gbps("homa", horizon),
         "dctcp": mon.series_gbps("dctcp", horizon)},
        10.0,
    )


# ------------------------------------------------------------------ Figure 7


def fig07_subflow_throughput(scenario: str,
                             duration_ms: int = 40) -> ThroughputFigure:
    """Figure 7: sub-flow bandwidth shares on a two-to-one testbed topology.

    ``scenario``: "one_flexpass" (a), "two_flexpass" (b), or
    "dctcp_vs_flexpass" (c).
    """
    sim = Simulator()
    star = build_star(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                      StarSpec(n_hosts=3))
    receiver = star.hosts[2]
    bottleneck = star.downlink(receiver)
    schemes: Dict[int, str] = {}
    mon = ThroughputMonitor(bottleneck, _classify_by_subflow(schemes))
    size = 50 * MB
    if scenario == "one_flexpass":
        schemes[1] = "flexpass"
        _launch_fp(sim, FlowSpec(1, star.hosts[0], receiver, size, 0,
                                 scheme="flexpass", group="new"), FlowStats())
    elif scenario == "two_flexpass":
        for i in (0, 1):
            schemes[i + 1] = "flexpass"
            _launch_fp(sim, FlowSpec(i + 1, star.hosts[i], receiver, size, 0,
                                     scheme="flexpass", group="new"), FlowStats())
    elif scenario == "dctcp_vs_flexpass":
        schemes[1] = "flexpass"
        _launch_fp(sim, FlowSpec(1, star.hosts[0], receiver, size, 0,
                                 scheme="flexpass", group="new"), FlowStats())
        schemes[2] = "dctcp"
        _launch_dctcp(sim, FlowSpec(2, star.hosts[1], receiver, size, 0,
                                    scheme="dctcp"), FlowStats())
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    horizon = duration_ms * MILLIS
    sim.run(until=horizon)
    categories = sorted({c for c in mon.categories()})
    return ThroughputFigure(
        f"Figure 7 ({scenario})", 1.0,
        {c: mon.series_gbps(c, horizon) for c in categories}, 10.0,
    )


# ------------------------------------------------------------------ Figure 8


@dataclass
class IncastFigure:
    """Tail FCT vs incast degree for several transports (Figure 8)."""

    n_flows: List[int]
    #: scheme -> [max FCT ms per point], aligned with n_flows
    tail_fct_ms: Dict[str, List[float]]
    timeouts: Dict[str, List[int]]

    def rows(self):
        out = []
        for i, n in enumerate(self.n_flows):
            for scheme in sorted(self.tail_fct_ms):
                out.append((n, scheme, self.tail_fct_ms[scheme][i],
                            self.timeouts[scheme][i]))
        return out

    def print_report(self):
        print("\n== Figure 8: incast tail FCT (64 kB responses, 8 senders) ==")
        print(format_table(("flows", "scheme", "max FCT (ms)", "timeouts"),
                           self.rows()))


def fig08_incast(n_flows_list: Sequence[int] = (8, 24, 48, 80),
                 response_kb: int = 64) -> IncastFigure:
    """Figure 8: 8-to-1 incast; DCTCP hits RTOs at high degree, ExpressPass
    and FlexPass never do."""
    schemes = {
        "dctcp": (_launch_dctcp, flexpass_queue_factory(QueueSettings(wq=0.5))),
        "expresspass": (lambda sim, spec, stats, done=None:
                        _launch_xp(sim, spec, stats, done, wq=0.5),
                        flexpass_queue_factory(QueueSettings(wq=0.5))),
        "flexpass": (_launch_fp, flexpass_queue_factory(QueueSettings(wq=0.5))),
    }
    fig = IncastFigure(list(n_flows_list),
                       {s: [] for s in schemes}, {s: [] for s in schemes})
    for n in n_flows_list:
        for name, (launch, factory) in schemes.items():
            sim = Simulator()
            star = build_star(sim, factory,
                              StarSpec(n_hosts=9, buffer_bytes=2 * MB))
            receiver = star.hosts[0]
            stats_list = []
            fid = 0
            senders = star.hosts[1:]
            for k in range(n):
                fid += 1
                src = senders[k % len(senders)]
                spec = FlowSpec(fid, src, receiver, response_kb * KB, 0,
                                scheme=name, group="new")
                st = FlowStats()
                stats_list.append(st)
                launch(sim, spec, st)
            sim.run(until=400 * MILLIS)
            fcts = [s.fct_ns() / 1e6 for s in stats_list if s.completed]
            fig.tail_fct_ms[name].append(max(fcts) if fcts else float("inf"))
            fig.timeouts[name].append(sum(s.timeouts for s in stats_list))
    return fig


# ------------------------------------------------------------------ Figure 9


def fig09_coexistence(scheme: str, duration_ms: int = 40,
                      flow_mb: int = 60) -> ThroughputFigure:
    """Figure 9: one new-transport flow vs one DCTCP flow on a shared 10G
    bottleneck. ``scheme`` is "expresspass" (a) or "flexpass" (b); (c)'s
    starvation-time bars come from ``ThroughputFigure.starvation``."""
    sim = Simulator()
    if scheme == "expresspass":
        factory = naive_queue_factory(QueueSettings())
        launch = _launch_xp
    elif scheme == "flexpass":
        factory = flexpass_queue_factory(QueueSettings(wq=0.5))
        launch = _launch_fp
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    sim = Simulator()
    db = build_dumbbell(sim, factory, DumbbellSpec(n_pairs=2))
    schemes = {1: scheme, 2: "dctcp"}
    mon = ThroughputMonitor(db.bottleneck, _classify_by_scheme(schemes))
    launch(sim, FlowSpec(1, db.senders[0], db.receivers[0], flow_mb * MB, 0,
                         scheme=scheme, group="new"), FlowStats())
    _launch_dctcp(sim, FlowSpec(2, db.senders[1], db.receivers[1], flow_mb * MB,
                                0, scheme="dctcp"), FlowStats())
    horizon = duration_ms * MILLIS
    sim.run(until=horizon)
    return ThroughputFigure(
        f"Figure 9: {scheme} vs DCTCP", 1.0,
        {k: mon.series_gbps(k, horizon) for k in schemes.values()}, 10.0,
    )


# ------------------------------------------------- failure-recovery scenario


@dataclass
class FailureRecoveryReport:
    """§4.3 robustness scenario: a mid-transfer link outage on the
    bottleneck, recovered by each transport's loss-recovery machinery."""

    title: str
    down_ms: float
    up_ms: float
    rows_: List[Tuple[object, ...]]
    counters: "FaultCounters"

    def rows(self) -> List[Tuple[object, ...]]:
        return self.rows_

    def print_report(self) -> None:
        print(f"\n== {self.title} ==")
        print(format_table(
            ("flow", "completed", "delivered MB", "FCT (ms)", "rtx",
             "proactive rtx", "timeouts"),
            self.rows_,
        ))
        c = self.counters
        print(format_table(
            ("fault counter", "value"),
            [
                ("in-flight packets destroyed", c.discarded_in_flight),
                ("packets sent into dead link", c.dropped_link_down),
                ("route recomputations", c.reroutes),
                ("link failures / restores",
                 f"{c.link_failures} / {c.link_restores}"),
            ],
        ))


def failure_recovery(down_ms: float = 2.0, up_ms: float = 6.0,
                     flow_mb: int = 8,
                     horizon_ms: int = 100) -> FailureRecoveryReport:
    """One FlexPass and one DCTCP flow share a dumbbell whose bottleneck
    link dies mid-transfer and comes back ``up_ms - down_ms`` ms later.

    Everything in flight on the cable is destroyed and both directions eat
    packets until the repair; routes reconverge on both transitions. The
    paper's claim (§4.3) is that FlexPass recovers non-congestion losses
    through the reactive sub-flow and proactive retransmission — DCTCP
    recovers through its RTO — and both flows complete exactly once.
    """
    from repro.faults import LinkDownEvent, LinkUpEvent, schedule_failure_events

    sim = Simulator()
    db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                        DumbbellSpec(n_pairs=2))
    completions: List[int] = []

    def done(spec, stats):
        completions.append(spec.flow_id)

    fp_stats, dc_stats = FlowStats(), FlowStats()
    _launch_fp(sim, FlowSpec(1, db.senders[0], db.receivers[0], flow_mb * MB,
                             0, scheme="flexpass", group="new"),
               fp_stats, done)
    _launch_dctcp(sim, FlowSpec(2, db.senders[1], db.receivers[1],
                                flow_mb * MB, 0, scheme="dctcp"),
                  dc_stats, done)

    counters = schedule_failure_events(sim, db.topo, [
        LinkDownEvent(int(down_ms * MILLIS), "swL", "swR"),
        LinkUpEvent(int(up_ms * MILLIS), "swL", "swR"),
    ])
    sim.run(until=horizon_ms * MILLIS)

    def row(name, flow_id, stats):
        return (
            name,
            f"{'yes' if completions.count(flow_id) == 1 else 'NO'}"
            f" (x{completions.count(flow_id)})",
            f"{stats.delivered_bytes / MB:.1f}",
            f"{stats.fct_ns() / MILLIS:.2f}" if stats.completed else "-",
            stats.retransmissions,
            stats.proactive_retransmissions,
            stats.timeouts,
        )

    return FailureRecoveryReport(
        title=(f"Failure recovery: bottleneck down at {down_ms} ms, "
               f"repaired at {up_ms} ms"),
        down_ms=down_ms, up_ms=up_ms,
        rows_=[row("flexpass", 1, fp_stats), row("dctcp", 2, dc_stats)],
        counters=counters,
    )
