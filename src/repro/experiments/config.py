"""Experiment configuration.

One :class:`ExperimentConfig` fully determines a simulation run: topology,
deployment scheme, switch queue parameters (§6 settings), workload, load
level, deployment ratio, and seed. Defaults follow the paper's simulation
section scaled down for pure-Python execution speed; the paper-scale values
are documented inline and reachable via :meth:`ExperimentConfig.paper_scale`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.net.fabric.spec import TopologySpec

from repro.audit.config import AuditConfig
from repro.faults.plan import FaultPlan
from repro.metrics.telemetry import TelemetryConfig
from repro.net.topology import ClosSpec
from repro.sim.units import GBPS, KB, MICROS, MILLIS
from repro.workloads.gen import SourceConfig, TrafficConfig


class SchemeName(str, enum.Enum):
    """Deployment schemes compared in §6.2 (plus the Homa baseline of §2)."""

    DCTCP = "dctcp"          # baseline: nothing deployed
    NAIVE = "naive"          # ExpressPass dropped in beside legacy traffic
    OWF = "owf"              # oracle weighted fair queueing
    LAYERING = "ly"          # ExpressPass+ window overlay [45]
    FLEXPASS = "flexpass"
    FLEXPASS_RC3 = "flexpass_rc3"    # §4.3 RC3-splitting variant
    FLEXPASS_ALTQ = "flexpass_altq"  # §4.3 alternative-queueing variant
    HOMA = "homa"            # receiver-driven baseline sharing legacy queues


@dataclass
class QueueSettings:
    """Per-port queue parameters (§6.1 testbed / §6.2 simulation values).

    The paper quotes byte thresholds for 40 Gbps links (Q1 ECN 65 kB,
    selective dropping 150 kB, legacy ECN 100 kB). Queueing *delay* — what
    the FCT figures actually measure — is threshold/rate, so when left
    ``None`` the scenario builder scales each threshold with the port rate
    to keep the delay equal to the paper's. Set explicit byte values to
    pin them instead.
    """

    #: FlexPass queue weight w_q (Q1); legacy gets 1 - w_q.
    wq: float = 0.5
    #: ECN marking threshold on the FlexPass queue Q1 (65 kB at 40 Gbps).
    q1_ecn_bytes: Optional[int] = None
    #: Selective-dropping threshold for reactive bytes (150 kB at 40 Gbps).
    q1_seldrop_bytes: Optional[int] = None
    #: ECN marking threshold on the legacy queue (100 kB at 40 Gbps).
    q2_ecn_bytes: Optional[int] = None
    #: Credit queue static buffer (<1 kB per §4.1).
    credit_buffer_bytes: int = 1 * KB

    #: Paper anchor values at 40 Gbps, for rate-proportional scaling.
    Q1_ECN_AT_40G = 65 * KB
    Q1_SELDROP_AT_40G = 150 * KB
    Q2_ECN_AT_40G = 100 * KB


@dataclass
class ExperimentConfig:
    """Everything needed to run one simulation."""

    scheme: SchemeName = SchemeName.FLEXPASS
    #: fraction of racks upgraded to the new transport (0.0 - 1.0)
    deployment: float = 1.0
    workload: str = "websearch"
    load: float = 0.5
    #: fraction of traffic volume that is foreground incast (0 = Fig 10)
    foreground_fraction: float = 0.0
    foreground_request_bytes: int = 8 * KB
    sim_time_ns: int = 60 * MILLIS
    seed: int = 1
    clos: ClosSpec = field(default_factory=ClosSpec)
    #: declarative fabric (overrides ``clos`` when set); content-hashes into
    #: the cache key like every other field. See :mod:`repro.net.fabric`.
    topology_spec: Optional["TopologySpec"] = None
    #: locality matrix for declarative fabrics: fraction of traffic kept
    #: within the sender's region (None = uniform all-to-all)
    locality_intra: Optional[float] = None
    #: composed streaming traffic (None = legacy Poisson + incast path);
    #: when set, ``workload``/``foreground_fraction`` act only as defaults
    #: inside the block. See :mod:`repro.workloads.gen` and DESIGN.md §6k.
    traffic: Optional[TrafficConfig] = None
    queues: QueueSettings = field(default_factory=QueueSettings)
    #: divide workload flow sizes by this factor (keeps flow *count* high at
    #: Python-simulation scale; the small-flow FCT cutoff scales with it)
    size_scale: float = 1.0
    #: flows smaller than this count as "small" in tail-FCT metrics
    small_flow_cutoff_bytes: int = 100 * KB
    #: credit feedback update period
    update_period_ns: int = 40 * MICROS
    #: fault injection plan (None = clean fabric); see :mod:`repro.faults`
    faults: Optional[FaultPlan] = None
    #: time-series sampling (None = off); see :mod:`repro.metrics.telemetry`
    telemetry: Optional[TelemetryConfig] = None
    #: correctness auditing (None = off); see :mod:`repro.audit`
    audit: Optional[AuditConfig] = None
    #: watchdog: abort the simulation after this many events (None = off)
    max_events: Optional[int] = None
    #: watchdog: abort after this much real time in seconds (None = off)
    max_wall_seconds: Optional[float] = None

    def scaled_cutoff_bytes(self) -> int:
        return max(1, int(self.small_flow_cutoff_bytes / self.size_scale))

    @property
    def reference_rate_bps(self) -> int:
        """Host access rate the scheme parameters are derived from.

        Equals ``clos.rate_bps`` for the enum-named topologies (keeping
        their audit digests unchanged); declarative fabrics derive it from
        their host access links.
        """
        if self.topology_spec is not None:
            return self.topology_spec.access_rate_bps()
        return self.clos.rate_bps

    @classmethod
    def paper_scale(cls, **overrides) -> "ExperimentConfig":
        """The full §6.2 configuration (expensive in pure Python)."""
        cfg = cls(clos=ClosSpec.paper_scale(), **overrides)
        return cfg

    def with_(self, **overrides) -> "ExperimentConfig":
        return replace(self, **overrides)
