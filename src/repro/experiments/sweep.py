"""Deployment/parameter sweeps: Figures 5, 10-18 and the §6.2 queue study.

A *sweep* runs :func:`repro.experiments.runner.run_experiment` over a grid
and distills each run into a :class:`SweepCell`. One grid of runs feeds
Figures 10, 12, and 13 (they are different projections of the same data),
mirroring how the paper's artifact derives several figures from one batch
of ns-2 runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.metrics.summary import format_table
from repro.net.topology import ClosSpec
from repro.sim.units import MILLIS

#: Deployment points the paper sweeps (fractions of upgraded racks).
DEPLOYMENTS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: The four §6.2 schemes.
SWEEP_SCHEMES = (SchemeName.NAIVE, SchemeName.OWF, SchemeName.LAYERING,
                 SchemeName.FLEXPASS)


def default_sweep_config(**overrides) -> ExperimentConfig:
    """Scaled-down base config for Python-speed sweeps; pass paper-scale
    overrides (``clos=ClosSpec.paper_scale(), size_scale=1, ...``) for
    full-fidelity runs."""
    base = dict(
        workload="websearch",
        load=0.5,
        sim_time_ns=10 * MILLIS,
        size_scale=8.0,
        seed=1,
        clos=ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=2, hosts_per_tor=4),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@dataclass
class SweepCell:
    """Distilled metrics of one (scheme, deployment, ...) run."""

    scheme: str
    deployment: float
    load: float
    workload: str
    flows: int
    completed: int
    censored: int
    censored_small: int
    avg_all_ms: float
    p99_small_ms: float
    p99_small_new_ms: float
    p99_small_legacy_ms: float
    stddev_small_new_ms: float
    stddev_small_legacy_ms: float
    timeouts: int
    q1_avg_kb: float = 0.0
    q1_p90_kb: float = 0.0
    q1_avg_red_kb: float = 0.0
    q1_p90_red_kb: float = 0.0
    dropped_selective: int = 0
    proactive_rtx: int = 0
    duplicate_bytes: int = 0
    total_bytes: int = 0

    @classmethod
    def from_result(cls, res: ExperimentResult) -> "SweepCell":
        cfg = res.config
        return cls(
            scheme=cfg.scheme.value,
            deployment=cfg.deployment,
            load=cfg.load,
            workload=cfg.workload,
            flows=len(res.records),
            completed=res.completed,
            censored=res.fct().censored,
            censored_small=res.fct(small=True).censored,
            avg_all_ms=res.fct().avg_ms,
            p99_small_ms=res.fct(small=True).p99_ms,
            p99_small_new_ms=res.fct(small=True, group="new").p99_ms,
            p99_small_legacy_ms=res.fct(small=True, group="legacy").p99_ms,
            stddev_small_new_ms=res.fct(small=True, group="new").stddev_ms,
            stddev_small_legacy_ms=res.fct(small=True, group="legacy").stddev_ms,
            timeouts=res.total_timeouts,
            q1_avg_kb=res.q1_avg_kb,
            q1_p90_kb=res.q1_p90_kb,
            q1_avg_red_kb=res.q1_avg_red_kb,
            q1_p90_red_kb=res.q1_p90_red_kb,
            dropped_selective=res.counters.dropped_selective,
            proactive_rtx=sum(r.proactive_retransmissions for r in res.records),
            duplicate_bytes=sum(r.duplicate_bytes for r in res.records),
            total_bytes=sum(r.size_bytes for r in res.records if r.completed),
        )


GridKey = Tuple[str, float]


def deployment_sweep(base: ExperimentConfig,
                     schemes: Sequence[SchemeName] = SWEEP_SCHEMES,
                     deployments: Sequence[float] = DEPLOYMENTS,
                     sample_q1: bool = False) -> Dict[GridKey, SweepCell]:
    """Run the Figure 10/12/13 grid: schemes x deployment fractions.

    At deployment 0.0 every scheme degenerates to pure DCTCP, so that point
    is run once and shared.
    """
    grid: Dict[GridKey, SweepCell] = {}
    baseline: Optional[SweepCell] = None
    for scheme in schemes:
        for dep in deployments:
            if dep == 0.0:
                if baseline is None:
                    cfg = base.with_(scheme=SchemeName.DCTCP, deployment=0.0)
                    baseline = SweepCell.from_result(
                        run_experiment(cfg, sample_q1=sample_q1)
                    )
                grid[(scheme.value, 0.0)] = baseline
                continue
            cfg = base.with_(scheme=scheme, deployment=dep)
            grid[(scheme.value, dep)] = SweepCell.from_result(
                run_experiment(cfg, sample_q1=sample_q1)
            )
    return grid


# ------------------------------------------------------------- projections


def fig10_rows(grid: Dict[GridKey, SweepCell]):
    """Figure 10 (and 11 with a mixed-traffic grid): overall tail + average
    FCT per scheme per deployment point."""
    rows = []
    for (scheme, dep), cell in sorted(grid.items()):
        rows.append((scheme, f"{dep:.0%}", cell.p99_small_ms, cell.avg_all_ms,
                     cell.censored))
    return rows


def fig12_rows(grid: Dict[GridKey, SweepCell]):
    """Figure 12: 99p small-flow FCT split legacy vs upgraded."""
    rows = []
    for (scheme, dep), cell in sorted(grid.items()):
        rows.append((scheme, f"{dep:.0%}", cell.p99_small_legacy_ms,
                     cell.p99_small_new_ms))
    return rows


def fig13_rows(grid: Dict[GridKey, SweepCell]):
    """Figure 13: FCT standard deviation split legacy vs upgraded."""
    rows = []
    for (scheme, dep), cell in sorted(grid.items()):
        rows.append((scheme, f"{dep:.0%}", cell.stddev_small_legacy_ms,
                     cell.stddev_small_new_ms))
    return rows


def print_grid(title: str, rows, headers) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


# ---------------------------------------------------------------- Figure 14


def fig14_load_sweep(base: ExperimentConfig,
                     loads: Sequence[float] = (0.1, 0.4, 0.7),
                     deployments: Sequence[float] = DEPLOYMENTS,
                     schemes: Sequence[SchemeName] = (SchemeName.NAIVE,
                                                      SchemeName.FLEXPASS),
                     ) -> Dict[Tuple[str, float, float], SweepCell]:
    """Figure 14: 99p small-flow FCT vs deployment under different loads."""
    out: Dict[Tuple[str, float, float], SweepCell] = {}
    for load in loads:
        grid = deployment_sweep(base.with_(load=load), schemes, deployments)
        for (scheme, dep), cell in grid.items():
            out[(scheme, load, dep)] = cell
    return out


# ----------------------------------------------------------- Figures 15/16


def fig15_16_workloads(base: ExperimentConfig,
                       workloads: Sequence[str] = ("cachefollower", "websearch",
                                                   "datamining", "hadoop"),
                       schemes: Sequence[SchemeName] = SWEEP_SCHEMES,
                       deployments: Sequence[float] = (0.0, 0.5, 1.0),
                       ) -> Dict[Tuple[str, str, float], SweepCell]:
    """Figures 15 & 16: the deployment sweep across four realistic workloads."""
    out: Dict[Tuple[str, str, float], SweepCell] = {}
    for wl in workloads:
        grid = deployment_sweep(base.with_(workload=wl), schemes, deployments)
        for (scheme, dep), cell in grid.items():
            out[(wl, scheme, dep)] = cell
    return out


# ---------------------------------------------------------------- Figure 17


def fig17_seldrop_sweep(base: ExperimentConfig,
                        thresholds_kb: Sequence[int] = (50, 100, 150, 200),
                        ) -> List[Tuple[int, float, float]]:
    """Figure 17: selective-dropping threshold trade-off at full deployment.

    Returns (threshold_kB, p99_small_ms, avg_all_ms) per point.
    """
    out = []
    for kb in thresholds_kb:
        qs = base.queues.__class__(
            wq=base.queues.wq,
            q1_ecn_bytes=base.queues.q1_ecn_bytes,
            q1_seldrop_bytes=kb * 1000,
            q2_ecn_bytes=base.queues.q2_ecn_bytes,
        )
        cfg = base.with_(scheme=SchemeName.FLEXPASS, deployment=1.0, queues=qs)
        cell = SweepCell.from_result(run_experiment(cfg))
        out.append((kb, cell.p99_small_ms, cell.avg_all_ms))
    return out


# ---------------------------------------------------------------- Figure 18


def fig18_wq_sweep(base: ExperimentConfig,
                   wqs: Sequence[float] = (0.4, 0.45, 0.5, 0.55, 0.6),
                   mid_deployment: float = 0.5,
                   ) -> List[Tuple[float, float, float]]:
    """Figure 18: queue-weight w_q trade-off.

    Returns (wq, max_legacy_p99_degradation, p99_small_at_full) per point.
    Degradation is relative to the all-DCTCP baseline.
    """
    baseline = SweepCell.from_result(run_experiment(
        base.with_(scheme=SchemeName.DCTCP, deployment=0.0)
    ))
    out = []
    for wq in wqs:
        qs = base.queues.__class__(
            wq=wq,
            q1_ecn_bytes=base.queues.q1_ecn_bytes,
            q1_seldrop_bytes=base.queues.q1_seldrop_bytes,
            q2_ecn_bytes=base.queues.q2_ecn_bytes,
        )
        mid = SweepCell.from_result(run_experiment(
            base.with_(scheme=SchemeName.FLEXPASS, deployment=mid_deployment,
                       queues=qs)
        ))
        full = SweepCell.from_result(run_experiment(
            base.with_(scheme=SchemeName.FLEXPASS, deployment=1.0, queues=qs)
        ))
        degradation = (mid.p99_small_legacy_ms / baseline.p99_small_ms) - 1.0
        out.append((wq, degradation, full.p99_small_ms))
    return out


# ----------------------------------------------------------------- Figure 5


@dataclass
class Fig5aResult:
    scheme: str
    p99_small_ms: float
    avg_max_reorder_kb: float


def fig05a_rc3_comparison(base: ExperimentConfig) -> List[Fig5aResult]:
    """Figure 5(a): FlexPass vs RC3-style flow splitting — comparable tail
    FCT, much smaller reordering buffer for FlexPass."""
    out = []
    for scheme in (SchemeName.FLEXPASS, SchemeName.FLEXPASS_RC3):
        res = run_experiment(base.with_(scheme=scheme, deployment=1.0))
        completed = [r for r in res.records if r.completed]
        reorder = ([r.max_reorder_bytes for r in completed] or [0])
        out.append(Fig5aResult(
            scheme.value,
            res.fct(small=True).p99_ms,
            sum(reorder) / len(reorder) / 1000,
        ))
    return out


def fig05b_altq_comparison(base: ExperimentConfig,
                           deployments: Sequence[float] = DEPLOYMENTS,
                           ) -> Dict[GridKey, SweepCell]:
    """Figure 5(b): FlexPass vs the alternative queueing scheme (§4.3)."""
    return deployment_sweep(
        base, (SchemeName.FLEXPASS, SchemeName.FLEXPASS_ALTQ), deployments
    )


# ------------------------------------------------------ §6.2 bounded queue


def queue_occupancy_study(base: ExperimentConfig,
                          deployments: Sequence[float] = (0.5, 1.0),
                          ) -> List[Tuple[float, float, float, float, float]]:
    """The §6.2 'Bounded queue' numbers: Q1 occupancy avg/p90 (total and
    reactive-red) at mid and full deployment."""
    out = []
    for dep in deployments:
        cell = SweepCell.from_result(run_experiment(
            base.with_(scheme=SchemeName.FLEXPASS, deployment=dep),
            sample_q1=True,
        ))
        out.append((dep, cell.q1_avg_kb, cell.q1_p90_kb,
                    cell.q1_avg_red_kb, cell.q1_p90_red_kb))
    return out
