"""Durable sweep fabric: persistent work queue, leases, crash-resume.

``run_many`` streams a config grid through a process pool — fast, but a
killed host, a wedged worker, or a full disk loses the whole run. The
fabric (DESIGN.md §6g) makes thousand-cell sweeps — the paper's Figs
10–11 deployment grids and every load × locality × burstiness crossover
study beyond them — survivable:

* **Persistent work queue.** Cell states (``pending → leased →
  done/failed``) live in an append-only JSONL journal beside a pickled
  copy of the grid. Every transition is one ``O_APPEND`` line (atomic on
  POSIX for our line sizes); verdict lines (``done``/``fail``) are
  fsynced. Replaying the journal reconstructs the queue exactly, so
  ``kill -9`` at any instant costs at most the cells that were in
  flight.
* **Leases + heartbeats.** A dispatched cell carries a wall-clock lease;
  the worker heartbeats while simulating. A dead or stalled worker's
  lease expires and the coordinator re-queues the cell (consuming one
  attempt, so a config that wedges every worker still terminates).
* **Bounded retries.** Failures re-queue with seeded exponential backoff
  + jitter (:func:`repro.experiments.parallel.retry_delay_s`) up to
  ``max_retries`` extra attempts, then the cell is *exhausted*: the
  sweep still completes, returning a :class:`FailedResult` in that slot
  and listing the cell in the machine-readable
  :class:`CompletionReport`.
* **Backend-abstracted results.** Workers write results straight into a
  :class:`repro.experiments.store.ResultStore` (local directory or
  WAL-mode SQLite) and check it before simulating — so a resumed sweep
  recomputes zero stored cells, duplicate configs in one grid (every
  scheme's 0 %-deployment point hashes identically) simulate once, and
  multiple hosts sharing a store dedup across the fleet.

The journal directory is the unit of resume::

    fabric = SweepFabric("sweeps/fig10", store="sqlite:results.db")
    results = fabric.run(configs)          # or run_many(configs, coordinator=fabric)
    # ... kill -9 anywhere above, then later:
    results = SweepFabric("sweeps/fig10").run()   # picks up where it died

``repro sweep start/resume/status`` and ``tools/run_simulations.py
--store/--resume`` wrap exactly this.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    DEFAULT_MAX_TASKS_PER_CHILD,
    FailedResult,
    _worker,
    retry_delay_s,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.store import (
    ResultStore,
    StoreSpec,
    decode_result,
    encode_result,
    open_store,
)

import logging

logger = logging.getLogger(__name__)

JOURNAL_NAME = "journal.jsonl"
GRID_NAME = "grid.pkl"
REPORT_NAME = "report.json"

#: Tracebacks are truncated to this many characters in ``fail`` journal
#: lines, keeping every line comfortably under the POSIX atomic-append
#: size so concurrent writers cannot interleave mid-line.
MAX_JOURNAL_TB = 2000

# Cell states after journal replay.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
EXHAUSTED = "exhausted"


class JournalError(RuntimeError):
    """The journal is missing, unreadable, or does not match the grid."""


def append_line(path: Union[str, Path], obj: dict, sync: bool = False) -> None:
    """Append one JSON line with a single ``O_APPEND`` write.

    Safe for concurrent writers (coordinator + every worker heartbeat
    thread): each line is one ``write(2)`` call well under the atomic
    append size. ``sync`` fsyncs — used for verdict lines whose loss
    would cost a re-execution.
    """
    data = (json.dumps(obj, separators=(",", ":")) + "\n").encode()
    fd = os.open(os.fspath(path), os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                 0o644)
    try:
        os.write(fd, data)
        if sync:
            os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class FabricConfig:
    """Execution policy for a durable sweep (picklable, journal-free)."""

    #: worker processes (None = one per CPU, capped by pending cells)
    processes: Optional[int] = None
    #: extra attempts after the first failure before a cell is exhausted
    max_retries: int = 2
    #: backoff base for retry N: ``base * 2**(N-1)`` + seeded jitter
    retry_base_s: float = 0.0
    #: seed for the backoff jitter (kept distinct from sim seeds)
    retry_seed: int = 0
    #: wall-clock lease per execution; expiry re-queues the cell
    lease_s: float = 300.0
    #: worker heartbeat period; each heartbeat renews the lease
    heartbeat_s: float = 5.0
    #: recycle pool workers after this many cells (leak containment)
    max_tasks_per_child: Optional[int] = DEFAULT_MAX_TASKS_PER_CHILD
    #: coordinator poll period while cells are in flight
    poll_s: float = 0.05


@dataclass
class CellState:
    """One cell's reconstructed state after journal replay."""

    index: int
    status: str = PENDING
    attempts: int = 0       # verdict-producing executions consumed
    executions: int = 0     # times a worker actually started simulating
    deadline: float = 0.0   # wall-clock lease expiry while LEASED
    cached: bool = False    # last completion came from the store
    error: str = ""
    traceback: str = ""
    worker_pid: int = 0
    wall_seconds: float = 0.0
    stale_verdicts: int = 0  # verdicts from superseded (expired) attempts


@dataclass
class CompletionReport:
    """Machine-readable outcome of one coordinator invocation."""

    sweep_id: str
    status: str                    # "complete" | "partial"
    total: int
    completed: int
    failed: List[dict]             # index, key, error, attempts, pid, wall_s
    executed: int                  # simulations actually run this invocation
    store_hits: int                # cells served from the result store
    retries: int
    expired_leases: int
    wall_seconds: float
    store: str
    #: expired attempts whose worker turned out to be alive and finished
    #: anyway — the verdict was discarded, but the cell may have simulated
    #: twice (its store write is still valid: same key, same bytes).
    duplicate_executions: int = 0
    store_stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, path: Union[str, Path]) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)


# --------------------------------------------------------------- journal


class SweepJournal:
    """The durable work queue: a grid snapshot + an append-only log.

    Layout under ``self.dir``::

        grid.pkl       pickled (version, salt, store spec, keys, configs)
        journal.jsonl  one JSON line per state transition
        report.json    CompletionReport of the latest invocation
    """

    GRID_VERSION = 1

    def __init__(self, directory: Union[str, Path]):
        self.dir = Path(directory)
        self.journal_path = self.dir / JOURNAL_NAME
        self.grid_path = self.dir / GRID_NAME
        self.report_path = self.dir / REPORT_NAME

    def exists(self) -> bool:
        return self.journal_path.exists() and self.grid_path.exists()

    # ------------------------------------------------------------ create

    def create(self, configs: Sequence[ExperimentConfig], store_spec: str,
               salt: Optional[str] = None) -> str:
        """Snapshot the grid and open the journal; returns the sweep id.

        The salt is resolved *now* (explicit > ``REPRO_CACHE_SALT`` >
        default) and pinned in the snapshot: a resume keys into the same
        store entries even if the surrounding code bumps the default
        salt mid-campaign.
        """
        import pickle

        from repro.experiments.cache import (
            DEFAULT_CODE_SALT,
            config_key,
        )

        if self.exists():
            raise JournalError(f"journal already exists at {self.dir}; "
                               f"resume it or choose a fresh directory")
        if not configs:
            raise JournalError("cannot create a sweep with zero cells")
        salt = salt or os.environ.get("REPRO_CACHE_SALT", DEFAULT_CODE_SALT)
        keys = [config_key(cfg, salt) for cfg in configs]
        sweep_id = hashlib.sha256(
            ("\n".join(keys) + store_spec).encode()).hexdigest()[:12]
        self.dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": self.GRID_VERSION,
            "sweep_id": sweep_id,
            "salt": salt,
            "store": store_spec,
            "keys": keys,
            "configs": list(configs),
        }
        tmp = self.grid_path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.grid_path)
        self.append({"op": "init", "sweep": sweep_id, "cells": len(configs),
                     "store": store_spec, "salt": salt, "t": time.time()},
                    sync=True)
        return sweep_id

    # -------------------------------------------------------------- load

    def load_grid(self) -> dict:
        import pickle

        if not self.exists():
            raise JournalError(f"no sweep journal at {self.dir} "
                               f"(expected {GRID_NAME} + {JOURNAL_NAME})")
        with open(self.grid_path, "rb") as fh:
            grid = pickle.load(fh)
        if grid.get("version") != self.GRID_VERSION:
            raise JournalError(
                f"grid snapshot version {grid.get('version')!r} != "
                f"{self.GRID_VERSION}; this journal was written by an "
                f"incompatible fabric")
        return grid

    def verify_grid(self, grid: dict) -> None:
        """Re-key the snapshot's configs and compare: catches config
        canonicalization drift that would silently mis-key the store."""
        from repro.experiments.cache import config_key

        keys = [config_key(cfg, grid["salt"]) for cfg in grid["configs"]]
        if keys != grid["keys"]:
            raise JournalError(
                "config keys no longer match the grid snapshot — the "
                "config schema or canonicalization changed since this "
                "sweep started; start a fresh sweep (results in the store "
                "remain valid under their original keys)")

    def append(self, obj: dict, sync: bool = False) -> None:
        append_line(self.journal_path, obj, sync=sync)

    def replay(self, n_cells: int, lease_s: float) -> List[CellState]:
        """Fold the journal into per-cell states.

        Torn tail lines (a crash mid-append) are skipped; unknown ops are
        ignored so newer fabrics can extend the format.

        An expired lease supersedes its attempt: a worker the coordinator
        gave up on may still be running (`expire` cannot cancel it), and
        its `done`/`fail` lines can land arbitrarily late — even after a
        `requeue` or `exhausted` for the same cell. Verdicts from
        attempts below the cell's lowest still-live attempt are therefore
        counted as stale and otherwise ignored, so a zombie can never
        flip an exhausted cell or double-charge an attempt. Lines with no
        ``attempt`` field (older journals) are always treated as live.
        """
        cells = [CellState(i) for i in range(n_cells)]
        min_live = [1] * n_cells  # lowest attempt whose verdict counts
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            raise JournalError(f"no journal at {self.journal_path}")
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                op = json.loads(line)
            except ValueError:
                continue  # torn tail line from a crash mid-append
            kind = op.get("op")
            idx = op.get("cell")
            if idx is None or not (0 <= idx < n_cells):
                continue
            cell = cells[idx]
            attempt = op.get("attempt")
            stale = attempt is not None and attempt < min_live[idx]
            if kind == "lease":
                cell.status = LEASED
                cell.deadline = op.get("deadline",
                                       op.get("t", 0.0) + lease_s)
            elif kind == "hb":
                if cell.status == LEASED and not stale:
                    cell.deadline = op.get("t", 0.0) + lease_s
            elif kind == "run":
                cell.executions += 1
                if not stale:
                    cell.worker_pid = op.get("pid", 0)
            elif kind == "done":
                if stale:
                    cell.stale_verdicts += 1
                    continue
                cell.status = DONE
                cell.cached = bool(op.get("cached"))
                cell.wall_seconds = op.get("wall_s", 0.0)
            elif kind == "fail":
                if stale:
                    cell.stale_verdicts += 1
                    continue
                cell.status = PENDING
                cell.attempts = max(cell.attempts, op.get("attempt", 1))
                cell.error = op.get("error", "")
                cell.traceback = op.get("tb", "")
                cell.worker_pid = op.get("pid", 0)
                cell.wall_seconds = op.get("wall_s", 0.0)
            elif kind == "expire":
                expired_attempt = op.get("attempt", 1)
                min_live[idx] = max(min_live[idx], expired_attempt + 1)
                cell.status = PENDING
                cell.attempts = max(cell.attempts, expired_attempt)
                cell.error = cell.error or "lease expired (worker dead or stalled)"
            elif kind == "requeue":
                if attempt is not None:
                    min_live[idx] = max(min_live[idx], attempt)
                cell.status = PENDING
            elif kind == "exhausted":
                cell.status = EXHAUSTED
                cell.attempts = max(cell.attempts, op.get("attempts", 1))
        return cells


# ---------------------------------------------------------------- worker


def _heartbeat_loop(journal_path: str, index: int, pid: int, attempt: int,
                    period_s: float, stop: threading.Event) -> None:
    while not stop.wait(period_s):
        try:
            append_line(journal_path, {"op": "hb", "cell": index, "pid": pid,
                                       "attempt": attempt, "t": time.time()})
        except OSError:  # heartbeat loss is safe: worst case a re-queue
            pass


def _fabric_cell(item: Tuple) -> Tuple[int, str, object]:
    """Pool task: execute one cell against the shared store + journal.

    Returns ``(index, verdict, payload)`` where verdict is ``"done"``
    (payload None — the parent reads the store), ``"inline"`` (payload is
    the encoded result: the store refused or failed the write, so the
    bytes ride back over the pipe instead of being lost), or ``"failed"``
    (payload is the stamped :class:`FailedResult`).
    """
    index, cfg, store_spec, salt, journal_path, heartbeat_s, attempt = item
    pid = os.getpid()
    start = time.monotonic()
    store = open_store(store_spec, salt=salt)
    try:
        hit = store.get(cfg)
        if hit is not None:
            append_line(journal_path,
                        {"op": "done", "cell": index, "pid": pid,
                         "attempt": attempt, "cached": True,
                         "t": time.time()}, sync=True)
            return index, "done", None
        append_line(journal_path,
                    {"op": "run", "cell": index, "pid": pid,
                     "attempt": attempt, "t": time.time()})
        stop = threading.Event()
        hb = threading.Thread(
            target=_heartbeat_loop,
            args=(journal_path, index, pid, attempt, heartbeat_s, stop),
            daemon=True)
        hb.start()
        try:
            result = _worker(cfg)
        finally:
            stop.set()
            hb.join(timeout=heartbeat_s + 1.0)
        wall = time.monotonic() - start
        if isinstance(result, FailedResult):
            result.attempts = attempt
            result.retried = attempt > 1
            result.worker_pid = pid
            result.wall_seconds = wall
            append_line(journal_path,
                        {"op": "fail", "cell": index, "pid": pid,
                         "attempt": attempt, "error": result.error,
                         "tb": result.traceback[-MAX_JOURNAL_TB:],
                         "wall_s": wall, "t": time.time()}, sync=True)
            return index, "failed", result
        stored = store.put(cfg, result)
        append_line(journal_path,
                    {"op": "done", "cell": index, "pid": pid,
                     "attempt": attempt, "cached": False, "stored": stored,
                     "wall_s": wall, "t": time.time()}, sync=True)
        if stored:
            return index, "done", None
        # Aborted result or store write failure: the store has nothing,
        # so the payload must cross the pipe or the work is lost.
        return index, "inline", encode_result(result)
    finally:
        store.close()


# ------------------------------------------------------------ coordinator


class SweepFabric:
    """Durable sweep coordinator over a journal directory.

    First ``run(configs)`` creates the journal; any later ``run()`` —
    same process or a fresh one after ``kill -9`` — resumes it. The
    return contract matches :func:`repro.experiments.parallel.run_many`:
    one entry per cell in grid order, :class:`FailedResult` for cells
    that exhausted their retries. ``last_report`` holds the
    :class:`CompletionReport` (also written to ``report.json``).
    """

    def __init__(self, journal_dir: Union[str, Path],
                 store: Optional[StoreSpec] = None,
                 config: Optional[FabricConfig] = None,
                 salt: Optional[str] = None):
        self.journal = SweepJournal(journal_dir)
        self.config = config or FabricConfig()
        self._store_arg = store
        self._salt_arg = salt
        self.last_report: Optional[CompletionReport] = None

    # ------------------------------------------------------------- setup

    def _open(self, configs: Optional[Sequence[ExperimentConfig]]):
        """Create or resume the journal; returns (grid, store)."""
        if self.journal.exists():
            grid = self.journal.load_grid()
            self.journal.verify_grid(grid)
            if configs is not None:
                from repro.experiments.cache import config_key

                salt = grid["salt"]
                if [config_key(c, salt) for c in configs] != grid["keys"]:
                    raise JournalError(
                        f"the {len(configs)} config(s) passed to run() do "
                        f"not match the grid recorded at "
                        f"{self.journal.dir}; resume with run() or start a "
                        f"fresh journal directory")
            if isinstance(self._store_arg, ResultStore):
                override = self._store_arg.spec
            elif self._store_arg is not None:
                override = os.fspath(self._store_arg)
            else:
                override = None
            if override is not None and override != grid["store"]:
                logger.warning(
                    "resuming sweep %s against store %s (journal recorded "
                    "%s); cells already in the new store are reused, the "
                    "rest re-run", grid["sweep_id"], override,
                    grid["store"])
                grid = dict(grid, store=override)
        else:
            if configs is None:
                raise JournalError(
                    f"no sweep to resume at {self.journal.dir}; pass "
                    f"configs to start one")
            seed_store = open_store(
                self._store_arg if self._store_arg is not None
                else self.journal.dir / "store",
                salt=self._salt_arg)
            sweep_id = self.journal.create(configs, seed_store.spec,
                                           salt=self._salt_arg)
            seed_store.close()
            grid = self.journal.load_grid()
            logger.info("sweep %s created: %d cells -> %s",
                        sweep_id, len(configs), seed_store.spec)
        # Always reopen from the journal's spec with its pinned salt —
        # even when a live ResultStore was passed in — so parent-side
        # lookups key identically to the workers'.
        store = open_store(grid["store"], salt=grid["salt"])
        return grid, store

    # --------------------------------------------------------------- run

    def run(self, configs: Optional[Sequence[ExperimentConfig]] = None,
            processes: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None,
            ) -> List[Union[ExperimentResult, FailedResult]]:
        t_start = time.monotonic()
        cfg = self.config
        grid, store = self._open(configs)
        cells: List[ExperimentConfig] = grid["configs"]
        keys: List[str] = grid["keys"]
        total = len(cells)
        states = self.journal.replay(total, cfg.lease_s)
        journal_start = self.journal.journal_path.stat().st_size

        results: List[Optional[Union[ExperimentResult, FailedResult]]] = (
            [None] * total)
        executed = 0
        store_hits = 0
        retries = 0
        expired = 0
        duplicates = 0

        # Resume pre-pass: harvest finished cells, re-queue the dead.
        ready: deque = deque()  # (ready_at_monotonic, index, attempt)
        now_mono = time.monotonic()
        for st in states:
            i = st.index
            if st.status == DONE:
                res = store.get(cells[i])
                if res is not None:
                    results[i] = res
                    store_hits += 1
                    continue
                # Journal says done but the store lost it — re-queue.
                self.journal.append({"op": "requeue", "cell": i,
                                     "attempt": st.attempts + 1,
                                     "t": time.time()})
                st.status = PENDING
            if st.status == EXHAUSTED:
                # A superseded attempt may have finished after the cell
                # was written off (expiry cannot cancel a running worker)
                # and stored a valid result — serve it rather than
                # re-reporting a failure that self-healed.
                res = store.get(cells[i])
                if res is not None:
                    self.journal.append(
                        {"op": "done", "cell": i, "attempt": st.attempts + 1,
                         "cached": True, "t": time.time()}, sync=True)
                    results[i] = res
                    continue
                results[i] = self._failed_from_state(cells[i], st)
                continue
            # PENDING — and LEASED: a lease can only be live if another
            # coordinator is running this journal, which is unsupported;
            # after kill -9 every leased cell is dead. The interrupted
            # attempt produced no verdict, so it is not charged.
            ready.append((now_mono, i, st.attempts + 1))

        done_count = sum(1 for r in results if r is not None)
        if progress is not None and done_count:
            progress(done_count, total)
        if ready:
            if processes is None:
                processes = cfg.processes
            if processes is None:
                processes = os.cpu_count() or 1
            processes = max(1, min(processes, len(ready)))
            retries, expired, duplicates = self._execute(
                ready, cells, keys, grid, store, results, processes,
                progress, done_count)
        executed, cached_dones = self._journal_counts(journal_start)
        store_hits += cached_dones

        failed_cells = [
            {"index": i, "key": keys[i], "error": r.error,
             "attempts": r.attempts, "worker_pid": r.worker_pid,
             "wall_seconds": round(r.wall_seconds, 3)}
            for i, r in enumerate(results) if isinstance(r, FailedResult)
        ]
        report = CompletionReport(
            sweep_id=grid["sweep_id"],
            status="partial" if failed_cells else "complete",
            total=total,
            completed=total - len(failed_cells),
            failed=failed_cells,
            executed=executed,
            store_hits=store_hits,
            retries=retries,
            expired_leases=expired,
            wall_seconds=round(time.monotonic() - t_start, 3),
            store=grid["store"],
            duplicate_executions=duplicates,
            store_stats=store.stats(),
        )
        report.write(self.journal.report_path)
        self.journal.append({"op": "complete", "status": report.status,
                             "completed": report.completed,
                             "failed": len(failed_cells),
                             "t": time.time()}, sync=True)
        self.last_report = report
        logger.info("sweep %s %s: %d/%d cells, %d executed, %d store hits, "
                    "%d retries, %d expired leases",
                    report.sweep_id, report.status, report.completed, total,
                    executed, store_hits, retries, expired)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # ----------------------------------------------------- execution loop

    def _execute(self, ready, cells, keys, grid, store, results,
                 processes, progress, done_count):
        """Drive pending cells to a verdict; returns ``(retries, expired,
        duplicates)`` — execution/hit counts are read back from the
        journal, which both serial and pooled paths append identically."""
        cfg = self.config
        total = len(cells)
        journal_path = os.fspath(self.journal.journal_path)
        retries = expired = 0
        attempts_cap = cfg.max_retries + 1

        def make_item(i, attempt):
            return (i, cells[i], grid["store"], grid["salt"], journal_path,
                    cfg.heartbeat_s, attempt)

        def note(i):
            nonlocal done_count
            done_count += 1
            if progress is not None:
                progress(done_count, total)

        def harvest(i, verdict, payload, attempt):
            """Fold one worker verdict into results/queue state."""
            nonlocal retries
            if verdict == "done":
                res = store.get(cells[i])
                if res is None:
                    # done but unreadable (e.g. torn by a dying disk):
                    # treat like a lease failure and re-queue.
                    if self._requeue_or_exhaust(
                            i, attempt, "store entry unreadable after done",
                            ready, results, cells, note):
                        retries += 1
                    return None
                results[i] = res
                note(i)
            elif verdict == "inline":
                results[i] = decode_result(payload)
                note(i)
            else:  # failed
                if attempt < attempts_cap:
                    retries += 1
                    delay = retry_delay_s(attempt, cfg.retry_base_s,
                                          cfg.retry_seed, i)
                    self.journal.append(
                        {"op": "requeue", "cell": i, "attempt": attempt + 1,
                         "delay_s": round(delay, 3), "t": time.time()})
                    ready.append((time.monotonic() + delay, i, attempt + 1))
                else:
                    self.journal.append(
                        {"op": "exhausted", "cell": i, "attempts": attempt,
                         "t": time.time()}, sync=True)
                    results[i] = payload
                    note(i)
            return None

        if processes <= 1:
            # Serial path: same journal discipline, no pool. Lease expiry
            # is moot (nothing can monitor the in-process worker), but the
            # lease lines keep the journal format identical.
            while ready:
                ready_at, i, attempt = min(ready)
                ready.remove((ready_at, i, attempt))
                delay = ready_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                self.journal.append(
                    {"op": "lease", "cell": i, "attempt": attempt,
                     "deadline": time.time() + cfg.lease_s,
                     "t": time.time()})
                _, verdict, payload = _fabric_cell(make_item(i, attempt))
                harvest(i, verdict, payload, attempt)
            return retries, expired, 0

        outstanding: Dict[int, Tuple] = {}  # i -> (async, deadline, attempt)
        inflight_keys: Dict[str, int] = {}
        # Expired-but-uncancellable tasks: apply_async gives no way to
        # revoke a dispatched cell, so an expired attempt may still be
        # queued or running. Its verdict is superseded (harvest ignores
        # it, replay skips it by attempt number), but we keep the handle
        # to count attempts that completed anyway — duplicate executions.
        zombies: List[Tuple[int, object]] = []
        duplicates = 0
        tail_pos = self.journal.journal_path.stat().st_size
        pool = multiprocessing.Pool(
            processes=processes, maxtasksperchild=cfg.max_tasks_per_child)
        try:
            while ready or outstanding:
                now = time.monotonic()
                # Dispatch ready cells whose backoff has elapsed — but
                # never more than the pool has workers, so the lease
                # clock starts when a worker can actually pick the task
                # up. Dispatching the whole backlog at once would start
                # every lease at submit time and falsely expire any cell
                # whose pool-queue wait exceeded lease_s. Duplicate
                # content hashes (e.g. the shared 0%-deployment point)
                # defer behind their in-flight leader and then hit the
                # store instead of simulating twice.
                deferred = deque()
                while ready and len(outstanding) < processes:
                    ready_at, i, attempt = min(ready)
                    if ready_at > now:
                        break
                    ready.remove((ready_at, i, attempt))
                    leader = inflight_keys.get(keys[i])
                    if leader is not None and leader != i:
                        deferred.append((ready_at, i, attempt))
                        continue
                    self.journal.append(
                        {"op": "lease", "cell": i, "attempt": attempt,
                         "deadline": time.time() + cfg.lease_s,
                         "t": time.time()})
                    async_res = pool.apply_async(_fabric_cell,
                                                 (make_item(i, attempt),))
                    outstanding[i] = (async_res, time.time() + cfg.lease_s,
                                      attempt)
                    inflight_keys[keys[i]] = i
                ready.extend(deferred)

                # Tail the journal for worker heartbeats: each renews its
                # cell's lease.
                tail_pos = self._renew_leases(tail_pos, outstanding,
                                              cfg.lease_s)

                # Harvest completions.
                for i in [i for i, (ar, _, _) in outstanding.items()
                          if ar.ready()]:
                    ar, _, attempt = outstanding.pop(i)
                    if inflight_keys.get(keys[i]) == i:
                        del inflight_keys[keys[i]]
                    try:
                        index, verdict, payload = ar.get()
                    except Exception as exc:  # noqa: BLE001 - pool plumbing
                        # The task itself never raises; this is pool-level
                        # breakage (unpicklable payload, dead machinery).
                        if self._requeue_or_exhaust(
                                i, attempt, f"pool failure: {exc!r}",
                                ready, results, cells, note):
                            retries += 1
                        continue
                    harvest(i, verdict, payload, attempt)

                # Expire dead leases. The task itself cannot be
                # cancelled; it becomes a zombie whose verdict is
                # superseded by the expire line.
                now_wall = time.time()
                for i in [i for i, (_, dl, _) in outstanding.items()
                          if dl < now_wall]:
                    ar, _, attempt = outstanding.pop(i)
                    if inflight_keys.get(keys[i]) == i:
                        del inflight_keys[keys[i]]
                    expired += 1
                    zombies.append((i, ar))
                    self.journal.append(
                        {"op": "expire", "cell": i, "attempt": attempt,
                         "t": now_wall}, sync=True)
                    logger.warning(
                        "lease expired for cell %d (attempt %d) — worker "
                        "dead or stalled; re-queueing", i, attempt)
                    if self._requeue_or_exhaust(
                            i, attempt,
                            "lease expired (worker dead or stalled)",
                            ready, results, cells, note):
                        retries += 1

                # Reap zombies that ran to completion despite expiry:
                # their verdict is discarded (the re-queued attempt owns
                # the cell now), but a successful zombie's store write
                # still serves later attempts, and the count surfaces in
                # the report as duplicate_executions.
                if zombies:
                    still = []
                    for zi, zar in zombies:
                        if zar.ready():
                            duplicates += 1
                            logger.info(
                                "expired attempt for cell %d completed "
                                "anyway; verdict discarded", zi)
                        else:
                            still.append((zi, zar))
                    zombies = still

                if ready or outstanding:
                    time.sleep(cfg.poll_s)
        finally:
            pool.terminate()
            pool.join()
        return retries, expired, duplicates

    # ----------------------------------------------------------- helpers

    def _requeue_or_exhaust(self, i, attempt, error, ready, results, cells,
                            note=None) -> bool:
        """Re-queue the cell for another attempt if its budget allows
        (returns True), else record it exhausted (returns False)."""
        cfg = self.config
        if attempt < cfg.max_retries + 1:
            delay = retry_delay_s(attempt, cfg.retry_base_s, cfg.retry_seed,
                                  i)
            self.journal.append(
                {"op": "requeue", "cell": i, "attempt": attempt + 1,
                 "delay_s": round(delay, 3), "t": time.time()})
            ready.append((time.monotonic() + delay, i, attempt + 1))
            return True
        self.journal.append(
            {"op": "exhausted", "cell": i, "attempts": attempt,
             "t": time.time()}, sync=True)
        results[i] = FailedResult(
            config=cells[i], error=error, traceback="",
            retried=attempt > 1, attempts=attempt)
        if note is not None:
            note(i)
        return False

    def _renew_leases(self, tail_pos: int, outstanding: Dict[int, Tuple],
                      lease_s: float) -> int:
        """Read journal lines appended since ``tail_pos``; worker
        heartbeats (and ``run`` lines) renew their cell's lease."""
        try:
            size = self.journal.journal_path.stat().st_size
        except OSError:
            return tail_pos
        if size <= tail_pos:
            return tail_pos
        with open(self.journal.journal_path, "rb") as fh:
            fh.seek(tail_pos)
            chunk = fh.read(size - tail_pos)
        # Only consume complete lines; a partially-flushed tail waits.
        end = chunk.rfind(b"\n")
        if end < 0:
            return tail_pos
        for line in chunk[:end].splitlines():
            try:
                op = json.loads(line)
            except ValueError:
                continue
            if op.get("op") in ("hb", "run"):
                i = op.get("cell")
                if i in outstanding:
                    ar, _, attempt = outstanding[i]
                    line_attempt = op.get("attempt")
                    if line_attempt is not None and line_attempt != attempt:
                        continue  # zombie heartbeat from a superseded attempt
                    outstanding[i] = (ar, op.get("t", time.time()) + lease_s,
                                      attempt)
        return tail_pos + end + 1

    def _journal_counts(self, since: int) -> Tuple[int, int]:
        """(simulations started, store-served completions) appended to the
        journal after byte offset ``since`` — i.e. by this invocation."""
        runs = cached = 0
        try:
            with open(self.journal.journal_path, "rb") as fh:
                fh.seek(since)
                raw = fh.read()
        except OSError:
            return 0, 0
        for line in raw.splitlines():
            try:
                op = json.loads(line)
            except ValueError:
                continue
            if op.get("op") == "run":
                runs += 1
            elif op.get("op") == "done" and op.get("cached"):
                cached += 1
        return runs, cached

    @staticmethod
    def _failed_from_state(config: ExperimentConfig,
                           st: CellState) -> FailedResult:
        return FailedResult(
            config=config,
            error=st.error or "exhausted retries",
            traceback=st.traceback,
            retried=st.attempts > 1,
            attempts=st.attempts,
            worker_pid=st.worker_pid,
            wall_seconds=st.wall_seconds,
        )


# ------------------------------------------------------------ status API


def sweep_status(journal_dir: Union[str, Path],
                 lease_s: float = FabricConfig.lease_s) -> dict:
    """Summarize a journal directory without touching the store or pool."""
    journal = SweepJournal(journal_dir)
    grid = journal.load_grid()
    states = journal.replay(len(grid["configs"]), lease_s)
    by_status: Dict[str, int] = {}
    for st in states:
        by_status[st.status] = by_status.get(st.status, 0) + 1
    executed = sum(st.executions for st in states)
    failed = [
        {"index": st.index, "attempts": st.attempts, "error": st.error}
        for st in states if st.status == EXHAUSTED
    ]
    report = None
    if journal.report_path.exists():
        try:
            report = json.loads(journal.report_path.read_text())
        except ValueError:
            report = None
    return {
        "sweep_id": grid["sweep_id"],
        "store": grid["store"],
        "salt": grid["salt"],
        "cells": len(grid["configs"]),
        "by_status": by_status,
        "executions": executed,
        "stale_verdicts": sum(st.stale_verdicts for st in states),
        "exhausted": failed,
        "last_report": report,
    }
