"""Layering (LY) deployment scheme — ExpressPass+ [45].

Overlays a DCTCP congestion window on top of the ExpressPass credit loop: a
data packet is released only when a credit has arrived *and* the window has
room. Data shares the legacy queue and is ECN-capable, so the window reacts
to legacy congestion and starvation is avoided — but, as §6.2 shows, the
window needlessly throttles transmissions even on idle links, wasting the
credits that arrive while the window is closed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Set, TYPE_CHECKING

from repro.net.packet import (
    CREDIT_WIRE_BYTES,
    Color,
    Dscp,
    Packet,
    PacketKind,
    alloc_packet,
    data_wire_size,
)
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.congestion import DctcpWindow, DctcpWindowParams
from repro.transports.expresspass import ExpressPassParams, ExpressPassReceiver
from repro.transports.sequencing import SenderScoreboard
from repro.transports.timers import RetransmitTimer, RttEstimator
from repro.sim.units import MILLIS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle, Simulator


@dataclass
class LayeringParams(ExpressPassParams):
    """ExpressPass credit loop + DCTCP window gate."""

    window: DctcpWindowParams = field(default_factory=DctcpWindowParams)
    min_rto_ns: int = 4 * MILLIS

    def __post_init__(self) -> None:
        # LY data lives with legacy traffic and reacts to its ECN signal.
        self.data_dscp = Dscp.LEGACY
        self.ack_dscp = Dscp.LEGACY
        self.ctrl_dscp = Dscp.LEGACY
        self.data_ecn_capable = True


class LayeringSender:
    """Credit-clocked, window-gated sender."""

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: LayeringParams) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.window = DctcpWindow(params.window)
        self.scoreboard = SenderScoreboard(dupthresh=params.dupthresh)
        self.rtt = RttEstimator(min_rto_ns=params.min_rto_ns)
        self.timer = RetransmitTimer(sim, self.rtt, self._on_timeout)
        self._next_new = 0
        self._lost_heap: List[int] = []
        self._lost_set: Set[int] = set()
        self._acked: Set[int] = set()
        self._request_timer: Optional["EventHandle"] = None
        self._got_credit = False
        self.done = False
        spec.src.register_sender(spec.flow_id, self)

    def start(self) -> None:
        self.stats.start_ns = self.sim.now
        self._send_request()

    @property
    def all_acked(self) -> bool:
        return len(self._acked) == self.spec.n_segments

    def _send_request(self) -> None:
        req = alloc_packet(
            PacketKind.CREDIT_REQUEST, self.spec.flow_id,
            self.spec.src.id, self.spec.dst.id, CREDIT_WIRE_BYTES,
            dscp=self.params.ctrl_dscp, meta=self.spec.size_bytes,
        )
        self.spec.src.send(req)
        self._request_timer = self.sim.after(
            self.params.request_timeout_ns, self._request_timeout
        )

    def _request_timeout(self) -> None:
        self._request_timer = None
        if self.done or self._got_credit:
            return
        self.stats.request_retries += 1
        self._send_request()

    def on_packet(self, pkt: Packet) -> None:
        if self.done:
            return
        if pkt.kind == PacketKind.CREDIT:
            self._on_credit(pkt)
        elif pkt.kind == PacketKind.ACK:
            self._on_ack(pkt)

    def _on_credit(self, credit: Packet) -> None:
        self.stats.credits_received += 1
        if not self._got_credit:
            self._got_credit = True
            if self._request_timer is not None:
                self._request_timer.cancel()
                self._request_timer = None
        # The layering gate: credits arriving while the window is full are
        # simply wasted — the root cause of LY's underutilization (§6.2).
        if self.scoreboard.in_flight >= self.window.allowed_in_flight():
            self.stats.credits_wasted += 1
            return
        seq = self._pick_segment()
        if seq is None:
            self.stats.credits_wasted += 1
            return
        self.stats.credited_sends += 1
        self._transmit(seq, credit_echo=credit.seq)

    def _pick_segment(self) -> Optional[int]:
        while self._lost_heap:
            seq = heapq.heappop(self._lost_heap)
            if seq in self._lost_set:
                self._lost_set.discard(seq)
                self.stats.retransmissions += 1
                return seq
        if self._next_new < self.spec.n_segments:
            seq = self._next_new
            self._next_new += 1
            return seq
        oldest = self.scoreboard.oldest_outstanding()
        if oldest is not None:
            self.stats.retransmissions += 1
            return oldest
        return None

    def _transmit(self, seq: int, credit_echo: int = -1) -> None:
        p = self.params
        pkt = alloc_packet(
            PacketKind.DATA, self.spec.flow_id, self.spec.src.id, self.spec.dst.id,
            data_wire_size(self.spec.segment_payload(seq)),
            payload=self.spec.segment_payload(seq),
            dscp=p.data_dscp, color=Color.GREEN, ecn_capable=p.data_ecn_capable,
            seq=seq, flow_seq=seq, sent_at=self.sim.now, meta=credit_echo,
        )
        if self.scoreboard.sent_at(seq) is None:
            self.scoreboard.on_send(seq, self.sim.now)
        self.stats.packets_sent += 1
        self.spec.src.send(pkt)
        self.timer.arm_if_idle()

    def _on_ack(self, pkt: Packet) -> None:
        if pkt.meta is not None and pkt.sent_at >= 0:
            self.rtt.update(self.sim.now - pkt.sent_at)
        sack = pkt.sack + (pkt.seq,) if pkt.seq >= 0 else pkt.sack
        newly_acked, newly_lost = self.scoreboard.on_ack(pkt.ack, sack)
        for seq in newly_acked:
            self._acked.add(seq)
            self._lost_set.discard(seq)
            self.window.on_ack(seq, pkt.ce, self._next_new)
        if newly_lost:
            self.window.on_loss()
            for seq in newly_lost:
                if seq not in self._acked and seq not in self._lost_set:
                    self._lost_set.add(seq)
                    heapq.heappush(self._lost_heap, seq)
        if newly_acked:
            self.timer.on_progress()
        if self.all_acked:
            self._finish()

    def _on_timeout(self) -> None:
        if self.done or self.all_acked:
            return
        self.stats.timeouts += 1
        for seq in self.scoreboard.declare_all_lost():
            if seq not in self._acked and seq not in self._lost_set:
                self._lost_set.add(seq)
                heapq.heappush(self._lost_heap, seq)
        self.window.on_timeout()
        self.timer.arm()

    def _finish(self) -> None:
        self.done = True
        self.timer.cancel()
        if self._request_timer is not None:
            self._request_timer.cancel()
            self._request_timer = None
        self.spec.src.unregister_sender(self.spec.flow_id)


class LayeringReceiver(ExpressPassReceiver):
    """Identical to the ExpressPass receiver (full-rate credits, per-packet
    ACKs with CE echo); only the DSCPs differ, which params carry."""
