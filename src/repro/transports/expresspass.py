"""ExpressPass [9]: receiver-driven credit-based proactive transport.

The receiver paces small credit packets toward the sender over a
strict-priority, rate-limited switch queue; each credit that survives the
rate limiters authorizes one full-size data packet on the reverse path.
Because routing is symmetric, metering credits on link L's reverse direction
meters data on L itself — congestion control without touching data packets.

This implementation adds the ACK-based loss recovery FlexPass layers on top
(§4.3 "Handling proactive data packet losses"): per-packet ACKs with SACK,
dupack detection, credit-triggered retransmission, and a credit-request
timer. Plain ExpressPass in a clean network never exercises these paths;
the *naïve deployment* scheme (shared queue with DCTCP) does.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Set, TYPE_CHECKING

from repro.net.packet import (
    ACK_WIRE_BYTES,
    CREDIT_WIRE_BYTES,
    Color,
    Dscp,
    Packet,
    PacketKind,
    alloc_packet,
    data_wire_size,
)
from repro.transports.base import CompletionCallback, FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA, FeedbackParams
from repro.transports.crediting import CreditPacer
from repro.transports.sequencing import ReceiveScoreboard, SenderScoreboard
from repro.sim.timerwheel import CoarseTimer
from repro.sim.units import GBPS, MICROS, MILLIS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle, Simulator


@dataclass
class ExpressPassParams:
    """Endpoint configuration for an ExpressPass flow."""

    #: Peak credit rate at the receiver, in credit-bits/s on the wire. Must
    #: match the NIC credit-queue rate limit: wq * link_rate * 84/1584.
    max_credit_rate_bps: float = 10 * GBPS * CREDIT_PER_DATA
    #: Feedback update period (≈ network RTT).
    update_period_ns: int = 40 * MICROS
    feedback: FeedbackParams = field(default_factory=FeedbackParams)
    request_timeout_ns: int = 4 * MILLIS
    dupthresh: int = 3
    data_dscp: int = Dscp.PROACTIVE_DATA
    ack_dscp: int = Dscp.FLEX_CONTROL
    ctrl_dscp: int = Dscp.FLEX_CONTROL
    data_color: int = Color.GREEN
    data_ecn_capable: bool = False  # proactive packets ignore ECN


class ExpressPassSender:
    """Sender endpoint: transmits exactly one data packet per credit."""

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: ExpressPassParams = ExpressPassParams()) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.scoreboard = SenderScoreboard(dupthresh=params.dupthresh)
        self._next_new = 0
        self._lost_heap: List[int] = []
        self._lost_set: Set[int] = set()
        self._acked: Set[int] = set()
        # Coarse watchdog (4 ms): wheel-backed on the default credit plane.
        self._request_timer = CoarseTimer(sim, self._request_timeout)
        self._got_credit = False
        self.done = False
        spec.src.register_sender(spec.flow_id, self)

    # --------------------------------------------------------------- API

    def start(self) -> None:
        self.stats.start_ns = self.sim.now
        self._send_request()

    @property
    def all_acked(self) -> bool:
        return len(self._acked) == self.spec.n_segments

    # ------------------------------------------------------------- setup

    def _send_request(self) -> None:
        req = alloc_packet(
            PacketKind.CREDIT_REQUEST, self.spec.flow_id,
            self.spec.src.id, self.spec.dst.id, CREDIT_WIRE_BYTES,
            dscp=self.params.ctrl_dscp, meta=self.spec.size_bytes,
        )
        self.spec.src.send(req)
        self._request_timer.arm(self.params.request_timeout_ns)

    def _request_timeout(self) -> None:
        if self.done or self._got_credit:
            return
        self.stats.request_retries += 1
        self._send_request()

    # ------------------------------------------------------------ credits

    def on_packet(self, pkt: Packet) -> None:
        if self.done:
            return
        if pkt.kind == PacketKind.CREDIT:
            self._on_credit(pkt)
        elif pkt.kind == PacketKind.ACK:
            self._on_ack(pkt)

    def _on_credit(self, credit: Packet) -> None:
        self.stats.credits_received += 1
        if not self._got_credit:
            self._got_credit = True
            self._request_timer.cancel()
        seq = self._pick_segment()
        if seq is None:
            self.stats.credits_wasted += 1
            return
        self.stats.credited_sends += 1
        self._transmit(seq, credit_echo=credit.seq)

    def _pick_segment(self) -> Optional[int]:
        # 1. retransmit detected losses
        while self._lost_heap:
            seq = heapq.heappop(self._lost_heap)
            if seq in self._lost_set:
                self._lost_set.discard(seq)
                self.stats.retransmissions += 1
                return seq
        # 2. new data
        if self._next_new < self.spec.n_segments:
            seq = self._next_new
            self._next_new += 1
            return seq
        # 3. tail-loss shield: speculatively resend the oldest unacked
        # segment (the receiver only credits while it is missing data, so a
        # credit arriving here means something is still outstanding).
        oldest = self.scoreboard.oldest_outstanding()
        if oldest is not None:
            self.stats.retransmissions += 1
            return oldest
        return None

    def _transmit(self, seq: int, credit_echo: int = -1) -> None:
        p = self.params
        pkt = alloc_packet(
            PacketKind.DATA, self.spec.flow_id, self.spec.src.id, self.spec.dst.id,
            data_wire_size(self.spec.segment_payload(seq)),
            payload=self.spec.segment_payload(seq),
            dscp=p.data_dscp, color=p.data_color, ecn_capable=p.data_ecn_capable,
            seq=seq, flow_seq=seq, sent_at=self.sim.now, meta=credit_echo,
        )
        if self.scoreboard.sent_at(seq) is None:
            self.scoreboard.on_send(seq, self.sim.now)
        self.stats.packets_sent += 1
        self.spec.src.send(pkt)

    # --------------------------------------------------------------- acks

    def _on_ack(self, pkt: Packet) -> None:
        sack = pkt.sack + (pkt.seq,) if pkt.seq >= 0 else pkt.sack
        newly_acked, newly_lost = self.scoreboard.on_ack(pkt.ack, sack)
        for seq in newly_acked:
            self._acked.add(seq)
            self._lost_set.discard(seq)
        for seq in newly_lost:
            if seq not in self._acked and seq not in self._lost_set:
                self._lost_set.add(seq)
                heapq.heappush(self._lost_heap, seq)
        if self.all_acked:
            self._finish()

    def _finish(self) -> None:
        self.done = True
        self._request_timer.cancel()
        self.spec.src.unregister_sender(self.spec.flow_id)


class ExpressPassReceiver:
    """Receiver endpoint: paces credits, runs feedback, ACKs every packet."""

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: ExpressPassParams = ExpressPassParams(),
                 on_complete: Optional[CompletionCallback] = None) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.on_complete = on_complete
        self.scoreboard = ReceiveScoreboard()
        self.pacer = CreditPacer(
            sim, spec.flow_id, spec.dst, spec.src.id, stats,
            params.max_credit_rate_bps, params.update_period_ns, params.feedback,
        )
        self._complete = False
        spec.dst.register_receiver(spec.flow_id, self)

    # ------------------------------------------------------------ intake

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.CREDIT_REQUEST:
            if not self._complete:
                self.pacer.start()
        elif pkt.kind == PacketKind.DATA:
            self._on_data(pkt)

    # -------------------------------------------------------------- data

    def _on_data(self, pkt: Packet) -> None:
        self.pacer.note_data_received(pkt.meta if pkt.meta is not None else -1)
        fresh = self.scoreboard.add(pkt.seq)
        if fresh:
            self.stats.delivered_bytes += pkt.payload
            self.stats.proactive_bytes += pkt.payload
        else:
            self.stats.duplicate_bytes += pkt.payload
        self._send_ack(pkt)
        if fresh and self.scoreboard.received_count() == self.spec.n_segments:
            self._finish()

    def _send_ack(self, data: Packet) -> None:
        ack = alloc_packet(
            PacketKind.ACK, self.spec.flow_id, self.spec.dst.id, self.spec.src.id,
            ACK_WIRE_BYTES, dscp=self.params.ack_dscp,
            ack=self.scoreboard.cum, sack=self.scoreboard.sack(),
            seq=data.seq, sent_at=data.sent_at, meta=1,
        )
        ack.ce = data.ce
        self.spec.dst.send(ack)

    def _finish(self) -> None:
        self._complete = True
        self.stats.complete_ns = self.sim.now
        self.pacer.stop()
        if self.on_complete is not None:
            self.on_complete(self.spec, self.stats)
