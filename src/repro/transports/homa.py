"""Simplified Homa [35] — used only for the Figure 1(b) motivation experiment.

What matters for that figure is Homa's bandwidth behaviour, not its full
machinery: each sender blind-transmits up to RTT-bytes unscheduled, and the
receiver grants the remainder at line rate using SRPT order across its
inbound flows, ignoring any non-Homa traffic. With many concurrent Homa
flows this overcommits the bottleneck and exhausts the shared switch buffer,
which is exactly how DCTCP gets starved even from a higher-priority queue.

Simplifications (documented in DESIGN.md): one scheduled priority level
instead of dynamic priority assignment, grant-per-segment instead of byte
offsets, and timer-based re-granting for robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.net.packet import (
    ACK_WIRE_BYTES,
    CREDIT_WIRE_BYTES,
    Dscp,
    MSS,
    Packet,
    PacketKind,
    alloc_packet,
    data_wire_size,
)
from repro.transports.base import CompletionCallback, FlowSpec, FlowStats
from repro.transports.credit_plane import CreditPlane, wheel_enabled
from repro.transports.sequencing import ReceiveScoreboard
from repro.sim.timerwheel import CoarseTimer
from repro.sim.units import GBPS, MICROS, MILLIS, SECONDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle, Simulator


@dataclass
class HomaParams:
    rtt_bytes: int = 60_000  # unscheduled window (~BDP)
    grant_rate_bps: int = 10 * GBPS  # receiver grants at its line rate
    #: cap on granted-but-undelivered data (Homa keeps ~RTT-bytes in flight
    #: per flow; this sustained per-flow backlog is exactly why "multiple
    #: HOMA flows can easily starve DCTCP flows" — footnote 3)
    grant_window_bytes: int = 60_000
    regrant_timeout_ns: int = 4 * MILLIS
    unscheduled_prio: int = 1  # 0 is reserved for DCTCP per footnote 3
    scheduled_prio: int = 2
    grant_prio: int = 1


class HomaSender:
    """Blind-sends the unscheduled prefix; sends one segment per grant."""

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: HomaParams = HomaParams()) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.done = False
        self._heard_from_receiver = False
        # Coarse watchdog (4 ms): wheel-backed on the default credit plane.
        self._announce_timer = CoarseTimer(sim, self._announce_retry)
        spec.src.register_sender(spec.flow_id, self)

    def start(self) -> None:
        self.stats.start_ns = self.sim.now
        unscheduled = min(
            (self.params.rtt_bytes + MSS - 1) // MSS, self.spec.n_segments
        )
        for seq in range(unscheduled):
            self._transmit(seq, self.params.unscheduled_prio)
        self._heard_from_receiver = False
        self._announce_timer.arm(self.params.regrant_timeout_ns)

    def _announce_retry(self) -> None:
        """If the whole unscheduled burst was lost, the receiver never learns
        the flow exists; re-announce with segment 0 until we hear back."""
        if self.done or self._heard_from_receiver:
            return
        self.stats.request_retries += 1
        self._transmit(0, self.params.unscheduled_prio)
        self._announce_timer.arm(self.params.regrant_timeout_ns)

    def on_packet(self, pkt: Packet) -> None:
        if self.done:
            return
        self._heard_from_receiver = True
        if pkt.kind == PacketKind.GRANT and pkt.meta is not None:
            self._transmit(pkt.meta, self.params.scheduled_prio)
        elif pkt.kind == PacketKind.ACK:
            # final ACK: receiver has everything
            self.done = True
            self._announce_timer.cancel()
            self.spec.src.unregister_sender(self.spec.flow_id)

    def _transmit(self, seq: int, prio: int) -> None:
        if seq >= self.spec.n_segments:
            return
        pkt = alloc_packet(
            PacketKind.DATA, self.spec.flow_id, self.spec.src.id, self.spec.dst.id,
            data_wire_size(self.spec.segment_payload(seq)),
            payload=self.spec.segment_payload(seq),
            dscp=Dscp.HOMA_BASE + prio,
            seq=seq, flow_seq=seq, sent_at=self.sim.now,
            meta=self.spec.size_bytes,  # announce size for SRPT
        )
        self.stats.packets_sent += 1
        self.spec.src.send(pkt)


class HomaReceiver:
    """Grants remaining segments at line rate in SRPT order.

    A single pacing loop per *flow* (not per host) — with the per-host grant
    arbitration approximated by each receiver granting at full rate, which
    reproduces the overcommitment that Figure 1(b) demonstrates.
    """

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: HomaParams = HomaParams(),
                 on_complete: Optional[CompletionCallback] = None) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.on_complete = on_complete
        self.scoreboard = ReceiveScoreboard()
        self._next_grant = (params.rtt_bytes + MSS - 1) // MSS  # after unscheduled
        self._grant_timer: Optional["EventHandle"] = None
        # Wheel plane: grant pacing is handle-free (post); _grant_pending
        # replaces the legacy "_grant_timer is None" window-reopen test.
        self._grant_pending = False
        # The grant gap is invariant (line rate fixed): derive it once.
        self._grant_interval = max(
            1, int(data_wire_size(MSS) * 8 * SECONDS / params.grant_rate_bps))
        self._regrant_timer = CoarseTimer(sim, self._regrant)
        self._plane: Optional[CreditPlane] = (
            CreditPlane.for_host(sim, spec.dst) if wheel_enabled() else None)
        self._complete = False
        self._started = False
        spec.dst.register_receiver(spec.flow_id, self)

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != PacketKind.DATA or self._complete:
            return
        fresh = self.scoreboard.add(pkt.seq)
        if fresh:
            self.stats.delivered_bytes += pkt.payload
            self.stats.proactive_bytes += pkt.payload
        else:
            self.stats.duplicate_bytes += pkt.payload
        if not self._started:
            self._started = True
            if self._plane is not None:
                self._plane.register(self.spec.flow_id)
            self._arm_regrant()
            if self._next_grant < self.spec.n_segments:
                self._send_grant()
        elif fresh and not self._grant_armed():
            # Window-limited granting: arrivals clock out further grants.
            self._send_grant()
        if self.scoreboard.received_count() == self.spec.n_segments:
            self._finish()

    # ------------------------------------------------------------ grants

    def _grant_interval_ns(self) -> int:
        return self._grant_interval

    def _grant_armed(self) -> bool:
        if self._plane is not None:
            return self._grant_pending
        return self._grant_timer is not None

    def _send_grant(self) -> None:
        """Synchronous grant entry (both planes); legacy timer callback."""
        if self._plane is not None:
            self._send_grant_wheel()
            return
        self._grant_timer = None
        if self._complete or self._next_grant >= self.spec.n_segments:
            return
        granted_unreceived = self._next_grant - self.scoreboard.received_count()
        if granted_unreceived * MSS >= self.params.grant_window_bytes:
            return  # window full; the next fresh arrival re-opens it
        self._emit_grant(self._next_grant)
        self._next_grant += 1
        self._grant_timer = self.sim.after(self._grant_interval_ns(), self._send_grant)

    def _send_grant_wheel(self) -> None:
        self._grant_pending = False
        if self._complete or self._next_grant >= self.spec.n_segments:
            return
        granted_unreceived = self._next_grant - self.scoreboard.received_count()
        if granted_unreceived * MSS >= self.params.grant_window_bytes:
            return  # window full; the next fresh arrival re-opens it
        self._emit_grant(self._next_grant)
        self._next_grant += 1
        self._plane.note_emitted()
        self._grant_pending = True
        self.sim.post(self._grant_interval, self._send_grant_wheel)

    def _emit_grant(self, seq: int) -> None:
        grant = alloc_packet(
            PacketKind.GRANT, self.spec.flow_id,
            self.spec.dst.id, self.spec.src.id, CREDIT_WIRE_BYTES,
            dscp=Dscp.HOMA_BASE + self.params.grant_prio, meta=seq,
        )
        self.stats.credits_sent += 1
        self.spec.dst.send(grant)

    # ------------------------------------------------------ loss recovery

    def _arm_regrant(self) -> None:
        self._regrant_timer.arm(self.params.regrant_timeout_ns)

    def _regrant(self) -> None:
        """No completion yet: re-request the lowest missing segment."""
        if self._complete:
            return
        self.stats.request_retries += 1
        self._emit_grant(self.scoreboard.cum)
        self._arm_regrant()

    def _finish(self) -> None:
        self._complete = True
        self.stats.complete_ns = self.sim.now
        if self._grant_timer is not None:
            self._grant_timer.cancel()
            self._grant_timer = None
        self._grant_pending = False
        self._regrant_timer.cancel()
        if self._plane is not None:
            self._plane.unregister(self.spec.flow_id)
        # tell the sender it can forget the flow
        ack = alloc_packet(
            PacketKind.ACK, self.spec.flow_id, self.spec.dst.id, self.spec.src.id,
            ACK_WIRE_BYTES, dscp=Dscp.HOMA_BASE + self.params.grant_prio,
            ack=self.spec.n_segments,
        )
        self.spec.dst.send(ack)
        if self.on_complete is not None:
            self.on_complete(self.spec, self.stats)
