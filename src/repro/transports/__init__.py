"""Transport protocols: DCTCP, ExpressPass, Homa, and the Layering scheme.

Each transport exposes a sender and a receiver endpoint with a uniform
construction interface (:mod:`repro.transports.base`), so experiment
scenarios can swap schemes without touching traffic generation.
FlexPass itself lives in :mod:`repro.core` and composes the machinery here.
"""

from repro.transports.base import FlowSpec, FlowStats, TransportParams
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender
from repro.transports.expresspass import (
    ExpressPassParams,
    ExpressPassReceiver,
    ExpressPassSender,
)
from repro.transports.homa import HomaParams, HomaReceiver, HomaSender
from repro.transports.layering import LayeringReceiver, LayeringSender

__all__ = [
    "FlowSpec",
    "FlowStats",
    "TransportParams",
    "DctcpParams",
    "DctcpReceiver",
    "DctcpSender",
    "ExpressPassParams",
    "ExpressPassReceiver",
    "ExpressPassSender",
    "HomaParams",
    "HomaReceiver",
    "HomaSender",
    "LayeringReceiver",
    "LayeringSender",
]
