"""Shared transport plumbing: flow descriptions, per-flow stats, segmenting.

A *flow* is a one-shot message transfer (the unit of the paper's FCT
metrics): ``size_bytes`` arrive at the sender application at ``start_ns``
and the flow completes when the receiver has every unique byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.net.packet import MSS

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


@dataclass
class FlowSpec:
    """Immutable description of one flow."""

    flow_id: int
    src: "Host"
    dst: "Host"
    size_bytes: int
    start_ns: int
    #: scheme label for grouping in metrics ("dctcp", "flexpass", ...)
    scheme: str = ""
    #: "legacy" or "new" — which side of the deployment boundary (§6.2)
    group: str = "legacy"
    #: "bg" background or "fg" foreground incast (§6.2 mixed workload)
    role: str = "bg"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"flow {self.flow_id}: size must be positive")
        if self.src.id == self.dst.id:
            raise ValueError(f"flow {self.flow_id}: src == dst")

    @property
    def n_segments(self) -> int:
        return (self.size_bytes + MSS - 1) // MSS

    def segment_payload(self, idx: int) -> int:
        """Application bytes in segment ``idx`` (the last may be short)."""
        if idx < 0 or idx >= self.n_segments:
            raise IndexError(f"segment {idx} out of range for flow {self.flow_id}")
        if idx == self.n_segments - 1:
            return self.size_bytes - idx * MSS
        return MSS


@dataclass
class FlowStats:
    """Mutable per-flow counters, shared by the flow's two endpoints."""

    start_ns: int = -1
    complete_ns: int = -1  # receiver got every byte; -1 while running
    delivered_bytes: int = 0
    #: bytes delivered via each sub-flow (FlexPass) or total (others)
    proactive_bytes: int = 0
    reactive_bytes: int = 0
    duplicate_bytes: int = 0  # redundant copies discarded at reassembly
    timeouts: int = 0
    request_retries: int = 0  # credit-request timer fires (control plane)
    retransmissions: int = 0
    proactive_retransmissions: int = 0  # FlexPass §4.2 "proactive retransmission"
    credits_sent: int = 0
    credits_wasted: int = 0  # credit arrived but nothing useful to send
    #: credits that reached the sender (surviving the credit queue); the
    #: audit invariant is credits_received == credited_sends + credits_wasted
    credits_received: int = 0
    credited_sends: int = 0  # data transmissions triggered by a credit
    packets_sent: int = 0
    max_reorder_bytes: int = 0  # peak receiver reordering-buffer occupancy
    #: currently-allocated credit rate (credit-based transports only; 0
    #: while the flow is not being paced) — a gauge, refreshed by the
    #: receiver's :class:`~repro.transports.crediting.CreditPacer`
    credit_rate_bps: float = 0.0

    @property
    def completed(self) -> bool:
        return self.complete_ns >= 0

    def fct_ns(self) -> int:
        if not self.completed:
            raise ValueError("flow has not completed")
        return self.complete_ns - self.start_ns


#: Invoked by the receiver endpoint the moment the last unique byte arrives.
CompletionCallback = Callable[[FlowSpec, FlowStats], None]


@dataclass
class TransportParams:
    """Knobs common to every transport; schemes extend this."""

    #: DSCP of data / ack / control packets — set per deployment scheme so
    #: the same transport code can live in different switch queues.
    data_dscp: int = 4  # Dscp.LEGACY
    ack_dscp: int = 4
