"""Per-host credit plane: batched jitter draws and handle-free pacing.

On the legacy plane every :class:`~repro.transports.crediting.CreditPacer`
self-reschedules through ``Simulator.after`` — one cancellable
:class:`~repro.sim.events.EventHandle` allocation per credit packet, and a
``cancel()`` pair on every stop. At 40 Gbps a single flow emits a credit
every ~8.4 µs; a 192-host Clos at full load runs thousands of concurrent
pacers, so the *credit plane* churns the event engine harder than the data
plane it authorizes.

The wheel plane (``REPRO_CREDIT_PLANE=wheel``, the default) makes three
changes, none of which may move a single event in time:

* **handle-free emission** — each emission schedules its successor with
  ``Simulator.post`` (a bare ``(fn, args)`` tuple, no handle allocation) at
  the *same call site* the legacy plane calls ``after``, so the engine
  assigns the identical ``(time, seq)``. ``stop()`` bumps a generation
  counter instead of cancelling; a posted event from a stale generation
  fires as a no-op, exactly as a lazily-cancelled handle would have been
  skipped.
* **batched jitter draws** — each flow's :class:`CreditTrain` pre-draws
  ``BATCH`` jitter factors per refill from the *same per-flow RNG in the
  same order* as per-credit draws, so the jittered credit train is
  bit-identical to the legacy plane's.
* **cached base interval** — the invariant
  ``CREDIT_WIRE_BYTES * 8 * SECONDS / rate_bps`` base is re-derived only
  when the feedback loop actually changes ``rate_bps`` (both planes; the
  division is deterministic, so the cached value is the recomputed value).

:class:`CreditPlane` is the per-host registry tying this together: every
active pacer on a host registers here, the plane hands out trains and
counts the host's credit-plane load (``active``/``emitted``), and the
coarse watchdog timers that ride along (request/announce/regrant, RTO) go
to the simulator's shared :class:`~repro.sim.timerwheel.TimerWheel`.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.net.packet import CREDIT_WIRE_BYTES
from repro.sim.timerwheel import credit_plane_backend, wheel_enabled
from repro.sim.units import SECONDS

if TYPE_CHECKING:  # pragma: no cover
    import random

    from repro.net.host import Host

__all__ = ["CreditPlane", "CreditTrain", "credit_plane_backend",
           "wheel_enabled"]


class CreditTrain:
    """Precomputed jittered credit intervals for one flow.

    Jitter factors are drawn ``BATCH`` at a time from the flow's own RNG —
    the draw *sequence* is identical to drawing one factor per credit, so
    the emitted train matches the legacy plane bit for bit. The base
    interval is cached per rate; a rate change re-derives it, which also
    re-prices every not-yet-consumed draw (intervals are computed one
    emission ahead, so the remaining train always reflects the live rate,
    matching legacy semantics exactly).
    """

    __slots__ = ("_rng", "_draws", "_idx", "_base_ns", "_base_rate")

    #: jitter draws per RNG refill
    BATCH = 32

    def __init__(self, jitter_rng: "random.Random") -> None:
        self._rng = jitter_rng
        self._draws: list = []
        self._idx = 0
        self._base_ns = 0.0
        self._base_rate = 0.0

    def next_interval_ns(self, rate_bps: float) -> int:
        """The next jittered inter-credit gap at the current feedback rate."""
        if rate_bps != self._base_rate:
            self._base_rate = rate_bps
            self._base_ns = CREDIT_WIRE_BYTES * 8 * SECONDS / rate_bps
        idx = self._idx
        draws = self._draws
        if idx >= len(draws):
            uniform = self._rng.uniform
            draws = [uniform(0.5, 1.5) for _ in range(self.BATCH)]
            self._draws = draws
            idx = 0
        self._idx = idx + 1
        return max(1, int(self._base_ns * draws[idx]))


class CreditPlane:
    """Registry of one host's active credit pacers (wheel plane).

    Each pacer owns its :class:`CreditTrain` (the RNG is a per-flow
    property seeded at pacer construction); the plane tracks which trains
    are live on this host and aggregates credit-plane load counters that
    the paper-scale Clos benchmark reports.
    """

    __slots__ = ("sim", "host", "_trains", "registered_total", "emitted")

    def __init__(self, sim, host: "Host") -> None:
        self.sim = sim
        self.host = host
        self._trains: Dict[int, Optional[CreditTrain]] = {}
        self.registered_total = 0
        #: credits emitted through this plane (all flows)
        self.emitted = 0

    @classmethod
    def for_host(cls, sim, host: "Host") -> "CreditPlane":
        """The host's singleton plane (created on first use)."""
        plane = getattr(host, "_credit_plane", None)
        if plane is None:
            plane = cls(sim, host)
            host._credit_plane = plane
        return plane

    @property
    def active(self) -> int:
        """Pacers currently running on this host."""
        return len(self._trains)

    def register(self, flow_id: int,
                 train: Optional[CreditTrain] = None) -> None:
        """Attach a starting pacer's train.

        Unjittered pacers (pHost's per-host allocator) register with no
        train — they still count toward the host's active-pacer load.
        """
        self._trains[flow_id] = train
        self.registered_total += 1

    def unregister(self, flow_id: int) -> None:
        """Detach a stopping pacer (tolerates stop-before-start)."""
        self._trains.pop(flow_id, None)

    def note_emitted(self) -> None:
        self.emitted += 1
