"""ExpressPass credit feedback control [9].

The receiver paces credits; credits dropped at rate-limited credit queues
(or consumed by a sender with nothing to send) are *wasted*. Each data
packet echoes the sequence number of the credit that triggered it, so the
receiver can count dropped credits exactly from gaps in the echo stream —
the measurement is insensitive to the credit->data round-trip lag.

Per update period the controller computes the credit loss fraction and
adjusts the credit rate: probing upward with a growing step when loss is at
or below target, cutting proportionally when above. Knobs follow the
FlexPass evaluation settings (§6.2): aggressiveness factor ``alpha`` (step
growth per consecutive increase), minimum change ``s_min`` (one credit per
period by default), and maximum change ``s_max`` (50 Mbps of returned data).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Credit-wire-bits per data-wire-bit: an 84-byte credit releases one
#: 1584-byte data frame, so credit rate = data rate * 84/1584.
CREDIT_PER_DATA = 84.0 / 1584.0


@dataclass
class FeedbackParams:
    alpha: float = 2.0          # step growth factor per consecutive increase
    s_min_bps: float = 0.0      # minimum step; 0 -> one credit per period
    #: Max rate change per period, in credit-bps. The paper's S_max = 50 Mbps
    #: of credits "corresponds to 1 Gbps of returning data" (§6.2).
    s_max_bps: float = 50e6
    target_loss: float = 0.10   # tolerated credit-loss fraction
    min_rate_fraction: float = 0.01  # floor relative to max rate


class CreditFeedback:
    """Per-flow credit-rate controller at the receiver."""

    def __init__(self, max_rate_bps: float, update_period_ns: int,
                 params: FeedbackParams = FeedbackParams()) -> None:
        if max_rate_bps <= 0:
            raise ValueError("max credit rate must be positive")
        if update_period_ns <= 0:
            raise ValueError("update period must be positive")
        self.params = params
        self.max_rate = float(max_rate_bps)
        self.min_rate = max_rate_bps * params.min_rate_fraction
        self.update_period_ns = update_period_ns
        # Start at the maximum: ExpressPass sends the first credits at the
        # full allocation and lets loss feedback pull the rate down.
        self.rate_bps = float(max_rate_bps)
        # One credit per period expressed in bps, used as the S_min default.
        self._one_credit_bps = 84.0 * 8.0 * 1e9 / update_period_ns
        self._step = self._s_min()
        self._increasing = False
        # echo accounting for the current period
        self._last_echo = -1
        self._received = 0
        self._lost = 0
        self.credits_sent = 0
        self.updates = 0

    def _s_min(self) -> float:
        return max(self.params.s_min_bps, self._one_credit_bps)

    # ------------------------------------------------------------ inputs

    def note_credit_sent(self) -> None:
        self.credits_sent += 1

    def note_data_received(self, credit_echo: int = -1) -> None:
        """Record a data arrival carrying the triggering credit's seq."""
        self._received += 1
        if credit_echo > self._last_echo:
            if self._last_echo >= 0:
                self._lost += credit_echo - self._last_echo - 1
            self._last_echo = credit_echo

    # ------------------------------------------------------------ update

    def on_period(self) -> float:
        """Close the current period and return the new credit rate (bps)."""
        received, lost = self._received, self._lost
        self._received = 0
        self._lost = 0
        self.updates += 1
        total = received + lost
        if total == 0:
            return self.rate_bps  # nothing echoed back yet: hold
        loss = lost / total
        p = self.params
        if loss <= p.target_loss:
            if self._increasing:
                self._step = min(self._step * p.alpha, p.s_max_bps)
            else:
                self._step = self._s_min()
            self.rate_bps = min(self.rate_bps + self._step, self.max_rate)
            self._increasing = True
        else:
            # Proportional decrease toward the surviving rate, never below floor.
            self.rate_bps = max(
                self.rate_bps * (1.0 - loss) * (1.0 + p.target_loss),
                self.min_rate,
            )
            self._step = self._s_min()
            self._increasing = False
        return self.rate_bps
