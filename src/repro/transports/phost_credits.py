"""pHost-style credit allocation (§4.3 "Extensibility of FlexPass").

The paper: "FlexPass can also apply other credit allocation algorithms,
e.g., pHost [13] and dcPIM [6] in non-blocking networks with per-packet
load balancing."

pHost's receiver-driven model differs from ExpressPass's in two ways:

* tokens are paced by a **per-host** allocator at the receiver's access
  rate (the congestion-free-core assumption makes per-link metering in the
  fabric unnecessary), round-robining across the host's active inbound
  flows — so concurrent flows to one receiver never over-issue;
* there is no waste-feedback loop: the allocator simply stops scheduling a
  flow once it is inactive (pHost's "downgrade" of unresponsive senders is
  modeled as deactivation after a token-expiry interval).

:class:`PHostCreditSource` is interface-compatible with
:class:`repro.transports.crediting.CreditPacer`, so a FlexPass receiver can
swap allocators via ``FlexPassParams.credit_allocator``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, TYPE_CHECKING

from repro.net.packet import CREDIT_WIRE_BYTES, Dscp, Packet, PacketKind, alloc_packet
from repro.sim.units import SECONDS
from repro.transports.credit_plane import CreditPlane, wheel_enabled

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.sim.engine import EventHandle, Simulator
    from repro.transports.base import FlowStats


class _FlowEntry:
    __slots__ = ("flow_id", "sender_id", "stats", "credit_seq", "active")

    def __init__(self, flow_id: int, sender_id: int, stats: "FlowStats") -> None:
        self.flow_id = flow_id
        self.sender_id = sender_id
        self.stats = stats
        self.credit_seq = 0
        self.active = True


class PHostAllocator:
    """One token pacer per receiver host, shared by its inbound flows."""

    def __init__(self, sim: "Simulator", host: "Host", rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("allocator rate must be positive")
        self.sim = sim
        self.host = host
        self.rate_bps = float(rate_bps)
        self._flows: "OrderedDict[int, _FlowEntry]" = OrderedDict()
        self._timer: Optional["EventHandle"] = None
        self.tokens_sent = 0
        # The token gap is invariant (rate fixed at construction): derive
        # it once instead of per tick.
        self._interval = max(1, int(CREDIT_WIRE_BYTES * 8 * SECONDS / self.rate_bps))
        # Wheel plane: handle-free post + generation guard replaces the
        # cancellable timer. An armed-flag alone is not enough — after an
        # unregister drains the host to empty, a stale in-flight tick must
        # NOT serve a flow registered later (legacy cancels the timer, so
        # the new flow is paced from registration + interval). The
        # generation bump mirrors that cancel exactly.
        self._armed = False
        self._gen = 0
        if wheel_enabled():
            self._plane: Optional[CreditPlane] = CreditPlane.for_host(sim, host)
        else:
            self._plane = None

    # ------------------------------------------------------------ registry

    @classmethod
    def for_host(cls, sim: "Simulator", host: "Host",
                 rate_bps: float) -> "PHostAllocator":
        """The host's singleton allocator (created on first use)."""
        existing = getattr(host, "_phost_allocator", None)
        if existing is None:
            existing = cls(sim, host, rate_bps)
            host._phost_allocator = existing
        return existing

    def register(self, flow_id: int, sender_id: int,
                 stats: "FlowStats") -> _FlowEntry:
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id} already registered")
        entry = _FlowEntry(flow_id, sender_id, stats)
        self._flows[flow_id] = entry
        if self._plane is not None:
            self._plane.register(flow_id)
        self._kick()
        return entry

    def unregister(self, flow_id: int) -> None:
        self._flows.pop(flow_id, None)
        if self._plane is not None:
            self._plane.unregister(flow_id)
            if not self._flows and self._armed:
                self._gen += 1
                self._armed = False
            return
        if not self._flows and self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -------------------------------------------------------------- pacing

    def _interval_ns(self) -> int:
        return self._interval

    def _kick(self) -> None:
        if self._plane is not None:
            if not self._armed:
                self._armed = True
                self.sim.post(self._interval, self._tick_wheel, self._gen)
            return
        if self._timer is None:
            self._timer = self.sim.after(self._interval_ns(), self._tick)

    def _tick(self) -> None:
        self._timer = None
        entry = self._next_active()
        if entry is None:
            return  # dormant until a registration wakes us
        self._emit(entry)
        self._timer = self.sim.after(self._interval_ns(), self._tick)

    def _tick_wheel(self, gen: int) -> None:
        if gen != self._gen:
            return  # superseded by an unregister-to-empty (legacy: cancel)
        self._armed = False
        entry = self._next_active()
        if entry is None:
            return  # dormant until a registration wakes us
        self._emit(entry)
        if self._plane is not None:
            self._plane.note_emitted()
        self._armed = True
        self.sim.post(self._interval, self._tick_wheel, gen)

    def _next_active(self) -> Optional[_FlowEntry]:
        """Round-robin over active flows (move chosen flow to the back)."""
        for flow_id in list(self._flows):
            entry = self._flows[flow_id]
            self._flows.move_to_end(flow_id)
            if entry.active:
                return entry
        return None

    def _emit(self, entry: _FlowEntry) -> None:
        credit = alloc_packet(
            PacketKind.CREDIT, entry.flow_id, self.host.id, entry.sender_id,
            CREDIT_WIRE_BYTES, dscp=Dscp.CREDIT, seq=entry.credit_seq,
        )
        entry.credit_seq += 1
        entry.stats.credits_sent += 1
        self.tokens_sent += 1
        self.host.send(credit)


class PHostCreditSource:
    """CreditPacer-compatible adapter over the per-host allocator."""

    def __init__(self, sim: "Simulator", flow_id: int, receiver_host: "Host",
                 sender_host_id: int, stats: "FlowStats",
                 rate_bps: float) -> None:
        self.allocator = PHostAllocator.for_host(sim, receiver_host, rate_bps)
        self.flow_id = flow_id
        self.sender_id = sender_host_id
        self.stats = stats
        self._entry: Optional[_FlowEntry] = None
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._entry = self.allocator.register(self.flow_id, self.sender_id,
                                              self.stats)

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self.allocator.unregister(self.flow_id)
        self._entry = None

    def note_data_received(self, credit_echo: int) -> None:
        """pHost has no waste-feedback loop; arrivals need no accounting."""
