"""Receiver-side credit pacing, shared by ExpressPass and FlexPass.

A :class:`CreditPacer` emits credit packets toward a flow's sender at the
rate chosen by a :class:`~repro.transports.credit_feedback.CreditFeedback`
controller, and runs the controller's periodic update. The owner decides
when to start and stop (FlexPass stops as soon as reassembly completes,
regardless of which sub-flow delivered the bytes).

Two credit planes (``REPRO_CREDIT_PLANE``, see
:mod:`repro.transports.credit_plane`):

* ``wheel`` (default) — the pacer registers with its host's
  :class:`~repro.transports.credit_plane.CreditPlane`, draws jitter in
  batches through a :class:`~repro.transports.credit_plane.CreditTrain`,
  and self-reschedules with handle-free ``Simulator.post`` guarded by a
  generation counter (``stop()`` bumps the generation; stale posted events
  fire as no-ops).
* ``legacy`` — the original per-credit ``Simulator.after`` + ``cancel()``
  pacing, kept as a digest-equivalence oracle. Same RNG, same call sites,
  so both planes schedule identical ``(time, seq)`` event streams.

Both planes cache the base inter-credit gap
(``CREDIT_WIRE_BYTES * 8 * SECONDS / rate_bps``) and re-derive it only
when the feedback loop changes ``rate_bps``.
"""

from __future__ import annotations

import random
from typing import Optional, TYPE_CHECKING

from repro.net.packet import CREDIT_WIRE_BYTES, Dscp, Packet, PacketKind, alloc_packet
from repro.transports.credit_feedback import CreditFeedback, FeedbackParams
from repro.transports.credit_plane import CreditPlane, CreditTrain, wheel_enabled
from repro.sim.units import SECONDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.sim.engine import EventHandle, Simulator
    from repro.transports.base import FlowStats


class CreditPacer:
    """Paces credits for one flow from the receiver host."""

    def __init__(self, sim: "Simulator", flow_id: int, receiver_host: "Host",
                 sender_host_id: int, stats: "FlowStats",
                 max_credit_rate_bps: float, update_period_ns: int,
                 feedback_params: FeedbackParams = FeedbackParams()) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.host = receiver_host
        self.sender_id = sender_host_id
        self.stats = stats
        self.feedback = CreditFeedback(
            max_credit_rate_bps, update_period_ns, feedback_params
        )
        self.update_period_ns = update_period_ns
        self._credit_seq = 0
        self._credit_timer: Optional["EventHandle"] = None
        self._period_timer: Optional["EventHandle"] = None
        self.running = False
        # ExpressPass jitters credit pacing; without it, same-rate pacers
        # phase-lock against the token-bucket limiters and one flow's
        # credits lose the race indefinitely. Seeded per flow: runs stay
        # deterministic.
        self._jitter = random.Random(flow_id * 2654435761 % (1 << 31))
        # Cached base gap for the legacy plane (S-hoist); the wheel plane
        # caches inside its CreditTrain.
        self._base_rate = 0.0
        self._base_ns = 0.0
        # Generation guard for handle-free posts: stop() bumps it, stale
        # events no-op. Plays the role legacy cancel() plays.
        self._gen = 0
        if wheel_enabled():
            self._plane: Optional[CreditPlane] = CreditPlane.for_host(
                sim, receiver_host)
            self._train: Optional[CreditTrain] = CreditTrain(self._jitter)
        else:
            self._plane = None
            self._train = None

    # ----------------------------------------------------------- control

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.stats.credit_rate_bps = self.feedback.rate_bps
        plane = self._plane
        if plane is not None:
            plane.register(self.flow_id, self._train)
            self._gen += 1
            gen = self._gen
            self._send_credit_wheel(gen)
            self.sim.post(self.update_period_ns, self._on_period_wheel, gen)
        else:
            self._send_credit()
            self._period_timer = self.sim.after(
                self.update_period_ns, self._on_period)

    def stop(self) -> None:
        self.running = False
        self.stats.credit_rate_bps = 0.0
        plane = self._plane
        if plane is not None:
            self._gen += 1
            plane.unregister(self.flow_id)
            return
        if self._credit_timer is not None:
            self._credit_timer.cancel()
            self._credit_timer = None
        if self._period_timer is not None:
            self._period_timer.cancel()
            self._period_timer = None

    # ------------------------------------------------------------ inputs

    def note_data_received(self, credit_echo: int) -> None:
        self.feedback.note_data_received(credit_echo)

    # ---------------------------------------------------------- internal

    def _interval_ns(self) -> int:
        rate = self.feedback.rate_bps
        if rate != self._base_rate:
            self._base_rate = rate
            self._base_ns = CREDIT_WIRE_BYTES * 8 * SECONDS / rate
        return max(1, int(self._base_ns * self._jitter.uniform(0.5, 1.5)))

    def _emit_credit(self) -> None:
        credit = alloc_packet(
            PacketKind.CREDIT, self.flow_id, self.host.id, self.sender_id,
            CREDIT_WIRE_BYTES, dscp=Dscp.CREDIT, seq=self._credit_seq,
        )
        self._credit_seq += 1
        self.stats.credits_sent += 1
        self.feedback.note_credit_sent()
        self.host.send(credit)

    # -- legacy plane ---------------------------------------------------

    def _send_credit(self) -> None:
        self._credit_timer = None
        if not self.running:
            return
        self._emit_credit()
        self._credit_timer = self.sim.after(self._interval_ns(), self._send_credit)

    def _on_period(self) -> None:
        self._period_timer = None
        if not self.running:
            return
        self.stats.credit_rate_bps = self.feedback.on_period()
        self._period_timer = self.sim.after(self.update_period_ns, self._on_period)

    # -- wheel plane ----------------------------------------------------

    def _send_credit_wheel(self, gen: int) -> None:
        if gen != self._gen or not self.running:
            return
        self._emit_credit()
        self._plane.note_emitted()
        self.sim.post(self._train.next_interval_ns(self.feedback.rate_bps),
                      self._send_credit_wheel, gen)

    def _on_period_wheel(self, gen: int) -> None:
        if gen != self._gen or not self.running:
            return
        self.stats.credit_rate_bps = self.feedback.on_period()
        self.sim.post(self.update_period_ns, self._on_period_wheel, gen)
