"""DCTCP [1]: the legacy reactive transport of every experiment.

Window-based, ACK-clocked, ECN-driven. The receiver sends one cumulative
ACK (with SACK) per data packet and echoes the CE bit per packet; the sender
runs :class:`repro.transports.congestion.DctcpWindow`, SACK-based fast
retransmission, and an RTO with a 4 ms floor (§6 settings).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Set, TYPE_CHECKING

from repro.net.packet import (
    ACK_WIRE_BYTES,
    Color,
    Dscp,
    Packet,
    PacketKind,
    alloc_packet,
    data_wire_size,
)
from repro.transports.base import CompletionCallback, FlowSpec, FlowStats
from repro.transports.congestion import DctcpWindow, DctcpWindowParams
from repro.transports.sequencing import ReceiveScoreboard, SenderScoreboard
from repro.transports.timers import RetransmitTimer, RttEstimator
from repro.sim.units import MILLIS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


@dataclass
class DctcpParams:
    """Endpoint configuration for a DCTCP flow."""

    window: DctcpWindowParams = field(default_factory=DctcpWindowParams)
    min_rto_ns: int = 4 * MILLIS
    dupthresh: int = 3
    data_dscp: int = Dscp.LEGACY
    ack_dscp: int = Dscp.LEGACY
    data_color: int = Color.GREEN
    ecn_capable: bool = True


class DctcpSender:
    """Sender endpoint of one DCTCP flow."""

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: DctcpParams = DctcpParams()) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.window = DctcpWindow(params.window)
        self.scoreboard = SenderScoreboard(dupthresh=params.dupthresh)
        self.rtt = RttEstimator(min_rto_ns=params.min_rto_ns)
        self.timer = RetransmitTimer(sim, self.rtt, self._on_timeout)
        self._next_new = 0
        self._lost_heap: List[int] = []
        self._lost_set: Set[int] = set()
        self._acked: Set[int] = set()
        self.done = False
        spec.src.register_sender(spec.flow_id, self)

    # --------------------------------------------------------------- API

    def start(self) -> None:
        self.stats.start_ns = self.sim.now
        self._pump()

    @property
    def all_acked(self) -> bool:
        return len(self._acked) == self.spec.n_segments

    # ---------------------------------------------------------- transmit

    def _in_flight(self) -> int:
        return self.scoreboard.in_flight

    def _pump(self) -> None:
        """Send while the window allows; lost segments go first."""
        n = self.spec.n_segments
        while self._in_flight() < self.window.allowed_in_flight():
            seq = self._next_to_send()
            if seq is None:
                break
            self._transmit(seq)
        if self.scoreboard.in_flight > 0:
            self.timer.arm_if_idle()

    def _next_to_send(self) -> Optional[int]:
        while self._lost_heap:
            seq = heapq.heappop(self._lost_heap)
            if seq in self._lost_set:
                self._lost_set.discard(seq)
                self.stats.retransmissions += 1
                return seq
        if self._next_new < self.spec.n_segments:
            seq = self._next_new
            self._next_new += 1
            return seq
        return None

    def _transmit(self, seq: int) -> None:
        p = self.params
        pkt = alloc_packet(
            PacketKind.DATA, self.spec.flow_id, self.spec.src.id, self.spec.dst.id,
            data_wire_size(self.spec.segment_payload(seq)),
            payload=self.spec.segment_payload(seq),
            dscp=p.data_dscp, color=p.data_color, ecn_capable=p.ecn_capable,
            seq=seq, flow_seq=seq, sent_at=self.sim.now,
        )
        self.scoreboard.on_send(seq, self.sim.now)
        self.stats.packets_sent += 1
        self.spec.src.send(pkt)

    # -------------------------------------------------------------- acks

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != PacketKind.ACK or self.done:
            return
        if pkt.meta is not None and pkt.sent_at >= 0:
            self.rtt.update(self.sim.now - pkt.sent_at)
        sack = pkt.sack + (pkt.seq,) if pkt.seq >= 0 else pkt.sack
        newly_acked, newly_lost = self.scoreboard.on_ack(pkt.ack, sack)
        for seq in newly_acked:
            self._acked.add(seq)
            self._lost_set.discard(seq)
            self.window.on_ack(seq, pkt.ce, self._next_new)
        if newly_lost:
            self.window.on_loss()
            for seq in newly_lost:
                if seq not in self._acked and seq not in self._lost_set:
                    self._lost_set.add(seq)
                    heapq.heappush(self._lost_heap, seq)
        if newly_acked:
            self.timer.on_progress()
        if self.all_acked:
            self._finish()
            return
        self._pump()

    def _on_timeout(self) -> None:
        if self.done or self.all_acked:
            return
        self.stats.timeouts += 1
        for seq in self.scoreboard.declare_all_lost():
            if seq not in self._acked and seq not in self._lost_set:
                self._lost_set.add(seq)
                heapq.heappush(self._lost_heap, seq)
        self.window.on_timeout()
        self._pump()
        self.timer.arm()

    def _finish(self) -> None:
        self.done = True
        self.timer.cancel()
        self.spec.src.unregister_sender(self.spec.flow_id)


class DctcpReceiver:
    """Receiver endpoint: per-packet cumulative ACK + SACK, CE echo."""

    def __init__(self, sim: "Simulator", spec: FlowSpec, stats: FlowStats,
                 params: DctcpParams = DctcpParams(),
                 on_complete: Optional[CompletionCallback] = None) -> None:
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self.params = params
        self.on_complete = on_complete
        self.scoreboard = ReceiveScoreboard()
        spec.dst.register_receiver(spec.flow_id, self)

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != PacketKind.DATA:
            return
        fresh = self.scoreboard.add(pkt.seq)
        if fresh:
            self.stats.delivered_bytes += pkt.payload
            self.stats.reactive_bytes += pkt.payload
            self._track_reorder()
        else:
            self.stats.duplicate_bytes += pkt.payload
        self._send_ack(pkt)
        if fresh and self.scoreboard.received_count() == self.spec.n_segments:
            self.stats.complete_ns = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self.spec, self.stats)

    def _track_reorder(self) -> None:
        held = self.scoreboard.received_count() - self.scoreboard.cum
        reorder_bytes = held * 1500  # MSS-granularity estimate
        if reorder_bytes > self.stats.max_reorder_bytes:
            self.stats.max_reorder_bytes = reorder_bytes

    def _send_ack(self, data: Packet) -> None:
        ack = alloc_packet(
            PacketKind.ACK, self.spec.flow_id, self.spec.dst.id, self.spec.src.id,
            ACK_WIRE_BYTES, dscp=self.params.ack_dscp,
            ack=self.scoreboard.cum, sack=self.scoreboard.sack(),
            seq=data.seq, sent_at=data.sent_at, meta=1,  # meta=1: RTT-sampleable
        )
        ack.ce = data.ce  # per-packet CE echo
        self.spec.dst.send(ack)
