"""Alternative reactive congestion controllers for FlexPass's reactive
sub-flow (§4.3 "Extensibility": "We can also consider applying other
reactive congestion control algorithms (e.g., loss-based, latency-based, or
ECN-based) for the reactive sub-flows. We leave this as our future work.")

All controllers expose the same duck-typed interface as
:class:`repro.transports.congestion.DctcpWindow`:

* ``on_ack(acked_seq, ce, snd_nxt)`` — one newly-acked segment;
* ``on_loss()`` / ``on_timeout()`` — loss events;
* ``allowed_in_flight()`` — current window in segments;
* ``cwnd`` attribute for diagnostics.

Two variants implement the families the paper names:

* :class:`RenoWindow` — loss-based (TCP Reno AIMD; ignores CE marks);
* :class:`DelayWindow` — latency-based (TIMELY-flavoured: gradient of the
  RTT drives additive increase / multiplicative decrease).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RenoParams:
    init_cwnd: float = 10.0
    min_cwnd: float = 1.0
    max_cwnd: float = 1 << 20
    init_ssthresh: float = float(1 << 20)


class RenoWindow:
    """Classic loss-based AIMD: slow start, +1/cwnd per ACK, halve on loss."""

    def __init__(self, params: RenoParams = RenoParams()) -> None:
        self.p = params
        self.cwnd = params.init_cwnd
        self.ssthresh = params.init_ssthresh
        self._cut_window_end = 0
        self._highest_acked = 0
        self.loss_cuts = 0
        self.timeout_resets = 0
        self.alpha = 0.0  # interface compatibility; unused

    def on_ack(self, acked_seq: int, ce: bool, snd_nxt: int) -> None:
        # Reno is blind to ECN: ce is deliberately ignored.
        self._highest_acked = max(self._highest_acked, acked_seq)
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd
        self.cwnd = min(self.cwnd, self.p.max_cwnd)

    def on_loss(self) -> None:
        if self._highest_acked < self._cut_window_end:
            return  # at most one cut per window of data
        self.cwnd = max(self.p.min_cwnd, self.cwnd / 2.0)
        self.ssthresh = self.cwnd
        self._cut_window_end = self._highest_acked + int(self.cwnd) + 1
        self.loss_cuts += 1

    def on_timeout(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.p.min_cwnd
        self.timeout_resets += 1

    def allowed_in_flight(self) -> int:
        return int(self.cwnd)


@dataclass
class DelayParams:
    init_cwnd: float = 10.0
    min_cwnd: float = 1.0
    max_cwnd: float = 1 << 20
    #: RTT below this is "no congestion" — grow additively.
    t_low_ns: float = 60_000.0
    #: RTT above this is congestion regardless of gradient.
    t_high_ns: float = 400_000.0
    additive_increment: float = 1.0
    #: multiplicative decrease factor scale (TIMELY beta)
    beta: float = 0.6
    #: EWMA gain for the RTT-difference filter
    ewma_gain: float = 0.3


class DelayWindow:
    """Latency-based controller in the spirit of TIMELY [32].

    Window-based approximation: the normalized RTT gradient drives AIMD.
    Callers must feed RTT samples via :meth:`on_rtt_sample` (the FlexPass
    reactive sub-flow does this from its ACK timestamps).
    """

    def __init__(self, params: DelayParams = DelayParams()) -> None:
        self.p = params
        self.cwnd = params.init_cwnd
        self._prev_rtt: float = 0.0
        self._rtt_diff: float = 0.0
        self.loss_cuts = 0
        self.timeout_resets = 0
        self.alpha = 0.0  # interface compatibility

    def on_rtt_sample(self, rtt_ns: float) -> None:
        if self._prev_rtt <= 0.0:
            self._prev_rtt = rtt_ns
            return
        diff = rtt_ns - self._prev_rtt
        self._prev_rtt = rtt_ns
        g = self.p.ewma_gain
        self._rtt_diff = (1 - g) * self._rtt_diff + g * diff
        p = self.p
        if rtt_ns < p.t_low_ns:
            self.cwnd += p.additive_increment
        elif rtt_ns > p.t_high_ns:
            self.cwnd *= 1.0 - p.beta * (1.0 - p.t_high_ns / rtt_ns)
        else:
            # gradient regime: normalized by a minimum-RTT scale
            gradient = self._rtt_diff / max(p.t_low_ns, 1.0)
            if gradient <= 0:
                self.cwnd += p.additive_increment
            else:
                self.cwnd *= max(0.5, 1.0 - p.beta * min(gradient, 1.0))
        self.cwnd = min(max(self.cwnd, p.min_cwnd), p.max_cwnd)

    def on_ack(self, acked_seq: int, ce: bool, snd_nxt: int) -> None:
        # Window motion comes from RTT samples; per-ACK hook kept for
        # interface parity (delay-based control ignores CE).
        return

    def on_loss(self) -> None:
        self.cwnd = max(self.p.min_cwnd, self.cwnd / 2.0)
        self.loss_cuts += 1

    def on_timeout(self) -> None:
        self.cwnd = self.p.min_cwnd
        self.timeout_resets += 1

    def allowed_in_flight(self) -> int:
        return int(self.cwnd)


def make_reactive_window(algorithm: str):
    """Factory for FlexPassParams.reactive_algorithm."""
    if algorithm == "dctcp":
        from repro.transports.congestion import DctcpWindow

        return DctcpWindow()
    if algorithm == "reno":
        return RenoWindow()
    if algorithm == "delay":
        return DelayWindow()
    raise ValueError(
        f"unknown reactive algorithm {algorithm!r}; "
        "choose 'dctcp', 'reno', or 'delay'"
    )
