"""Sequence-space bookkeeping shared by all transports.

Segments are numbered 0..n-1 in each sequence space. FlexPass uses three
spaces per flow (flow space for reassembly, one space per sub-flow for
congestion control and loss detection), exactly like MPTCP's data/sub-flow
split (§4.2). The classes here are space-agnostic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple


class ReceiveScoreboard:
    """Receiver-side tracking of which seqs arrived; produces cum + SACK."""

    __slots__ = ("_cum", "_ooo", "duplicates", "_sack_limit")

    def __init__(self, sack_limit: int = 16) -> None:
        self._cum = 0  # next expected seq
        self._ooo: Set[int] = set()
        self.duplicates = 0
        self._sack_limit = sack_limit

    @property
    def cum(self) -> int:
        """Next expected sequence number (all below are received)."""
        return self._cum

    def add(self, seq: int) -> bool:
        """Record arrival of ``seq``. Returns True if it was new."""
        if seq < self._cum or seq in self._ooo:
            self.duplicates += 1
            return False
        if seq == self._cum:
            self._cum += 1
            while self._cum in self._ooo:
                self._ooo.discard(self._cum)
                self._cum += 1
        else:
            self._ooo.add(seq)
        return True

    def has(self, seq: int) -> bool:
        return seq < self._cum or seq in self._ooo

    def sack(self) -> Tuple[int, ...]:
        """Out-of-order seqs above cum, capped to the *highest* few.

        Like TCP SACK's most-recent-first reporting: under heavy loss the
        freshest arrivals are the news the sender needs for dupack-based
        detection; the oldest holes are already implied by ``cum``.
        """
        if not self._ooo:
            return ()
        ordered = sorted(self._ooo)
        return tuple(ordered[-self._sack_limit:])

    def received_count(self) -> int:
        return self._cum + len(self._ooo)


class SenderScoreboard:
    """Sender-side ACK/SACK processing with SACK-based loss detection.

    A transmitted seq is declared lost once ``dupthresh`` seqs above it have
    been acknowledged after its transmission (RFC 6675-style), or when the
    retransmission timer fires. Callers learn about transitions through the
    return values of :meth:`on_ack`.
    """

    __slots__ = ("dupthresh", "_outstanding", "_acked", "_cum", "_dup_counts")

    def __init__(self, dupthresh: int = 3) -> None:
        self.dupthresh = dupthresh
        self._outstanding: Dict[int, int] = {}  # seq -> sent_at (ns)
        self._acked: Set[int] = set()
        self._cum = 0  # everything below is acked
        self._dup_counts: Dict[int, int] = {}

    # ------------------------------------------------------------- sending

    def on_send(self, seq: int, now_ns: int) -> None:
        self._outstanding[seq] = now_ns
        self._dup_counts[seq] = 0

    @property
    def in_flight(self) -> int:
        return len(self._outstanding)

    def outstanding_seqs(self) -> List[int]:
        return sorted(self._outstanding)

    def oldest_outstanding(self) -> Optional[int]:
        return min(self._outstanding) if self._outstanding else None

    def sent_at(self, seq: int) -> Optional[int]:
        return self._outstanding.get(seq)

    # ---------------------------------------------------------------- acks

    def on_ack(self, cum: int, sack: Iterable[int]) -> Tuple[List[int], List[int]]:
        """Process an ACK. Returns ``(newly_acked, newly_lost)`` seq lists.

        ``newly_acked`` reports every seq newly known to be delivered — even
        one previously declared lost (a spurious loss detection, or the
        cumulative ACK of a retransmission): cumulative coverage is
        authoritative, and callers must be able to cancel pending
        retransmissions for such seqs.
        """
        newly_acked: List[int] = []
        news_above: List[int] = []
        if cum > self._cum:
            for seq in range(self._cum, cum):
                if seq in self._outstanding:
                    del self._outstanding[seq]
                    self._dup_counts.pop(seq, None)
                if seq not in self._acked:
                    self._acked.add(seq)
                    newly_acked.append(seq)
            self._cum = cum
            news_above.append(cum - 1)
        for seq in sack:
            if seq >= self._cum and seq not in self._acked:
                self._acked.add(seq)
                news_above.append(seq)
                if seq in self._outstanding:
                    del self._outstanding[seq]
                    self._dup_counts.pop(seq, None)
                newly_acked.append(seq)
        newly_lost = self._detect_losses(news_above)
        return newly_acked, newly_lost

    def _detect_losses(self, news_above: List[int]) -> List[int]:
        if not news_above or not self._outstanding:
            return []
        highest_news = max(news_above)
        lost: List[int] = []
        for seq in list(self._outstanding):
            if seq < highest_news:
                self._dup_counts[seq] = self._dup_counts.get(seq, 0) + 1
                if self._dup_counts[seq] >= self.dupthresh:
                    del self._outstanding[seq]
                    self._dup_counts.pop(seq, None)
                    lost.append(seq)
        return sorted(lost)

    def remove(self, seq: int) -> bool:
        """Drop an in-flight entry that was implicitly acknowledged out of
        band (e.g., the same FlexPass segment ACKed on the other sub-flow).
        Returns True if the seq was outstanding."""
        if seq in self._outstanding:
            del self._outstanding[seq]
            self._dup_counts.pop(seq, None)
            self._acked.add(seq)
            return True
        return False

    def declare_all_lost(self) -> List[int]:
        """Timeout path: every in-flight seq is presumed lost."""
        lost = sorted(self._outstanding)
        self._outstanding.clear()
        self._dup_counts.clear()
        return lost

    def is_acked(self, seq: int) -> bool:
        return seq < self._cum or seq in self._acked
