"""RTT estimation and retransmission timers (RFC 6298 with a floor).

The paper sets RTO_min to 4 ms for kernel TCP / DCTCP in both testbed and
simulation; the reactive machinery here uses the same default.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.sim.timerwheel import TimerWheel, WheelTimer, wheel_enabled
from repro.sim.units import MILLIS, SECONDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle, Simulator


class RttEstimator:
    """Jacobson/Karels smoothed RTT with a minimum RTO clamp."""

    __slots__ = ("srtt", "rttvar", "min_rto_ns", "max_rto_ns")

    def __init__(self, min_rto_ns: int = 4 * MILLIS, max_rto_ns: int = SECONDS) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns

    def update(self, sample_ns: int) -> None:
        if sample_ns <= 0:
            return
        if self.srtt is None:
            self.srtt = float(sample_ns)
            self.rttvar = sample_ns / 2.0
        else:
            delta = abs(self.srtt - sample_ns)
            self.rttvar = 0.75 * self.rttvar + 0.25 * delta
            self.srtt = 0.875 * self.srtt + 0.125 * sample_ns

    def rto_ns(self) -> int:
        if self.srtt is None:
            return self.min_rto_ns
        rto = self.srtt + max(4.0 * self.rttvar, 1000.0)
        return int(min(max(rto, self.min_rto_ns), self.max_rto_ns))


class RetransmitTimer:
    """One retransmission timer with exponential backoff.

    Re-armed on every ACK and almost never fired, this is the archetypal
    cancel-heavy coarse timer: on the wheel credit plane (the default) it
    lives on the simulator's shared :class:`~repro.sim.timerwheel.TimerWheel`
    — O(1) arm and cancel, no engine entry per arm. The legacy plane keeps
    the historical ``after`` + ``EventHandle.cancel`` path as the
    digest-equivalence oracle (see DESIGN.md §6i).
    """

    def __init__(self, sim: "Simulator", estimator: RttEstimator,
                 on_timeout: Callable[[], None]) -> None:
        self._sim = sim
        self._est = estimator
        self._on_timeout = on_timeout
        self._wheel = TimerWheel.for_sim(sim) if wheel_enabled() else None
        self._timer: Optional[WheelTimer] = None
        self._handle: Optional["EventHandle"] = None
        self._backoff = 1

    @property
    def armed(self) -> bool:
        if self._wheel is not None:
            return self._timer is not None
        return self._handle is not None

    def arm(self) -> None:
        """(Re)start the timer at the current RTO."""
        self.cancel()
        delay = min(self._est.rto_ns() * self._backoff, self._est.max_rto_ns)
        if self._wheel is not None:
            self._timer = self._wheel.arm(delay, self._fire_wheel)
        else:
            self._handle = self._sim.after(delay, self._fire)

    def arm_if_idle(self) -> None:
        if not self.armed:
            self.arm()

    def cancel(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def on_progress(self) -> None:
        """Fresh ACK progress: reset backoff and restart."""
        self._backoff = 1
        self.arm()

    def _fire_wheel(self) -> None:
        self._timer = None
        self._backoff = min(self._backoff * 2, 64)
        self._on_timeout()

    def _fire(self) -> None:
        self._handle = None
        self._backoff = min(self._backoff * 2, 64)
        self._on_timeout()
