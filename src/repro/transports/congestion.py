"""DCTCP congestion-window logic, reusable by plain DCTCP, the Layering
scheme, and FlexPass's reactive sub-flow.

Implements the DCTCP algorithm of Alizadeh et al. [1]: the receiver echoes
per-packet CE marks; the sender maintains an EWMA ``alpha`` of the marked
fraction per window (RTT) and multiplicatively cuts the window by
``alpha / 2`` at most once per window. Growth follows standard slow start /
congestion avoidance.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DctcpWindowParams:
    init_cwnd: float = 10.0
    min_cwnd: float = 1.0
    max_cwnd: float = 1 << 20
    g: float = 1.0 / 16.0  # alpha EWMA gain
    init_ssthresh: float = float(1 << 20)


class DctcpWindow:
    """Window state machine; all quantities in segments."""

    def __init__(self, params: DctcpWindowParams = DctcpWindowParams()) -> None:
        self.p = params
        self.cwnd = params.init_cwnd
        self.ssthresh = params.init_ssthresh
        self.alpha = 0.0
        # Observation window: [window_start_seq, window_end_seq). A new
        # window opens when an ACK at/above window_end_seq arrives.
        self._window_end_seq = 0
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._cut_this_window = False
        self.ecn_cuts = 0
        self.loss_cuts = 0
        self.timeout_resets = 0

    # ------------------------------------------------------------- growth

    def on_ack(self, acked_seq: int, ce: bool, snd_nxt: int) -> None:
        """Process one newly-acknowledged segment.

        ``acked_seq`` is the highest seq this ACK newly covers; ``snd_nxt``
        is the sender's next-to-send seq (defines the next window edge).
        """
        self._acked_in_window += 1
        if ce:
            self._marked_in_window += 1
        if acked_seq >= self._window_end_seq:
            self._end_window(snd_nxt)
        self._grow()

    def _end_window(self, snd_nxt: int) -> None:
        acked = max(self._acked_in_window, 1)
        frac = self._marked_in_window / acked
        g = self.p.g
        self.alpha = (1.0 - g) * self.alpha + g * frac
        if self._marked_in_window > 0 and not self._cut_this_window:
            self.cwnd = max(self.p.min_cwnd, self.cwnd * (1.0 - self.alpha / 2.0))
            self.ssthresh = self.cwnd
            self.ecn_cuts += 1
        self._window_end_seq = snd_nxt
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._cut_this_window = False

    def _grow(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start
        else:
            self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, self.p.max_cwnd)

    # ------------------------------------------------------------- losses

    def on_loss(self) -> None:
        """Fast-retransmit style halving, at most once per window."""
        if self._cut_this_window:
            return
        self.cwnd = max(self.p.min_cwnd, self.cwnd / 2.0)
        self.ssthresh = self.cwnd
        self._cut_this_window = True
        self.loss_cuts += 1

    def on_timeout(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.p.min_cwnd
        self._cut_this_window = False
        self.timeout_resets += 1

    def allowed_in_flight(self) -> int:
        return int(self.cwnd)
