#!/usr/bin/env python3
"""Coexistence microbenchmarks (paper Figures 1, 7, and 9).

Four scenarios on a 10G bottleneck:

1. Naïve ExpressPass vs DCTCP (Figure 1a / 9a) — legacy starves.
2. Homa vs DCTCP without isolation (Figure 1b) — same story.
3. FlexPass vs DCTCP (Figure 9b) — balanced halves, no starvation.
4. FlexPass sub-flow anatomy (Figure 7) — who carries the bytes when the
   flow is alone, paired with another FlexPass flow, or facing DCTCP.

Run:  python examples/coexistence_microbench.py
"""

from repro.experiments.figures import (
    fig01a_expresspass_vs_dctcp,
    fig01b_homa_vs_dctcp,
    fig07_subflow_throughput,
    fig09_coexistence,
)


def main() -> None:
    fig01a_expresspass_vs_dctcp().print_report()
    fig01b_homa_vs_dctcp().print_report()

    xp = fig09_coexistence("expresspass")
    fp = fig09_coexistence("flexpass")
    xp.print_report()
    fp.print_report()
    print(
        f"\nStarvation time of the legacy flow (paper Figure 9c): "
        f"{xp.starvation('dctcp'):.1%} under naïve ExpressPass vs "
        f"{fp.starvation('dctcp'):.1%} under FlexPass "
        f"(paper: 96.86% vs 0.08%)."
    )

    for scenario in ("one_flexpass", "two_flexpass", "dctcp_vs_flexpass"):
        fig07_subflow_throughput(scenario).print_report()


if __name__ == "__main__":
    main()
