#!/usr/bin/env python3
"""Failure recovery: the §4.3 robustness story, end to end.

Two demonstrations in a few seconds:

1. **Link outage** — one FlexPass and one DCTCP flow share a dumbbell whose
   bottleneck link dies mid-transfer and is repaired 4 ms later. Packets in
   flight are destroyed, routes reconverge on both transitions, and both
   flows complete exactly once (FlexPass via reactive retransmission and
   proactive retransmission, DCTCP via its RTO).

2. **Seeded random loss** — a full Clos experiment run under a FaultPlan
   (Gilbert-Elliott burst loss on every link, data packets only) carried on
   the ExperimentConfig, showing fault counters on the result and that the
   same seed reproduces the same faults bit for bit.

Run:  python examples/failure_recovery.py
"""

from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.figures import failure_recovery
from repro.experiments.runner import run_experiment
from repro.faults import FaultPlan, LinkFailureSpec, LinkLossSpec
from repro.metrics.summary import degraded_title, print_table
from repro.net.topology import ClosSpec
from repro.sim.units import MILLIS


def main() -> None:
    # 1. The scripted outage scenario (also: `repro.cli figure failure-recovery`).
    failure_recovery(down_ms=2.0, up_ms=6.0).print_report()

    # 2. A whole experiment under a seeded fault plan.
    plan = FaultPlan(
        losses=(
            # bursty loss on every link, proactive/reactive data only
            LinkLossSpec(model="gilbert", rate=1.0,
                         burst_start=0.001, burst_end=0.2, kinds=("data",)),
        ),
        failures=(
            # one ToR uplink flaps for half a millisecond mid-run
            LinkFailureSpec(a="tor0.0", b="agg0.0",
                            down_ns=1 * MILLIS, up_ns=int(1.5 * MILLIS)),
        ),
    )
    cfg = ExperimentConfig(
        scheme=SchemeName.FLEXPASS,
        deployment=1.0,
        load=0.4,
        sim_time_ns=3 * MILLIS,
        size_scale=16.0,
        seed=7,
        clos=ClosSpec(n_pods=2, aggs_per_pod=1, tors_per_pod=2, hosts_per_tor=2),
        faults=plan,
        max_wall_seconds=120.0,  # watchdog: a runaway run aborts, not hangs
    )
    res = run_experiment(cfg)
    twin = run_experiment(cfg)
    fc = res.fault_counters
    print_table(
        degraded_title("FlexPass Clos under seeded faults", res),
        ("metric", "value"),
        [
            ("flows completed", f"{res.completed}/{len(res.records)}"),
            ("faults injected (drops)", fc.injected_drops),
            ("link-down losses",
             fc.discarded_in_flight + fc.dropped_link_down),
            ("reroutes", fc.reroutes),
            ("same seed, same faults", twin.fault_counters == fc),
        ],
    )


if __name__ == "__main__":
    main()
