#!/usr/bin/env python3
"""Quickstart: one FlexPass flow sharing a 10G link with legacy DCTCP.

Reproduces the paper's headline coexistence property (Figure 9b) in a few
seconds: the FlexPass flow and the DCTCP flow each take about half the
bottleneck, the reactive sub-flow yields, and nobody starves.

Run:  python examples/quickstart.py
"""

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.metrics.summary import print_table
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender


def main() -> None:
    sim = Simulator()

    # A dumbbell with the paper's switch configuration: Q0 credits
    # (strict priority, rate-limited to w_q), Q1 FlexPass (ECN + selective
    # dropping), Q2 legacy; Q1/Q2 under DWRR.
    wq = 0.5
    topo = build_dumbbell(
        sim, flexpass_queue_factory(QueueSettings(wq=wq)), DumbbellSpec(n_pairs=2)
    )

    size = 40 * MB
    horizon_ms = 30

    # Flow 1: FlexPass (upgraded traffic).
    fp_spec = FlowSpec(1, topo.senders[0], topo.receivers[0], size, 0,
                       scheme="flexpass", group="new")
    fp_stats = FlowStats()
    fp_params = FlexPassParams(
        max_credit_rate_bps=10 * GBPS * wq * CREDIT_PER_DATA
    )
    FlexPassReceiver(sim, fp_spec, fp_stats, fp_params)
    fp_sender = FlexPassSender(sim, fp_spec, fp_stats, fp_params)
    sim.at(0, fp_sender.start)

    # Flow 2: legacy DCTCP.
    dc_spec = FlowSpec(2, topo.senders[1], topo.receivers[1], size, 0,
                       scheme="dctcp", group="legacy")
    dc_stats = FlowStats()
    DctcpReceiver(sim, dc_spec, dc_stats, DctcpParams())
    dc_sender = DctcpSender(sim, dc_spec, dc_stats, DctcpParams())
    sim.at(0, dc_sender.start)

    sim.run(until=horizon_ms * MILLIS)

    total = fp_stats.delivered_bytes + dc_stats.delivered_bytes
    print_table(
        f"Bandwidth over {horizon_ms} ms of contention (10G bottleneck)",
        ("flow", "delivered", "share", "via proactive", "via reactive",
         "timeouts"),
        [
            ("FlexPass", f"{fp_stats.delivered_bytes / 1e6:.1f} MB",
             f"{fp_stats.delivered_bytes / total:.1%}",
             f"{fp_stats.proactive_bytes / 1e6:.1f} MB",
             f"{fp_stats.reactive_bytes / 1e6:.1f} MB",
             fp_stats.timeouts),
            ("DCTCP", f"{dc_stats.delivered_bytes / 1e6:.1f} MB",
             f"{dc_stats.delivered_bytes / total:.1%}",
             "-", "-", dc_stats.timeouts),
        ],
    )
    print(
        "\nFlexPass's proactive sub-flow used its reserved w_q share and the\n"
        "reactive sub-flow backed off, leaving legacy DCTCP its fair half —\n"
        "compare Figure 9(b) of the paper."
    )


if __name__ == "__main__":
    main()
