#!/usr/bin/env python3
"""Gradual deployment on a Clos fabric (the paper's §6.2 scenario).

Sweeps the fraction of FlexPass-enabled racks from 0% to 100% under a web-
search workload and prints the tail/average FCT per deployment point, for
both the naïve ExpressPass rollout and FlexPass — the core incremental-
benefit comparison behind Figures 10 and 12.

Run:  python examples/gradual_deployment.py [--load 0.5] [--ms 10] [--paper-scale]

``--paper-scale`` uses the full 192-host 40G topology and unscaled flow
sizes; expect a long run in pure Python.
"""

import argparse

from repro.experiments.config import SchemeName
from repro.experiments.sweep import (
    default_sweep_config,
    deployment_sweep,
    fig10_rows,
    fig12_rows,
    print_grid,
)
from repro.net.topology import ClosSpec
from repro.sim.units import MILLIS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--ms", type=int, default=10, help="simulated time")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args()

    overrides = dict(load=args.load, sim_time_ns=args.ms * MILLIS, seed=args.seed)
    if args.paper_scale:
        overrides.update(clos=ClosSpec.paper_scale(), size_scale=1.0)
    base = default_sweep_config(**overrides)

    schemes = (SchemeName.NAIVE, SchemeName.FLEXPASS)
    deployments = (0.0, 0.25, 0.5, 0.75, 1.0)
    print(f"Sweeping {len(schemes)} schemes x {len(deployments)} deployment "
          f"points on a {base.clos.n_hosts}-host Clos at load {base.load} ...")
    grid = deployment_sweep(base, schemes, deployments)

    print_grid(
        "Figure 10: FCT during the transition (lower is better)",
        fig10_rows(grid),
        ("scheme", "deployed", "p99 small FCT (ms)", "avg FCT (ms)", "censored"),
    )
    print_grid(
        "Figure 12: tail FCT by traffic group",
        fig12_rows(grid),
        ("scheme", "deployed", "legacy p99 (ms)", "upgraded p99 (ms)"),
    )

    base_cell = grid[("flexpass", 0.0)]
    full_cell = grid[("flexpass", 1.0)]
    if full_cell.p99_small_ms < base_cell.p99_small_ms:
        gain = 1 - full_cell.p99_small_ms / base_cell.p99_small_ms
        print(f"\nFlexPass at full deployment improves the 99th-percentile "
              f"small-flow FCT by {gain:.0%} over the all-DCTCP baseline "
              f"(paper: up to 44%).")


if __name__ == "__main__":
    main()
