#!/usr/bin/env python3
"""Incast microbenchmark (paper Figure 8).

An 8-to-1 synchronized request: N concurrent 64 kB responses converge on
one receiver. DCTCP cannot recover tail losses without RTOs once the degree
is high; ExpressPass and FlexPass stay timeout-free, and FlexPass finishes
faster than ExpressPass because its reactive sub-flow uses the first RTT
before credits arrive.

Run:  python examples/incast.py [--flows 8 24 48 80]
"""

import argparse

from repro.experiments.figures import fig08_incast


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, nargs="+",
                        default=[8, 24, 48, 80])
    parser.add_argument("--response-kb", type=int, default=64)
    args = parser.parse_args()

    fig = fig08_incast(n_flows_list=args.flows, response_kb=args.response_kb)
    fig.print_report()

    worst_dctcp = max(fig.timeouts["dctcp"])
    fp_timeouts = sum(fig.timeouts["flexpass"])
    print(f"\nDCTCP timeouts at the highest degree: {worst_dctcp}; "
          f"FlexPass timeouts across every run: {fp_timeouts} "
          f"(paper: zero).")


if __name__ == "__main__":
    main()
