#!/usr/bin/env python3
"""Regional multi-DC fabric: declarative topology ingestion, end to end.

Loads ``examples/regional_fabric.yaml`` (two Clos-pod data centers joined
by a 40G / 500us WAN backbone), then demonstrates the full declarative
pipeline in a few seconds:

1. **Ontology lookups** — named nodes (``CORE-SYD-01``), site/region
   grouping, and the inter-region backbone links a fault plan can address
   by name.
2. **A clean FlexPass run** with the locality matrix keeping 80% of
   traffic inside each region (the WAN carries the rest).
3. **A backbone outage** — the first WAN link fails by ontology name for
   the middle third of the run; ECMP reconverges onto the surviving
   backbone link and back.

The same pipeline from the shell:

    repro topo validate examples/regional_fabric.yaml
    repro topo run examples/regional_fabric.yaml --scheme flexpass --faults

Run:  python examples/regional_fabric.py
"""

from pathlib import Path

from repro.experiments.scenarios import regional_fabric_config
from repro.experiments.runner import run_experiment
from repro.faults import FaultPlan, LinkFailureSpec
from repro.metrics.summary import degraded_title, print_table
from repro.net.fabric import load_topology_spec
from repro.sim.units import MILLIS

SPEC_PATH = Path(__file__).with_name("regional_fabric.yaml")


def main() -> None:
    spec = load_topology_spec(SPEC_PATH)
    backbones = spec.inter_region_links()
    print(f"{spec.name}: {len(spec.sites)} sites, {len(spec.hosts())} hosts, "
          f"{len(spec.links)} links")
    print("inter-region backbone:",
          ", ".join(link.label for link in backbones))

    # 1. Clean run, 80% of traffic intra-region.
    cfg = regional_fabric_config(spec, load=0.4, sim_time_ns=2 * MILLIS,
                                 size_scale=16.0, locality_intra=0.8, seed=3)
    clean = run_experiment(cfg)

    # 2. Same run with the first WAN link down for the middle third.
    wan = backbones[0]
    plan = FaultPlan(failures=(LinkFailureSpec(
        a=wan.a, b=wan.b,
        down_ns=cfg.sim_time_ns // 3, up_ns=2 * cfg.sim_time_ns // 3),))
    faulted = run_experiment(cfg.with_(faults=plan))

    for title, res in (("clean fabric", clean),
                       (f"{wan.label} down mid-run", faulted)):
        fc = res.fault_counters
        print_table(
            degraded_title(f"regional fabric: {title}", res),
            ("metric", "value"),
            [
                ("flows completed", f"{res.completed}/{len(res.records)}"),
                ("avg FCT (ms)", res.fct().avg_ms),
                ("p99 small FCT (ms)", res.fct(small=True).p99_ms),
                ("link-down losses",
                 fc.discarded_in_flight + fc.dropped_link_down),
                ("reroutes", fc.reroutes),
            ],
        )


if __name__ == "__main__":
    main()
