#!/usr/bin/env python3
"""North-south traffic after full deployment (§1 / §2.1 motivation).

Even when every rack runs FlexPass, legacy traffic never disappears:
Internet-facing flows (~1/6 of Facebook's datacenter traffic per Roy et
al.) keep crossing the boundary. This example deploys FlexPass on 100% of
racks, keeps a fraction of flows on legacy DCTCP ("north-south"), and shows
both classes coexist: neither starves, FlexPass keeps its bounded-queue
benefits, legacy keeps reasonable tails.

Run:  python examples/north_south.py [--ns-fraction 0.18]
"""

import argparse

from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.runner import build_flow_specs, run_experiment
from repro.experiments.scenarios import make_scheme_setup
from repro.metrics.summary import print_table
from repro.net.topology import ClosSpec, build_clos
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import MILLIS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ns-fraction", type=float, default=0.18,
                        help="fraction of flows that stay legacy (north-south)")
    parser.add_argument("--ms", type=int, default=10)
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    cfg = ExperimentConfig(
        scheme=SchemeName.FLEXPASS, deployment=1.0, load=args.load,
        sim_time_ns=args.ms * MILLIS, size_scale=8.0, seed=args.seed,
        clos=ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=2, hosts_per_tor=4),
    )

    # Build the experiment by hand so we can relabel a fraction of flows as
    # boundary-crossing legacy traffic despite the 100% rack deployment.
    sim = Simulator()
    rng = RngRegistry(cfg.seed)
    setup = make_scheme_setup(cfg)
    clos = build_clos(sim, setup.queue_factory, cfg.clos)
    specs, _ = build_flow_specs(cfg, clos, rng)
    ns_rng = rng.stream("north-south")
    for spec in specs:
        if ns_rng.random() < args.ns_fraction:
            spec.group = "legacy"
            spec.scheme = "dctcp"

    live = {}
    for spec in specs:
        def launch(s=spec):
            live[s.flow_id] = (s, setup.launch(sim, s, None))
        sim.at(spec.start_ns, launch)
    sim.run(until=cfg.sim_time_ns)

    from repro.metrics.fct import FlowRecord, summarize

    records = [FlowRecord.from_flow(s, st) for s, (st) in
               ((s, st) for s, st in live.values())]
    cutoff = cfg.scaled_cutoff_bytes()
    fp = summarize(records, small_cutoff_bytes=cutoff, group="new")
    ns = summarize(records, small_cutoff_bytes=cutoff, group="legacy")
    fp_all = summarize(records, group="new")
    ns_all = summarize(records, group="legacy")
    print_table(
        f"Full FlexPass deployment + {args.ns_fraction:.0%} north-south legacy",
        ("class", "flows", "avg FCT (ms)", "p99 small FCT (ms)", "timeouts"),
        [
            ("FlexPass (east-west)", fp_all.count, fp_all.avg_ms, fp.p99_ms,
             fp_all.timeouts),
            ("DCTCP (north-south)", ns_all.count, ns_all.avg_ms, ns.p99_ms,
             ns_all.timeouts),
        ],
    )
    print("\nBoth classes make progress: the w_q reservation keeps FlexPass's "
          "proactive loop intact\nwhile DWRR guarantees the legacy queue its "
          "share — the heterogeneity §2.1 says is permanent.")


if __name__ == "__main__":
    main()
