#!/usr/bin/env python3
"""Workload comparison (paper Figures 15 & 16, Appendix A).

Runs the deployment transition under the four realistic workloads the paper
evaluates — cache follower, web search, data mining, and Hadoop — and prints
tail-FCT gains and overall average FCT for the naïve ExpressPass rollout vs
FlexPass.

Run:  python examples/workload_comparison.py [--ms 8] [--load 0.5]
"""

import argparse

from repro.experiments.config import SchemeName
from repro.experiments.sweep import default_sweep_config, fig15_16_workloads
from repro.metrics.summary import print_table
from repro.sim.units import MILLIS

WORKLOADS = ("cachefollower", "websearch", "datamining", "hadoop")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ms", type=int, default=8)
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    base = default_sweep_config(load=args.load, sim_time_ns=args.ms * MILLIS,
                                seed=args.seed)
    cells = fig15_16_workloads(
        base, WORKLOADS, (SchemeName.NAIVE, SchemeName.FLEXPASS),
        (0.0, 0.5, 1.0),
    )

    rows15, rows16 = [], []
    for (wl, scheme, dep), cell in sorted(cells.items()):
        baseline = cells[(wl, scheme, 0.0)].p99_small_ms
        gain = 1 - cell.p99_small_ms / baseline if baseline else float("nan")
        rows15.append((wl, scheme, f"{dep:.0%}", cell.p99_small_ms,
                       f"{gain:+.0%}"))
        rows16.append((wl, scheme, f"{dep:.0%}", cell.avg_all_ms))

    print_table("Figure 15: 99p small-flow FCT (gain vs 0% baseline)",
                ("workload", "scheme", "deployed", "p99 (ms)", "gain"), rows15)
    print_table("Figure 16: overall average FCT",
                ("workload", "scheme", "deployed", "avg (ms)"), rows16)


if __name__ == "__main__":
    main()
