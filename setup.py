"""Setup shim so `pip install -e .` works offline (no wheel package here)."""

from setuptools import setup

setup()
