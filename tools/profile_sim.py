#!/usr/bin/env python
"""cProfile harness for the simulator hot paths.

Runs the same workloads the simulator-core benchmarks time — pure event
dispatch, store-and-forward packet forwarding, and the strict-priority +
DWRR egress scheduler — outside pytest, so they can be profiled, scaled,
and scripted from CI.

Examples::

    # quick smoke (small sizes, no thresholds) + machine-readable record
    python tools/profile_sim.py --scenario all --quick --json /tmp/BENCH_engine.json

    # where does event dispatch spend its time?
    python tools/profile_sim.py --scenario dispatch --profile

    # scale up the scheduler microbench
    python tools/profile_sim.py --scenario dwrr --packets 500000
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.metrics.bench import record_bench  # noqa: E402
from repro.net.packet import Dscp, Packet, PacketKind  # noqa: E402
from repro.net.queues import PacketQueue, QueueConfig  # noqa: E402
from repro.net.scheduler import PortScheduler, QueueSchedule  # noqa: E402
from repro.net.topology import DumbbellSpec, build_dumbbell  # noqa: E402
from repro.sim.engine import ENGINE_BACKENDS, make_simulator  # noqa: E402


def _single_queue_factory(name, rate_bps, is_host_nic):
    """All traffic in one FIFO — the simplest valid port."""
    q = PacketQueue(QueueConfig(name="all"))
    classifier = {d.value: 0 for d in Dscp}
    classifier.update({Dscp.HOMA_BASE + p: 0 for p in range(8)})
    return [QueueSchedule(q, priority=0, weight=1.0)], classifier


class _Recorder:
    def __init__(self):
        self.count = 0

    def on_packet(self, pkt):
        self.count += 1


def scenario_dispatch(n_events: int) -> dict:
    """Pure engine: schedule/execute ``n_events`` chained events."""
    sim = make_simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            sim.after(10, tick)

    sim.at(0, tick)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert count[0] == n_events
    return {"n_events": n_events, "elapsed_s": elapsed,
            "events_per_sec": n_events / elapsed}


def scenario_forwarding(n_packets: int) -> dict:
    """Fabric: push ``n_packets`` across a 3-hop dumbbell path."""
    sim = make_simulator()
    db = build_dumbbell(sim, _single_queue_factory, DumbbellSpec(n_pairs=1))
    rec = _Recorder()
    db.receivers[0].register_receiver(1, rec)
    src, dst = db.senders[0], db.receivers[0]
    for _ in range(n_packets):
        src.send(Packet(PacketKind.DATA, 1, src.id, dst.id, 1584,
                        dscp=Dscp.LEGACY))
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert rec.count == n_packets
    return {"n_packets": n_packets, "elapsed_s": elapsed,
            "packets_per_sec": n_packets / elapsed,
            "events_per_sec": sim.events_run / elapsed}


def scenario_telemetry(n_packets: int) -> dict:
    """Forwarding with a telemetry sampler attached at the default cadence.

    Same dumbbell workload as ``scenario_forwarding``, plus a
    :class:`~repro.metrics.telemetry.TelemetrySampler` watching every port
    on the path at 100 µs — the telemetry-ON side of the overhead gate in
    ``benchmarks/test_bench_simulator_perf.py``.
    """
    from repro.metrics.telemetry import TelemetrySampler
    from repro.sim.units import MILLIS

    sim = make_simulator()
    db = build_dumbbell(sim, _single_queue_factory, DumbbellSpec(n_pairs=1))
    rec = _Recorder()
    db.receivers[0].register_receiver(1, rec)
    src, dst = db.senders[0], db.receivers[0]
    # 1584 B at 10 Gbps serializes in ~1.27 µs, so the bottleneck drains in
    # ~1.27 µs x n_packets: bound the sampler just past that so it covers
    # the whole run but lets the heap empty.
    horizon = ((n_packets * 1600) // MILLIS + 2) * MILLIS
    sampler = TelemetrySampler(sim, interval_ns=100_000, until_ns=horizon)
    for port in db.topo.all_ports():
        sampler.watch_port(port)
        sampler.watch_link(port)
    sampler.watch_pool()
    sampler.start()
    for _ in range(n_packets):
        src.send(Packet(PacketKind.DATA, 1, src.id, dst.id, 1584,
                        dscp=Dscp.LEGACY))
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert rec.count == n_packets
    series = sampler.freeze()
    return {"n_packets": n_packets, "elapsed_s": elapsed,
            "packets_per_sec": n_packets / elapsed,
            "n_series": len(series), "ticks": sampler.ticks}


def scenario_audit(n_packets: int) -> dict:
    """Forwarding with the invariant auditor fully enabled.

    Same dumbbell workload as ``scenario_forwarding``, plus digest taps on
    every link, periodic checkpoints at 100 µs, and the full horizon audit
    — the audit-ON side of the overhead gate in
    ``benchmarks/test_bench_simulator_perf.py`` (the gate itself holds the
    *disabled* path to <2%; this scenario tracks the enabled cost).
    """
    from repro.audit import AuditConfig, InvariantAuditor
    from repro.sim.units import MILLIS

    sim = make_simulator()
    db = build_dumbbell(sim, _single_queue_factory, DumbbellSpec(n_pairs=1))
    rec = _Recorder()
    db.receivers[0].register_receiver(1, rec)
    src, dst = db.senders[0], db.receivers[0]
    horizon = ((n_packets * 1600) // MILLIS + 2) * MILLIS
    auditor = InvariantAuditor(
        sim, db.topo,
        config=AuditConfig(digest=True, checkpoint_interval_ns=100_000))
    auditor.install(horizon)
    for _ in range(n_packets):
        src.send(Packet(PacketKind.DATA, 1, src.id, dst.id, 1584,
                        dscp=Dscp.LEGACY))
    t0 = time.perf_counter()
    sim.run()
    report = auditor.finalize()
    elapsed = time.perf_counter() - t0
    assert rec.count == n_packets
    assert report.ok, report.violations
    return {"n_packets": n_packets, "elapsed_s": elapsed,
            "packets_per_sec": n_packets / elapsed,
            "checks": report.checks, "digest_events": report.digest.total}


def scenario_dwrr(n_packets: int) -> dict:
    """Egress scheduler: drain ``n_packets`` through a 3-queue port config
    (strict-priority credit queue + two DWRR data queues, one small-weight)."""
    queues = [PacketQueue(QueueConfig(name=f"q{i}")) for i in range(3)]
    sched = PortScheduler([
        QueueSchedule(queues[0], priority=0, weight=1.0),
        QueueSchedule(queues[1], priority=1, weight=1.0),
        QueueSchedule(queues[2], priority=1, weight=0.05),
    ])
    per_queue = n_packets // 3
    for q in queues:
        for _ in range(per_queue):
            q.push(Packet(PacketKind.DATA, 1, 0, 1, 1500, dscp=Dscp.LEGACY))
    total = 3 * per_queue
    t0 = time.perf_counter()
    served = 0
    while True:
        pkt, _ = sched.next(0)
        if pkt is None:
            break
        served += 1
    elapsed = time.perf_counter() - t0
    assert served == total, f"scheduler wedged: {served}/{total} served"
    return {"n_packets": total, "elapsed_s": elapsed,
            "packets_per_sec": total / elapsed}



def scenario_pool(n_packets: int) -> dict:
    """Packet pool: acquire/release churn across two interleaved flows."""
    from repro.net.packet import PacketPool

    pool = PacketPool(max_size=4096)
    t0 = time.perf_counter()
    live = []
    for i in range(n_packets):
        pkt = pool.acquire(PacketKind.DATA, 1 + (i & 1), 0, 1, 1584,
                           seq=i, dscp=Dscp.LEGACY)
        live.append(pkt)
        if len(live) >= 32:
            # release the oldest half, like packets draining a queue
            for p in live[:16]:
                pool.release(p)
            del live[:16]
    for p in live:
        pool.release(p)
    elapsed = time.perf_counter() - t0
    assert pool.acquired == n_packets and pool.released == n_packets
    return {"n_packets": n_packets, "elapsed_s": elapsed,
            "packets_per_sec": n_packets / elapsed,
            "reuse_ratio": pool.reused / max(1, pool.acquired)}


def scenario_sweep(n_configs: int) -> dict:
    """Sweep: stream ``n_configs`` tiny Clos experiments through run_many."""
    from repro.experiments.config import ExperimentConfig, SchemeName
    from repro.experiments.parallel import run_many, FailedResult

    configs = [
        ExperimentConfig(scheme=SchemeName.DCTCP, sim_time_ns=1_000_000,
                         load=0.3, seed=seed)
        for seed in range(1, n_configs + 1)
    ]
    t0 = time.perf_counter()
    results = run_many(configs)
    elapsed = time.perf_counter() - t0
    failed = sum(1 for r in results if isinstance(r, FailedResult))
    assert failed == 0, f"{failed} configs failed"
    return {"n_configs": n_configs, "elapsed_s": elapsed,
            "configs_per_sec": n_configs / elapsed}


def scenario_clos_full(horizon_us: int) -> dict:
    """Paper-scale Clos (192 hosts, 40 Gbps, §6.2 shape) at full load.

    The headline deployment scenario: every host credit-paced at 40 Gbps,
    so the credit plane — not event dispatch — dominates. ``size`` is the
    simulated horizon in microseconds (the fabric and load are fixed at
    paper scale; scaling the horizon scales events near-linearly).
    """
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import paper_scale_config
    from repro.sim.units import MICROS

    cfg = paper_scale_config(hosts=192, full_load=True,
                             sim_time_ns=horizon_us * MICROS)
    t0 = time.perf_counter()
    result = run_experiment(cfg)
    elapsed = time.perf_counter() - t0
    assert not result.aborted, result.abort_reason
    return {"horizon_us": horizon_us, "n_events": result.events_run,
            "n_flows": len(result.records), "elapsed_s": elapsed,
            "events_per_sec": result.events_run / elapsed}


def scenario_traffic_gen(n_flows: int) -> dict:
    """Streaming generator suite: merge three composed sources, digest
    ``n_flows`` flows.

    Pure generator overhead — no simulator. Exercises the empirical-CDF
    open-loop source, an ON/OFF-modulated bimodal source with a locality
    matrix, and a coflow source, merged by start time through
    ``merge_sources`` exactly as the runner's streaming pump consumes them.
    """
    import itertools

    from repro.sim.rng import RngRegistry
    from repro.workloads.gen import (SourceConfig, TrafficConfig,
                                     build_sources, merge_sources,
                                     stream_digest, stub_groups)

    traffic = TrafficConfig(sources=(
        SourceConfig(name="bg", kind="open", load_share=0.7,
                     locality="grouped:intra=0.8"),
        SourceConfig(name="burst", kind="open", load_share=0.2,
                     sizes="bimodal:small_kb=2,large_mb=0.5",
                     arrivals="onoff:on_us=50,off_us=200",
                     locality="matrix:intra=0.6"),
        SourceConfig(name="jobs", kind="coflow", load_share=0.1, fanout=4),
    ))
    groups = stub_groups(32, 4)
    hosts = [h for g in groups for h in g]
    sources = build_sources(traffic, hosts, groups, load=0.6,
                            rate_bps=10e9, sim_time_ns=1 << 62,
                            size_scale=8.0)
    stream = itertools.islice(merge_sources(sources, RngRegistry(1)),
                              n_flows)
    t0 = time.perf_counter()
    digest = stream_digest(stream)
    elapsed = time.perf_counter() - t0
    assert digest.flows >= n_flows
    return {"n_flows": digest.flows, "elapsed_s": elapsed,
            "flows_per_sec": digest.flows / elapsed,
            "total_bytes": digest.total_bytes}


def scenario_experiment(_size: int) -> dict:
    """One full ``run_experiment`` on the default config (profiling target)."""
    from repro.experiments.config import ExperimentConfig, SchemeName
    from repro.experiments.runner import run_experiment

    cfg = ExperimentConfig(scheme=SchemeName.FLEXPASS, sim_time_ns=5_000_000,
                           load=0.5)
    t0 = time.perf_counter()
    result = run_experiment(cfg)
    elapsed = time.perf_counter() - t0
    return {"n_events": result.events_run, "n_flows": len(result.records),
            "elapsed_s": elapsed,
            "events_per_sec": result.events_run / elapsed}


SCENARIOS = {
    "dispatch": (scenario_dispatch, "events"),
    "forwarding": (scenario_forwarding, "packets"),
    "telemetry": (scenario_telemetry, "packets"),
    "audit": (scenario_audit, "packets"),
    "dwrr": (scenario_dwrr, "packets"),
    "pool": (scenario_pool, "packets"),
    "sweep": (scenario_sweep, "configs"),
    "clos_full": (scenario_clos_full, "microseconds"),
    "traffic_gen": (scenario_traffic_gen, "flows"),
    "experiment": (scenario_experiment, "events"),
}

#: benchmark-record names, kept in sync with benchmarks/test_bench_simulator_perf.py
RECORD_NAMES = {
    "dispatch": "event_dispatch",
    "forwarding": "packet_forwarding",
    "telemetry": "telemetry_overhead",
    "audit": "audit_overhead",
    "dwrr": "dwrr_egress",
    "pool": "packet_pool",
    "sweep": "sweep_throughput",
    "clos_full": "clos_full",
    "traffic_gen": "traffic_gen",
    # "experiment" is a profiling target, not a tracked benchmark
}

QUICK_SIZES = {"dispatch": 20_000, "forwarding": 2_000, "telemetry": 2_000,
               "audit": 2_000, "dwrr": 6_000, "pool": 20_000, "sweep": 4,
               "clos_full": 50, "traffic_gen": 20_000, "experiment": 1}
FULL_SIZES = {"dispatch": 200_000, "forwarding": 20_000, "telemetry": 20_000,
              "audit": 20_000, "dwrr": 60_000, "pool": 200_000, "sweep": 16,
              "clos_full": 200, "traffic_gen": 200_000, "experiment": 1}


def run_scenario(name: str, size: int, profile: bool, top: int,
                 sort: str = "cumulative") -> dict:
    fn, _unit = SCENARIOS[name]
    if profile:
        prof = cProfile.Profile()
        prof.enable()
        result = fn(size)
        prof.disable()
        stats = pstats.Stats(prof, stream=sys.stdout)
        stats.strip_dirs().sort_stats(sort)
        print(f"\n--- cProfile: {name} ---")
        stats.print_stats(top)
    else:
        result = fn(size)
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scenario", choices=[*SCENARIOS, "all"], default="all")
    ap.add_argument("--events", type=int, default=None,
                    help="event count for the dispatch scenario")
    ap.add_argument("--packets", type=int, default=None,
                    help="packet count for forwarding/dwrr scenarios")
    ap.add_argument("--quick", action="store_true",
                    help="small sizes for smoke runs (CI)")
    ap.add_argument("--profile", action="store_true",
                    help="run under cProfile and print the hottest functions")
    ap.add_argument("--top", type=int, default=15,
                    help="rows of profile output to print")
    ap.add_argument("--sort", default="cumulative",
                    choices=("calls", "cumulative", "filename", "line",
                             "name", "nfl", "pcalls", "stdname", "time"),
                    help="pstats sort key for --profile output")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="merge results into a BENCH_engine.json file")
    ap.add_argument("--engine", choices=sorted(ENGINE_BACKENDS), default=None,
                    help="event-engine backend (default: REPRO_SIM_ENGINE "
                         "or the calendar engine); exported to the "
                         "environment so sweep workers inherit it")
    args = ap.parse_args(argv)

    if args.engine:
        os.environ["REPRO_SIM_ENGINE"] = args.engine

    if args.scenario == "all":
        # "experiment" is a profiling target (a full run_experiment, ~15 s);
        # it only runs when asked for by name.
        names = [n for n in SCENARIOS if n != "experiment"]
    else:
        names = [args.scenario]
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    for name in names:
        size = sizes[name]
        if name == "dispatch" and args.events is not None:
            size = args.events
        elif name != "dispatch" and args.packets is not None:
            size = args.packets
        result = run_scenario(name, size, args.profile, args.top,
                              args.sort)
        rate_key = next(k for k in result if k.endswith("_per_sec"))
        print(f"{name:12s} {result[rate_key]:>14,.0f} {rate_key} "
              f"({result['elapsed_s']:.3f} s)")
        if args.json:
            record_name = RECORD_NAMES.get(name)
            if record_name is not None:
                record_bench(record_name, result, path=args.json)
    if args.json:
        print(f"recorded -> {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
