#!/usr/bin/env python3
"""Analyze stored simulation results and emit figure data (Appendix B).

Mirrors the artifact's ``generate_figure.py``: parses the ``fct_*.csv``
files written by ``run_simulations.py``, computes the paper's metrics
(99th-percentile FCT of small flows, overall average FCT, per-group splits,
standard deviations), and writes one ``figNN.csv`` per figure — the same
series the paper plots — plus a printed summary.

    python tools/generate_figure.py --results results/
"""

import argparse
import csv
import os
import sys
from collections import defaultdict
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.metrics.summary import format_table  # noqa: E402

SMALL_CUTOFF_DEFAULT = 100_000 / 8  # matches run_simulations' size_scale=8


def load_index(results_dir: str) -> List[dict]:
    with open(os.path.join(results_dir, "index.csv")) as f:
        return list(csv.DictReader(f))


def load_fcts(results_dir: str, experiment: str) -> List[dict]:
    with open(os.path.join(results_dir, f"fct_{experiment}.csv")) as f:
        return list(csv.DictReader(f))


def metrics(rows: List[dict], small_cutoff: float) -> Dict[str, float]:
    done = [r for r in rows if int(r["fct_ns"]) >= 0]
    out: Dict[str, float] = {}
    if not done:
        return {"avg_ms": float("nan")}
    fcts = np.array([int(r["fct_ns"]) for r in done], dtype=float) / 1e6
    out["avg_ms"] = float(np.mean(fcts))
    small = [r for r in done if int(r["size_bytes"]) < small_cutoff]

    def p99(sel):
        if not sel:
            return float("nan")
        arr = np.array([int(r["fct_ns"]) for r in sel], dtype=float) / 1e6
        return float(np.percentile(arr, 99))

    def std(sel):
        if not sel:
            return float("nan")
        arr = np.array([int(r["fct_ns"]) for r in sel], dtype=float) / 1e6
        return float(np.std(arr))

    out["p99_small_ms"] = p99(small)
    out["p99_small_legacy_ms"] = p99([r for r in small if r["group"] == "legacy"])
    out["p99_small_new_ms"] = p99([r for r in small if r["group"] == "new"])
    out["std_small_legacy_ms"] = std([r for r in small if r["group"] == "legacy"])
    out["std_small_new_ms"] = std([r for r in small if r["group"] == "new"])
    out["timeouts"] = sum(int(r["timeouts"]) for r in done)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="results")
    parser.add_argument("--small-cutoff-bytes", type=float,
                        default=SMALL_CUTOFF_DEFAULT)
    args = parser.parse_args()

    index = load_index(args.results)
    cells = {}
    for row in index:
        eid = row["experiment"]
        cells[eid] = dict(row)
        cells[eid].update(metrics(load_fcts(args.results, eid),
                                  args.small_cutoff_bytes))

    figures = {
        "fig10": ("e1_", ["scheme", "deployment", "p99_small_ms", "avg_ms"]),
        "fig11": ("e2_", ["scheme", "deployment", "p99_small_ms", "avg_ms"]),
        "fig12": ("e1_", ["scheme", "deployment", "p99_small_legacy_ms",
                          "p99_small_new_ms"]),
        "fig13": ("e1_", ["scheme", "deployment", "std_small_legacy_ms",
                          "std_small_new_ms"]),
        "fig14": ("e3_", ["scheme", "load", "deployment", "p99_small_ms",
                          "timeouts"]),
    }
    for fig, (prefix, columns) in figures.items():
        rows = []
        for eid in sorted(cells):
            if not eid.startswith(prefix):
                continue
            cell = cells[eid]
            rows.append([cell.get(c, "") for c in columns])
        if not rows:
            continue
        path = os.path.join(args.results, f"{fig}.csv")
        with open(path, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(columns)
            w.writerows(rows)
        print(f"\n== {fig} ({path}) ==")
        print(format_table(columns, rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
