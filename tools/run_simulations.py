#!/usr/bin/env python3
"""Run the paper's full simulation grid and store raw results (Appendix B).

Mirrors the artifact's ``run_simulations.py``: enumerates every simulation
behind Figures 10-14 (deployment % x scheme, mixed traffic, load sweep),
runs them — parallelized across CPUs — and writes one ``fct_<id>.csv`` per
experiment into the results directory, plus an ``index.csv`` mapping
experiment ids to parameters.

    python tools/run_simulations.py --out results/ [--ms 10] [--paper-scale] \
        [--cache .sim-cache]

Long campaigns should run through the durable sweep fabric (DESIGN.md
§6g): ``--store`` (directory, or ``sqlite:PATH`` for the concurrent-
writer SQLite backend) executes the grid under a persistent journal in
``<out>/sweep-journal`` with per-cell leases and bounded retries, and
``--resume`` continues a killed or partial run without recomputing any
stored cell::

    python tools/run_simulations.py --out results/ --store sqlite:results/sweep.db
    # ... kill -9, power loss, OOM ...
    python tools/run_simulations.py --out results/ --resume

``tools/generate_figure.py`` consumes the output.
"""

import argparse
import csv
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.audit import AuditConfig  # noqa: E402
from repro.experiments.config import ExperimentConfig, SchemeName  # noqa: E402
from repro.experiments.parallel import FailedResult, run_many  # noqa: E402
from repro.experiments.sweep import default_sweep_config  # noqa: E402
from repro.metrics.telemetry import TelemetryConfig  # noqa: E402
from repro.net.topology import ClosSpec  # noqa: E402
from repro.sim.units import MILLIS  # noqa: E402

DEPLOYMENTS = (0.0, 0.25, 0.5, 0.75, 1.0)
SCHEMES = (SchemeName.DCTCP, SchemeName.NAIVE, SchemeName.OWF,
           SchemeName.LAYERING, SchemeName.FLEXPASS)


def build_grid(base: ExperimentConfig) -> List[Tuple[str, ExperimentConfig]]:
    """(experiment id, config) for every simulation in Figures 10-14."""
    grid: List[Tuple[str, ExperimentConfig]] = []
    nonzero = [d for d in DEPLOYMENTS if d > 0.0]
    # E1: background-only transition (Figures 10, 12, 13). The 0% point is
    # scheme-independent (pure DCTCP), so it runs once.
    grid.append(("e1_dctcp_000", base.with_(scheme=SchemeName.DCTCP,
                                            deployment=0.0)))
    for scheme in SCHEMES:
        if scheme == SchemeName.DCTCP:
            continue
        for dep in nonzero:
            grid.append((
                f"e1_{scheme.value}_{int(dep * 100):03d}",
                base.with_(scheme=scheme, deployment=dep),
            ))
    # E2: mixed traffic (Figure 11)
    grid.append(("e2_dctcp_000", base.with_(scheme=SchemeName.DCTCP,
                                            deployment=0.0,
                                            foreground_fraction=0.1)))
    for scheme in (SchemeName.NAIVE, SchemeName.FLEXPASS):
        for dep in nonzero:
            grid.append((
                f"e2_{scheme.value}_{int(dep * 100):03d}",
                base.with_(scheme=scheme, deployment=dep,
                           foreground_fraction=0.1),
            ))
    # E3: load sweep (Figure 14)
    for load in (0.1, 0.4, 0.7):
        tag = f"l{int(load * 100):02d}"
        grid.append((f"e3_dctcp_{tag}_000",
                     base.with_(scheme=SchemeName.DCTCP, deployment=0.0,
                                load=load)))
        for scheme in (SchemeName.NAIVE, SchemeName.FLEXPASS):
            for dep in nonzero:
                grid.append((
                    f"e3_{scheme.value}_{tag}_{int(dep * 100):03d}",
                    base.with_(scheme=scheme, deployment=dep, load=load),
                ))
    return grid


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results")
    parser.add_argument("--ms", type=int, default=10)
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--size-scale", type=float, default=8.0)
    parser.add_argument("--processes", type=int, default=None)
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="experiment-cache directory: re-runs only "
                             "simulate configs not already stored there")
    parser.add_argument("--store", metavar="SPEC", default=None,
                        help="run through the durable sweep fabric with "
                             "this result store (directory or sqlite:PATH); "
                             "survives kill -9 via --resume")
    parser.add_argument("--resume", action="store_true",
                        help="resume the fabric journal in <out> (implies "
                             "the fabric path; grid flags must match the "
                             "original run)")
    parser.add_argument("--journal", metavar="DIR", default=None,
                        help="fabric journal directory "
                             "(default: <out>/sweep-journal)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="extra attempts per failing config")
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--topo-spec", metavar="PATH", default=None,
                        help="run the grid over a declarative topology spec "
                             "(YAML/JSON file or CSV directory) instead of "
                             "the default Clos; see repro.net.fabric")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run only experiment ids with these prefixes")
    parser.add_argument("--telemetry", action="store_true",
                        help="sample time-series per experiment and write "
                             "telemetry_<id>.csv/.json beside the FCT files")
    parser.add_argument("--audit", action="store_true",
                        help="check conservation invariants during every "
                             "experiment; violations fail the run")
    args = parser.parse_args()

    overrides = dict(load=args.load, sim_time_ns=args.ms * MILLIS,
                     seed=args.seed, size_scale=args.size_scale)
    if args.paper_scale:
        overrides.update(clos=ClosSpec.paper_scale(), size_scale=1.0)
    if args.topo_spec:
        from repro.net.fabric import load_topology_spec

        overrides["topology_spec"] = load_topology_spec(args.topo_spec)
    if args.telemetry:
        overrides["telemetry"] = TelemetryConfig()
    if args.audit:
        overrides["audit"] = AuditConfig()
    base = default_sweep_config(**overrides)

    grid = build_grid(base)
    if args.only:
        grid = [(eid, cfg) for eid, cfg in grid
                if any(eid.startswith(p) for p in args.only)]
    os.makedirs(args.out, exist_ok=True)
    n_hosts = (len(base.topology_spec.hosts()) if base.topology_spec
               else base.clos.n_hosts)
    print(f"running {len(grid)} simulations "
          f"({n_hosts} hosts, {args.ms} ms each) ...")

    configs = [cfg for _, cfg in grid]
    if args.store or args.resume:
        from repro.experiments.fabric import FabricConfig, SweepFabric

        journal_dir = args.journal or os.path.join(args.out, "sweep-journal")
        fabric = SweepFabric(
            journal_dir, store=args.store,
            config=FabricConfig(processes=args.processes,
                                max_retries=args.max_retries))
        results = fabric.run(configs)
        report = fabric.last_report
        print(f"sweep {report.sweep_id} {report.status}: "
              f"{report.completed}/{report.total} cells, "
              f"{report.executed} simulated, {report.store_hits} store "
              f"hits, {report.retries} retries "
              f"(report: {fabric.journal.report_path})")
    else:
        results = run_many(configs, processes=args.processes,
                           max_retries=args.max_retries, cache=args.cache)

    index_rows = []
    audit_failures: List[str] = []
    for (eid, cfg), res in zip(grid, results):
        if isinstance(res, FailedResult):
            # One broken experiment must not lose the other results.
            index_rows.append([eid, cfg.scheme.value, cfg.deployment,
                               cfg.load, cfg.foreground_fraction,
                               cfg.workload, 0, 0, "FAILED"])
            print(f"  {eid}: FAILED ({res.error})")
            continue
        path = os.path.join(args.out, f"fct_{eid}.csv")
        with open(path, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(["flow_id", "scheme", "group", "role", "size_bytes",
                        "start_ns", "fct_ns", "timeouts", "retransmissions"])
            for r in res.records:
                w.writerow([r.flow_id, r.scheme, r.group, r.role,
                            r.size_bytes, r.start_ns, r.fct_ns, r.timeouts,
                            r.retransmissions])
        if res.telemetry is not None:
            res.telemetry.write_csv(
                os.path.join(args.out, f"telemetry_{eid}.csv"))
            res.telemetry.write_json(
                os.path.join(args.out, f"telemetry_{eid}.json"))
        index_rows.append([eid, cfg.scheme.value, cfg.deployment, cfg.load,
                           cfg.foreground_fraction, cfg.workload,
                           len(res.records), res.completed,
                           f"{res.wall_seconds:.1f}"])
        print(f"  {eid}: {res.completed}/{len(res.records)} flows, "
              f"{res.wall_seconds:.1f}s")
        if res.audit is not None and not res.audit.ok:
            audit_failures.append(eid)
            for v in res.audit.violations:
                print(f"    AUDIT: {v}")

    with open(os.path.join(args.out, "index.csv"), "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["experiment", "scheme", "deployment", "load",
                    "fg_fraction", "workload", "flows", "completed",
                    "wall_s"])
        w.writerows(index_rows)
    print(f"wrote {len(grid)} result files + index.csv to {args.out}/")
    if audit_failures:
        print(f"AUDIT FAILED for {len(audit_failures)} experiment(s): "
              + ", ".join(audit_failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
