#!/usr/bin/env python3
"""Chaos smoke for the durable sweep fabric: start, kill -9, resume.

Starts a small ``repro sweep start`` grid in its own session, waits
until some cells have completed, SIGKILLs the whole process group
(coordinator and pool workers — the moral equivalent of the host dying
mid-sweep), then resumes the journal and asserts the sweep completes.
Exits non-zero if the resumed sweep is not complete.

    python tools/sweep_kill_smoke.py --journal /tmp/sweep-journal \
        --store sqlite:/tmp/sweep.db

Used by the ``sweep-resilience`` CI job; safe to run locally (the
journal/store paths are wiped first).
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time

SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--journal", default="/tmp/sweep-journal")
    parser.add_argument("--store", default="sqlite:/tmp/sweep.db")
    parser.add_argument("--ms", type=int, default=1)
    parser.add_argument("--min-done", type=int, default=3,
                        help="kill once this many cells are done")
    parser.add_argument("--timeout-s", type=float, default=300.0)
    args = parser.parse_args()

    shutil.rmtree(args.journal, ignore_errors=True)
    store_path = args.store.split(":", 1)[-1]
    for suffix in ("", "-wal", "-shm"):
        try:
            os.unlink(store_path + suffix)
        except OSError:
            pass

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "sweep", "start",
         "--journal", args.journal, "--store", args.store,
         "--ms", str(args.ms), "--seeds", "2", "--loads", "0.3"],
        start_new_session=True, env=env)

    journal = os.path.join(args.journal, "journal.jsonl")
    deadline = time.time() + args.timeout_s
    while time.time() < deadline and proc.poll() is None:
        if (os.path.exists(journal) and open(journal, "rb").read()
                .count(b'"op":"done"') >= args.min_done):
            break
        time.sleep(0.05)
    if proc.poll() is None:
        os.killpg(proc.pid, signal.SIGKILL)
        print(f"killed sweep mid-flight (pgid {proc.pid})")
    else:
        print("sweep finished before the kill; resume still checked")
    proc.wait()

    status = subprocess.run(
        [sys.executable, "-m", "repro.cli", "sweep", "status",
         "--journal", args.journal], env=env)
    if status.returncode != 0:
        print("sweep status failed", file=sys.stderr)
        return 1
    resume = subprocess.run(
        [sys.executable, "-m", "repro.cli", "sweep", "resume",
         "--journal", args.journal], env=env)
    if resume.returncode != 0:
        print("sweep resume exited non-zero (partial or failed sweep)",
              file=sys.stderr)
        return 1
    with open(os.path.join(args.journal, "report.json")) as fh:
        report = json.load(fh)
    if report["status"] != "complete":
        print(f"resumed sweep not complete: {report}", file=sys.stderr)
        return 1
    print(f"resume OK: {report['completed']}/{report['total']} cells, "
          f"{report['executed']} simulated after resume, "
          f"{report['store_hits']} store hits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
