"""End-to-end tests for DCTCP on the simulated fabric."""

import pytest

from repro.net.topology import DumbbellSpec, StarSpec, build_dumbbell, build_star
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender

from tests.util import Completions, ecn_queue_factory


def launch_dctcp(sim, spec, done, params=None):
    params = params or DctcpParams()
    stats = FlowStats()
    DctcpReceiver(sim, spec, stats, params, on_complete=done)
    sender = DctcpSender(sim, spec, stats, params)
    sim.at(spec.start_ns, sender.start)
    return stats


class TestSingleFlow:
    def test_small_flow_completes(self):
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 10 * KB, 0, scheme="dctcp")
        launch_dctcp(sim, spec, done)
        sim.run(until=50 * MILLIS)
        assert done.flow_ids == {1}

    def test_large_flow_fct_near_line_rate(self):
        """A lone 10 MB flow on a clean 10G path should finish near
        size/rate once the window has opened (no marks, no losses)."""
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 10 * MB, 0, scheme="dctcp")
        stats = launch_dctcp(sim, spec, done)
        sim.run(until=100 * MILLIS)
        assert done.flow_ids == {1}
        ideal_ms = 10 * MB * 8 / (10 * GBPS) * 1e3  # 8 ms
        assert done.fct_ms(1) < ideal_ms * 1.6
        assert stats.timeouts == 0
        assert stats.retransmissions == 0

    def test_no_duplicate_delivery(self):
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 1 * MB, 0, scheme="dctcp")
        stats = launch_dctcp(sim, spec, done)
        sim.run(until=100 * MILLIS)
        assert stats.delivered_bytes == 1 * MB

    def test_one_segment_flow(self):
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 100, 0, scheme="dctcp")
        launch_dctcp(sim, spec, done)
        sim.run(until=10 * MILLIS)
        assert done.flow_ids == {1}
        # 100 B one-way plus ACK: well under 100 us on this topology
        assert done.fct_ms(1) < 0.1


class TestSharing:
    def test_two_flows_share_bottleneck_roughly_fairly(self):
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(), DumbbellSpec(n_pairs=2))
        done = Completions()
        stats = []
        for i in range(2):
            spec = FlowSpec(i + 1, db.senders[i], db.receivers[i], 5 * MB, 0,
                            scheme="dctcp")
            stats.append(launch_dctcp(sim, spec, done))
        sim.run(until=200 * MILLIS)
        assert done.flow_ids == {1, 2}
        fcts = [done.fct_ms(1), done.fct_ms(2)]
        # Both finish within ~2.2x of the shared-ideal 8ms... each gets ~5G.
        ideal_shared_ms = 5 * MB * 8 / (5 * GBPS) * 1e3
        for f in fcts:
            assert f < ideal_shared_ms * 2.0
        assert max(fcts) / min(fcts) < 1.5

    def test_ecn_bounds_queue(self):
        """With DCTCP senders, bottleneck occupancy stays near the marking
        threshold K, far below the buffer size."""
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(ecn_kb=65), DumbbellSpec(n_pairs=2))
        done = Completions()
        for i in range(2):
            spec = FlowSpec(i + 1, db.senders[i], db.receivers[i], 5 * MB, 0,
                            scheme="dctcp")
            launch_dctcp(sim, spec, done)
        sim.run(until=100 * MILLIS)
        q = db.bottleneck.queue(0)
        assert q.stats.ecn_marked > 0
        # Max occupancy bounded well under the 4.5 MB buffer.
        assert q.stats.max_bytes < 500 * KB


class TestIncastTimeouts:
    def test_severe_incast_causes_timeouts(self):
        """The Figure 8 premise: DCTCP cannot avoid timeouts under high-degree
        synchronized incast (tail losses unrecoverable by dupacks)."""
        sim = Simulator()
        star = build_star(
            sim, ecn_queue_factory(ecn_kb=60),
            StarSpec(n_hosts=9, buffer_bytes=200 * KB, buffer_alpha=0.5),
        )
        done = Completions()
        receiver = star.hosts[0]
        total_timeouts = 0
        all_stats = []
        fid = 0
        for burst in range(10):  # 80 concurrent 64 kB responses
            for h in star.hosts[1:]:
                fid += 1
                spec = FlowSpec(fid, h, receiver, 64 * KB, 0, scheme="dctcp")
                all_stats.append(launch_dctcp(sim, spec, done))
        sim.run(until=400 * MILLIS)
        assert len(done.flow_ids) == fid  # eventually all complete
        total_timeouts = sum(s.timeouts for s in all_stats)
        assert total_timeouts > 0


class TestSenderInternals:
    def test_unregisters_on_finish(self):
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(), DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 10 * KB, 0)
        launch_dctcp(sim, spec, done)
        sim.run(until=20 * MILLIS)
        assert spec.src._senders == {}

    def test_flow_spec_validation(self):
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(), DumbbellSpec(n_pairs=1))
        with pytest.raises(ValueError):
            FlowSpec(1, db.senders[0], db.senders[0], 100, 0)
        with pytest.raises(ValueError):
            FlowSpec(1, db.senders[0], db.receivers[0], 0, 0)

    def test_segmentation(self):
        sim = Simulator()
        db = build_dumbbell(sim, ecn_queue_factory(), DumbbellSpec(n_pairs=1))
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 3200, 0)
        assert spec.n_segments == 3
        assert spec.segment_payload(0) == 1500
        assert spec.segment_payload(2) == 200
        with pytest.raises(IndexError):
            spec.segment_payload(3)
