"""Tests for the alternative reactive controllers (§4.3 extensibility)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.reactive_variants import (
    DelayParams,
    DelayWindow,
    RenoParams,
    RenoWindow,
    make_reactive_window,
)

from tests.util import Completions


class TestRenoWindow:
    def test_slow_start_then_avoidance(self):
        w = RenoWindow(RenoParams(init_cwnd=2, init_ssthresh=8))
        for seq in range(10):
            w.on_ack(seq, False, seq + 2)
        assert w.cwnd > 8  # crossed ssthresh and kept growing

    def test_ignores_ecn(self):
        w = RenoWindow()
        before = w.cwnd
        for seq in range(20):
            w.on_ack(seq, True, seq + 5)  # CE marks everywhere
        assert w.cwnd > before  # loss-based: marks do nothing

    def test_halves_on_loss_once_per_window(self):
        w = RenoWindow(RenoParams(init_cwnd=64))
        w.on_ack(0, False, 64)
        w.on_loss()
        after_first = w.cwnd
        w.on_loss()  # same window: ignored
        assert w.cwnd == after_first
        assert after_first == pytest.approx(65 / 2, rel=0.05)

    def test_timeout_resets(self):
        w = RenoWindow(RenoParams(init_cwnd=32))
        w.on_timeout()
        assert w.cwnd == 1.0

    @given(st.lists(st.sampled_from(["ack", "loss", "timeout"]), max_size=200))
    def test_property_bounds(self, events):
        p = RenoParams(init_cwnd=10, min_cwnd=1, max_cwnd=500)
        w = RenoWindow(p)
        seq = 0
        for e in events:
            if e == "ack":
                w.on_ack(seq, False, seq + 3)
                seq += 1
            elif e == "loss":
                w.on_loss()
            else:
                w.on_timeout()
            assert p.min_cwnd <= w.cwnd <= p.max_cwnd


class TestDelayWindow:
    def test_low_rtt_grows(self):
        w = DelayWindow(DelayParams(init_cwnd=10, t_low_ns=100_000))
        for _ in range(20):
            w.on_rtt_sample(50_000)
        assert w.cwnd > 10

    def test_high_rtt_shrinks(self):
        w = DelayWindow(DelayParams(init_cwnd=100, t_high_ns=200_000))
        for _ in range(20):
            w.on_rtt_sample(1_000_000)
        assert w.cwnd < 100

    def test_rising_gradient_shrinks(self):
        w = DelayWindow(DelayParams(init_cwnd=50, t_low_ns=50_000,
                                    t_high_ns=10_000_000))
        rtt = 100_000.0
        for _ in range(30):
            rtt *= 1.2
            w.on_rtt_sample(rtt)
        assert w.cwnd < 50

    def test_falling_gradient_grows(self):
        w = DelayWindow(DelayParams(init_cwnd=10, t_low_ns=50_000,
                                    t_high_ns=10_000_000))
        rtt = 5_000_000.0
        for _ in range(30):
            rtt *= 0.8
            w.on_rtt_sample(max(rtt, 60_000))
        assert w.cwnd > 10

    @given(st.lists(st.floats(1_000, 10_000_000), min_size=1, max_size=200))
    def test_property_bounds(self, rtts):
        p = DelayParams(init_cwnd=10, min_cwnd=1, max_cwnd=1000)
        w = DelayWindow(p)
        for r in rtts:
            w.on_rtt_sample(r)
            assert p.min_cwnd <= w.cwnd <= p.max_cwnd


class TestFactory:
    def test_known_algorithms(self):
        from repro.transports.congestion import DctcpWindow

        assert isinstance(make_reactive_window("dctcp"), DctcpWindow)
        assert isinstance(make_reactive_window("reno"), RenoWindow)
        assert isinstance(make_reactive_window("delay"), DelayWindow)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_reactive_window("cubic")


class TestFlexPassWithVariants:
    @pytest.mark.parametrize("algorithm", ["reno", "delay"])
    def test_flow_completes_with_variant(self, algorithm):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        params = FlexPassParams(
            max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA,
            reactive_algorithm=algorithm,
        )
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 4 * MB, 0,
                        scheme="flexpass", group="new")
        stats = FlowStats()
        FlexPassReceiver(sim, spec, stats, params, on_complete=done)
        sender = FlexPassSender(sim, spec, stats, params)
        sim.at(0, sender.start)
        sim.run(until=80 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 4 * MB
        assert stats.reactive_bytes > 0
