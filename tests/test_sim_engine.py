"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.at(30, order.append, "c")
    sim.at(10, order.append, "a")
    sim.at(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.at(100, order.append, i)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_after_is_relative_to_now():
    sim = Simulator()
    seen = []

    def later():
        sim.after(5, lambda: seen.append(sim.now))

    sim.at(10, later)
    sim.run()
    assert seen == [15]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.at(10, fired.append, "no")
    sim.at(5, handle.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.at(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_run == 0


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.at(10, fired.append, 10)
    sim.at(50, fired.append, 50)
    sim.run(until=20)
    assert fired == [10]
    assert sim.now == 20  # clock advances to the horizon
    sim.run(until=60)
    assert fired == [10, 50]


def test_run_until_includes_events_at_horizon():
    sim = Simulator()
    fired = []
    sim.at(20, fired.append, 20)
    sim.run(until=20)
    assert fired == [20]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.after(-1, lambda: None)


def test_call_soon_runs_after_current_event():
    sim = Simulator()
    order = []

    def first():
        sim.call_soon(order.append, "soon")
        order.append("first")

    sim.at(10, first)
    sim.at(10, order.append, "second")
    sim.run()
    # call_soon lands at t=10 but behind the already-queued same-time event.
    assert order == ["first", "second", "soon"]


def test_max_events_limits_execution():
    sim = Simulator()
    for i in range(10):
        sim.at(i, lambda: None)
    ran = sim.run(max_events=3)
    assert ran == 3
    assert sim.pending() == 7


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h = sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    h.cancel()
    assert sim.peek_time() == 9


def test_events_can_schedule_more_events():
    sim = Simulator()
    ticks = []

    def tick(n):
        ticks.append(sim.now)
        if n > 0:
            sim.after(10, tick, n - 1)

    sim.at(0, tick, 3)
    sim.run()
    assert ticks == [0, 10, 20, 30]


class TestPendingAccounting:
    """pending() is O(1) now — a live counter, not a heap scan — so these
    pin the bookkeeping across schedule/cancel/run/compaction."""

    def test_pending_tracks_schedules_and_cancels(self):
        sim = Simulator()
        handles = [sim.at(i, lambda: None) for i in range(10)]
        assert sim.pending() == 10
        for h in handles[:4]:
            h.cancel()
        assert sim.pending() == 6
        handles[0].cancel()  # double-cancel must not double-count
        assert sim.pending() == 6
        sim.run()
        assert sim.pending() == 0
        assert sim.events_run == 6

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        h = sim.at(5, lambda: None)
        sim.at(10, lambda: None)
        sim.run()
        h.cancel()  # already fired: must not corrupt the live count
        assert sim.pending() == 0
        sim.at(20, lambda: None)
        assert sim.pending() == 1

    def test_cancel_from_within_event_mid_run(self):
        sim = Simulator()
        fired = []
        victim = sim.at(20, fired.append, "victim")
        sim.at(10, victim.cancel)
        sim.at(30, fired.append, "survivor")
        sim.run()
        assert fired == ["survivor"]
        assert sim.pending() == 0

    def test_compaction_shrinks_heap_and_preserves_order(self):
        sim = Simulator()
        keep = []
        handles = [sim.at(i, keep.append, i) for i in range(10_000)]
        for h in handles:
            if h.time % 10:  # cancel 90%
                h.cancel()
        # Cancel-heavy workloads must not pin the calendar: the lazy entries
        # get compacted away well before the run drains them.
        assert sum(1 for _ in sim.iter_pending()) < 5_000
        assert sim.pending() == 1_000
        sim.run()
        assert keep == [t for t in range(10_000) if t % 10 == 0]
        assert sim.pending() == 0

    def test_compaction_during_run_keeps_draining(self):
        """Compaction rebuilds the heap in place; a run loop holding a local
        alias must keep seeing the live events."""
        sim = Simulator()
        fired = []
        later = [sim.at(1000 + i, fired.append, 1000 + i) for i in range(2_000)]

        def mass_cancel():
            # 90% cancelled: enough for the in-run compaction to trigger
            # (cancelled entries outnumber live ones).
            for h in later[:1_800]:
                h.cancel()

        sim.at(0, mass_cancel)
        sim.run()
        assert fired == [1000 + i for i in range(1_800, 2_000)]


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_property_arbitrary_schedules_fire_sorted(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, fired.append, t)
    sim.run()
    assert fired == sorted(times)
    assert sim.now == max(times)


@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.booleans()), min_size=1, max_size=100
    )
)
def test_property_cancellation_only_removes_cancelled(events):
    sim = Simulator()
    fired = []
    expected = []
    for t, keep in events:
        h = sim.at(t, fired.append, t)
        if keep:
            expected.append(t)
        else:
            h.cancel()
    sim.run()
    assert fired == sorted(expected)
