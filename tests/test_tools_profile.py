"""Tests for benchmark-baseline recording and the profiling harness."""

import importlib.util
import json
import os
import sys

from repro.metrics.bench import (
    compare_to_baseline,
    load_baseline,
    main as bench_main,
    record_bench,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_profile_tool():
    path = os.path.join(REPO, "tools", "profile_sim.py")
    spec = importlib.util.spec_from_file_location("profile_sim", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestBenchRecords:
    def test_record_creates_and_merges(self, tmp_path):
        path = str(tmp_path / "BENCH_engine.json")
        record_bench("event_dispatch",
                     {"events_per_sec": 1e6, "n_events": 1000}, path=path)
        doc = record_bench("dwrr_egress",
                           {"packets_per_sec": 5e5}, path=path)
        assert set(doc["results"]) == {"event_dispatch", "dwrr_egress"}
        assert doc["schema"] == 1
        # re-recording one name replaces only that entry
        doc = record_bench("event_dispatch",
                           {"events_per_sec": 2e6, "n_events": 1000},
                           path=path)
        assert doc["results"]["event_dispatch"]["events_per_sec"] == 2e6
        assert doc["results"]["dwrr_egress"]["packets_per_sec"] == 5e5
        on_disk = load_baseline(path)
        assert on_disk["results"] == doc["results"]

    def test_load_missing_or_garbage_returns_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_baseline(str(bad)) is None

    def test_compare_flags_only_regressed_rates(self):
        baseline = {"results": {
            "event_dispatch": {"events_per_sec": 1_000_000, "elapsed_s": 0.2},
            "dwrr_egress": {"packets_per_sec": 500_000},
        }}
        current = {"results": {
            "event_dispatch": {"events_per_sec": 990_000, "elapsed_s": 99.0},
            "dwrr_egress": {"packets_per_sec": 100_000},
        }}
        problems = compare_to_baseline(current, baseline, tolerance=0.7)
        assert len(problems) == 1
        assert "dwrr_egress" in problems[0]

    def test_compare_ignores_unknown_benchmarks(self):
        problems = compare_to_baseline(
            {"results": {"new_bench": {"x_per_sec": 1}}}, {"results": {}})
        assert problems == []

    def test_committed_baseline_is_valid(self):
        """The committed reference must stay loadable and carry the three
        core scenarios with positive rates."""
        path = os.path.join(REPO, "benchmarks", "baselines",
                            "BENCH_engine.json")
        doc = load_baseline(path)
        assert doc is not None
        for name, rate_key in [("event_dispatch", "events_per_sec"),
                               ("packet_forwarding", "packets_per_sec"),
                               ("dwrr_egress", "packets_per_sec"),
                               ("packet_pool", "packets_per_sec"),
                               ("sweep_throughput", "configs_per_sec"),
                               ("telemetry_overhead", "packets_per_sec")]:
            assert doc["results"][name][rate_key] > 0


class TestProfileHarness:
    def test_scenarios_run_and_record(self, tmp_path):
        tool = _load_profile_tool()
        out = str(tmp_path / "BENCH_engine.json")
        rc = tool.main(["--scenario", "all", "--quick", "--json", out])
        assert rc == 0
        doc = json.loads(open(out).read())
        assert set(doc["results"]) == {"event_dispatch", "packet_forwarding",
                                       "dwrr_egress", "packet_pool",
                                       "sweep_throughput",
                                       "telemetry_overhead",
                                       "audit_overhead", "clos_full",
                                       "traffic_gen"}
        for metrics in doc["results"].values():
            rate = next(v for k, v in metrics.items()
                        if k.endswith("_per_sec"))
            assert rate > 0

    def test_profile_mode_prints_stats(self, tmp_path, capsys):
        tool = _load_profile_tool()
        rc = tool.main(["--scenario", "dispatch", "--events", "2000",
                        "--profile", "--top", "5"])
        assert rc == 0
        outp = capsys.readouterr().out
        assert "cProfile: dispatch" in outp
        assert "events_per_sec" in outp

    def test_record_names_match_bench_suite(self):
        """tools/profile_sim.py and benchmarks/test_bench_simulator_perf.py
        must write the same record names or the trajectory forks."""
        tool = _load_profile_tool()
        assert set(tool.RECORD_NAMES.values()) == {
            "event_dispatch", "packet_forwarding", "dwrr_egress",
            "packet_pool", "sweep_throughput", "telemetry_overhead",
            "audit_overhead", "clos_full", "traffic_gen"}


class TestBenchCli:
    def _write(self, path, rates):
        import json as _json
        path.write_text(_json.dumps(
            {"schema": 1, "results": {
                name: {"packets_per_sec": rate} for name, rate in rates.items()
            }}))
        return str(path)

    def test_compare_ok(self, tmp_path, capsys):
        cur = self._write(tmp_path / "cur.json", {"packet_forwarding": 100_000})
        base = self._write(tmp_path / "base.json", {"packet_forwarding": 90_000})
        rc = bench_main(["compare", cur, base, "--tolerance", "0.75"])
        assert rc == 0
        assert "perf ok" in capsys.readouterr().out

    def test_compare_regression_fails(self, tmp_path, capsys):
        cur = self._write(tmp_path / "cur.json", {"packet_forwarding": 50_000})
        base = self._write(tmp_path / "base.json", {"packet_forwarding": 90_000})
        rc = bench_main(["compare", cur, base, "--tolerance", "0.75"])
        assert rc == 1
        assert "packet_forwarding" in capsys.readouterr().out

    def test_compare_unreadable_input(self, tmp_path):
        base = self._write(tmp_path / "base.json", {})
        rc = bench_main(["compare", str(tmp_path / "missing.json"), base])
        assert rc == 2
