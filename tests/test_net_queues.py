"""Unit tests for per-queue admission, ECN marking, selective dropping."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Color, Dscp, Packet, PacketKind
from repro.net.queues import PacketQueue, QueueConfig


def mk_pkt(size=1000, color=Color.GREEN, ecn=False):
    return Packet(
        PacketKind.DATA, flow_id=1, src=0, dst=1, size=size,
        dscp=Dscp.LEGACY, color=color, ecn_capable=ecn,
    )


class TestFifoBehaviour:
    def test_fifo_order(self):
        q = PacketQueue(QueueConfig())
        pkts = [mk_pkt(size=100 + i) for i in range(5)]
        for p in pkts:
            assert q.admit(p)
            q.push(p)
        assert [q.pop() for _ in range(5)] == pkts

    def test_byte_accounting(self):
        q = PacketQueue(QueueConfig())
        q.push(mk_pkt(size=100))
        q.push(mk_pkt(size=250))
        assert q.byte_count == 350
        q.pop()
        assert q.byte_count == 250
        q.pop()
        assert q.byte_count == 0
        assert q.empty

    def test_head_peeks_without_removing(self):
        q = PacketQueue(QueueConfig())
        p = mk_pkt()
        q.push(p)
        assert q.head() is p
        assert len(q) == 1


class TestStaticCap:
    def test_drop_when_over_cap(self):
        q = PacketQueue(QueueConfig(capacity_bytes=1000))
        assert q.admit(mk_pkt(size=900))
        q.push(mk_pkt(size=900))
        assert not q.admit(mk_pkt(size=200))
        assert q.stats.dropped_cap == 1

    def test_exact_fit_admitted(self):
        q = PacketQueue(QueueConfig(capacity_bytes=1000))
        q.push(mk_pkt(size=500))
        assert q.admit(mk_pkt(size=500))


class TestEcnMarking:
    def test_marks_when_over_threshold(self):
        q = PacketQueue(QueueConfig(ecn_threshold_bytes=1000))
        first = mk_pkt(size=800, ecn=True)
        q.push(first)  # post-enqueue occupancy 800 <= K: no mark
        assert not first.ce
        p = mk_pkt(size=300, ecn=True)
        q.push(p)  # post-enqueue occupancy 1100 > K
        assert p.ce
        assert q.stats.ecn_marked == 1

    def test_packet_tipping_queue_over_k_is_marked(self):
        """DCTCP marks on the instantaneous length *including* the arriving
        packet — the packet that pushes the queue past K gets the mark."""
        q = PacketQueue(QueueConfig(ecn_threshold_bytes=1000))
        p = mk_pkt(size=1200, ecn=True)
        q.push(p)  # 0 -> 1200 crosses K in one step
        assert p.ce

    def test_exactly_at_threshold_not_marked(self):
        """Boundary: occupancy == K is not *over* threshold (mark when > K)."""
        q = PacketQueue(QueueConfig(ecn_threshold_bytes=1000))
        p = mk_pkt(size=1000, ecn=True)
        q.push(p)  # post-enqueue occupancy exactly K
        assert not p.ce
        p2 = mk_pkt(size=1, ecn=True)
        q.push(p2)  # 1001 > K
        assert p2.ce

    def test_no_mark_below_threshold(self):
        q = PacketQueue(QueueConfig(ecn_threshold_bytes=1000))
        p = mk_pkt(size=100, ecn=True)
        q.push(p)
        assert not p.ce

    def test_non_ecn_capable_never_marked(self):
        q = PacketQueue(QueueConfig(ecn_threshold_bytes=0))
        p = mk_pkt(size=100, ecn=False)
        q.push(mk_pkt(size=5000, ecn=False))
        q.push(p)
        assert not p.ce

    def test_red_ramp_marks_probabilistically(self):
        class FakeRng:
            def __init__(self, v):
                self.v = v

            def random(self):
                return self.v

        cfg = QueueConfig(ecn_threshold_bytes=1000, red_max_bytes=2000)
        q_mark = PacketQueue(cfg, mark_rng=FakeRng(0.0))
        q_mark.push(mk_pkt(size=1500, ecn=True))
        p = mk_pkt(size=10, ecn=True)
        q_mark.push(p)  # occupancy 1500, prob 0.5, rng 0.0 < 0.5 -> mark
        assert p.ce

        q_skip = PacketQueue(cfg, mark_rng=FakeRng(0.99))
        q_skip.push(mk_pkt(size=1500, ecn=True))
        p2 = mk_pkt(size=10, ecn=True)
        q_skip.push(p2)
        assert not p2.ce

    def test_red_ramp_always_marks_above_max(self):
        class NeverRng:
            def random(self):
                return 1.0

        cfg = QueueConfig(ecn_threshold_bytes=100, red_max_bytes=200)
        q = PacketQueue(cfg, mark_rng=NeverRng())
        q.push(mk_pkt(size=400, ecn=True))
        p = mk_pkt(size=10, ecn=True)
        q.push(p)
        assert p.ce


class TestBacklogWatcher:
    def test_transitions_fire_watcher(self):
        q = PacketQueue(QueueConfig())
        events = []
        q.set_backlog_watcher(events.append)
        q.push(mk_pkt())       # empty -> nonempty
        q.push(mk_pkt())       # still nonempty: no event
        q.pop()                # still nonempty: no event
        q.pop()                # nonempty -> empty
        q.push(mk_pkt())       # empty -> nonempty again
        assert events == [True, False, True]

    def test_no_watcher_is_fine(self):
        q = PacketQueue(QueueConfig())
        q.push(mk_pkt())
        q.pop()
        assert q.empty


class TestSelectiveDropping:
    def test_red_dropped_over_threshold(self):
        q = PacketQueue(QueueConfig(selective_drop_bytes=2000))
        q.push(mk_pkt(size=1500, color=Color.RED))
        assert not q.admit(mk_pkt(size=1000, color=Color.RED))
        assert q.stats.dropped_selective == 1

    def test_green_survives_red_threshold(self):
        """The core §4.1 property: proactive (green) packets are never
        selectively dropped, no matter the red occupancy."""
        q = PacketQueue(QueueConfig(selective_drop_bytes=1000))
        q.push(mk_pkt(size=999, color=Color.RED))
        assert q.admit(mk_pkt(size=1500, color=Color.GREEN))

    def test_green_bytes_do_not_count_toward_red_threshold(self):
        q = PacketQueue(QueueConfig(selective_drop_bytes=2000))
        for _ in range(5):
            q.push(mk_pkt(size=1500, color=Color.GREEN))
        assert q.admit(mk_pkt(size=1500, color=Color.RED))

    def test_red_byte_accounting_on_pop(self):
        q = PacketQueue(QueueConfig(selective_drop_bytes=2000))
        q.push(mk_pkt(size=1500, color=Color.RED))
        q.pop()
        assert q.red_bytes == 0
        assert q.admit(mk_pkt(size=1500, color=Color.RED))


@given(
    st.lists(
        st.tuples(
            st.integers(64, 1584),
            st.sampled_from([Color.GREEN, Color.RED]),
        ),
        max_size=100,
    )
)
def test_property_red_bytes_never_exceed_threshold(ops):
    """Invariant: admitted red bytes stay at or below the selective-dropping
    threshold (the paper's bounded-queue argument for reactive sub-flows)."""
    thresh = 10_000
    q = PacketQueue(QueueConfig(selective_drop_bytes=thresh))
    for size, color in ops:
        p = mk_pkt(size=size, color=color)
        if q.admit(p):
            q.push(p)
        assert q.red_bytes <= thresh


@given(st.lists(st.integers(64, 1584), max_size=100), st.integers(1000, 20000))
def test_property_byte_count_matches_contents(sizes, cap):
    q = PacketQueue(QueueConfig(capacity_bytes=cap))
    for s in sizes:
        p = mk_pkt(size=s)
        if q.admit(p):
            q.push(p)
        assert q.byte_count == sum(pk.size for pk in q._fifo)
        assert q.byte_count <= cap
