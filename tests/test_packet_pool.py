"""Packet pool: allocation discipline, poisoning, and __slots__ coverage.

The pool is only safe because the ownership rules in DESIGN.md §6d hold:
the final consumer releases, releases of hand-built packets are no-ops,
and (in debug mode) any use after release trips a poison check. These
tests pin each of those properties, plus the absence of ``__dict__`` on
every per-packet-hot class — one stray attribute assignment would silently
reintroduce a dict per instance.
"""

import pytest

from repro.net.buffering import SharedBuffer
from repro.net.link import Link
from repro.net.packet import (
    Dscp,
    Packet,
    PacketKind,
    PacketPool,
    alloc_packet,
    free_packet,
    packet_pool,
)
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.scheduler import PortScheduler
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import EventHandle, Simulator

from tests.test_net_port_topology import single_queue_factory


def _data(pool, flow_id, seq):
    return pool.acquire(PacketKind.DATA, flow_id, 0, 1, 1584, seq=seq,
                        dscp=Dscp.LEGACY)


class TestSlots:
    def test_hot_classes_have_no_dict(self):
        """Every object the per-packet path touches must be dict-free."""
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        port = db.senders[0].nic_port
        instances = [
            Packet(PacketKind.DATA, 1, 0, 1, 1500),
            EventHandle(0, 0, lambda: None, (), sim),
            PacketQueue(QueueConfig(name="q")),
            SharedBuffer(1 << 20),
            Link(sim, db.receivers[0], 1000),
            port,
            port.scheduler,
            db.senders[0],
            db.left,
            PacketPool(),
        ]
        for obj in instances:
            assert not hasattr(obj, "__dict__"), (
                f"{type(obj).__name__} grew a __dict__"
            )
        with pytest.raises(AttributeError):
            instances[0].not_a_field = 1

    def test_scheduler_has_no_dict(self):
        q = PacketQueue(QueueConfig(name="q"))
        from repro.net.scheduler import QueueSchedule

        sched = PortScheduler([QueueSchedule(q)])
        assert not hasattr(sched, "__dict__")


class TestPoolBasics:
    def test_acquire_reinitializes_reused_packet(self):
        pool = PacketPool()
        p1 = _data(pool, flow_id=1, seq=7)
        p1.ce = True
        pool.release(p1)
        p2 = pool.acquire(PacketKind.ACK, 2, 5, 6, 84, ack=3)
        assert p2 is p1  # freelist reuse
        assert p2.kind == PacketKind.ACK
        assert (p2.flow_id, p2.src, p2.dst, p2.size, p2.ack) == (2, 5, 6, 84, 3)
        assert p2.seq == -1 and p2.ce is False  # fully re-inited
        assert pool.reused == 1

    def test_release_of_hand_built_packet_is_noop(self):
        pool = PacketPool()
        pkt = Packet(PacketKind.DATA, 1, 0, 1, 1500)
        pool.release(pkt)
        assert pool.released == 0
        assert len(pool) == 0

    def test_max_size_bounds_freelist(self):
        pool = PacketPool(max_size=4)
        packets = [_data(pool, 1, i) for i in range(10)]
        for p in packets:
            pool.release(p)
        assert len(pool) == 4
        assert pool.released == 10

    def test_default_pool_roundtrip(self):
        pool = packet_pool()
        before = pool.acquired
        pkt = alloc_packet(PacketKind.DATA, 1, 0, 1, 1584)
        assert pkt._pooled
        free_packet(pkt)
        assert not pkt._pooled
        assert pool.acquired == before + 1

    def test_two_flow_interleaved_stress(self):
        """Acquire/release interleaved across two flows, window-style."""
        pool = PacketPool(max_size=64)
        live = {1: [], 2: []}
        released = 0
        for round_no in range(500):
            flow = 1 + (round_no & 1)
            pkt = _data(pool, flow, seq=round_no)
            assert pkt.flow_id == flow and pkt.seq == round_no
            live[flow].append(pkt)
            # ack-clock the other flow: release its oldest two packets
            other = live[2 - (round_no & 1)]
            for p in other[:2]:
                pool.release(p)
                released += 1
            del other[:2]
        for flow_packets in live.values():
            for p in flow_packets:
                pool.release(p)
                released += 1
        assert pool.acquired == 500
        assert pool.released == released == 500
        assert pool.reused > 0
        assert len(pool) <= 64
        # no packet ended up live in both flows
        assert not (set(map(id, live[1])) & set(map(id, live[2])))


class TestPoisoning:
    def test_released_packet_is_poisoned_in_debug(self):
        pool = PacketPool(debug=True)
        pkt = _data(pool, 1, 1)
        pool.release(pkt)
        assert PacketPool.is_poisoned(pkt)
        assert pkt.size < 0  # any arithmetic on it goes loudly wrong

    def test_double_release_raises_in_debug(self):
        pool = PacketPool(debug=True)
        pkt = _data(pool, 1, 1)
        pool.release(pkt)
        with pytest.raises(RuntimeError, match="double release"):
            pool.release(pkt)

    def test_use_after_release_detected_on_reacquire(self):
        """Mutating a released packet trips the poison check at acquire."""
        pool = PacketPool(debug=True)
        pkt = _data(pool, 1, 1)
        pool.release(pkt)
        pkt.kind = PacketKind.DATA  # use-after-release write
        with pytest.raises(RuntimeError, match="use-after-release"):
            pool.acquire(PacketKind.DATA, 1, 0, 1, 1584)

    def test_no_poison_outside_debug(self):
        pool = PacketPool(debug=False)
        pkt = _data(pool, 1, 9)
        pool.release(pkt)
        assert not PacketPool.is_poisoned(pkt)
        assert pkt.seq == 9  # fields untouched until reuse


class TestPoolThroughFabric:
    def test_sink_recycles_pooled_packets(self):
        """Pooled packets sent across the fabric return to the pool at the
        receiving host once the endpoint consumed them."""
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        seen = []

        class Sink:  # copies, does not retain
            def on_packet(self, pkt):
                seen.append((pkt.flow_id, pkt.seq))

        db.receivers[0].register_receiver(1, Sink())
        src, dst = db.senders[0], db.receivers[0]
        pool = packet_pool()
        base_released = pool.released
        n = 50
        for i in range(n):
            src.send(alloc_packet(PacketKind.DATA, 1, src.id, dst.id, 1584,
                                  seq=i, dscp=Dscp.LEGACY))
        sim.run()
        assert seen == [(1, i) for i in range(n)]
        assert pool.released - base_released == n
