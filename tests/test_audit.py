"""Tests for the correctness-audit subsystem (repro.audit).

Covers: AuditConfig validation and cache keying, digest determinism and
divergence localisation, every invariant tripping on a deliberately
broken fixture, the replay harness, and the CI matrix plumbing.
"""

import pickle

import pytest

from repro.audit import (
    AuditConfig,
    AuditError,
    AuditReport,
    DigestRecorder,
    EventDigest,
    InvariantAuditor,
)
from repro.audit.matrix import MATRIX_SCHEMES, MATRIX_TOPOLOGIES, run_matrix
from repro.audit.replay import replay_config
from repro.experiments.cache import config_key
from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.runner import build_flow_specs, run_experiment
from repro.experiments.scenarios import make_scheme_setup
from repro.net.packet import alloc_packet, free_packet
from repro.net.topology import ClosSpec, build_clos
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import MICROS, MILLIS


def audit_cfg(scheme=SchemeName.FLEXPASS, **overrides):
    """A deliberately tiny audited config (fast enough per-test)."""
    base = dict(
        scheme=scheme,
        deployment=0.0 if scheme == SchemeName.DCTCP else 1.0,
        load=0.5,
        sim_time_ns=300 * MICROS,
        size_scale=16.0,
        seed=2,
        clos=ClosSpec(n_pods=1, aggs_per_pod=1, tors_per_pod=2,
                      hosts_per_tor=2),
        audit=AuditConfig(checkpoint_interval_ns=50 * MICROS),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_audited(cfg, perturb=None):
    """Run ``cfg`` with an explicit auditor so a ``perturb(sim, clos,
    live)`` hook can corrupt state between the horizon and the audit."""
    sim = Simulator()
    rng = RngRegistry(cfg.seed)
    setup = make_scheme_setup(cfg)
    clos = build_clos(sim, setup.queue_factory, cfg.clos)
    specs, _plan = build_flow_specs(cfg, clos, rng)
    live = {}

    def launch(spec):
        live[spec.flow_id] = (spec, setup.launch(sim, spec, lambda s, st: None))

    for spec in specs:
        sim.at(spec.start_ns, launch, spec)
    auditor = InvariantAuditor(sim, clos.topo, live, config=cfg.audit)
    auditor.install(cfg.sim_time_ns)
    sim.run(until=cfg.sim_time_ns)
    if perturb is not None:
        perturb(sim, clos, live)
    return auditor.finalize()


class TestAuditConfig:
    def test_defaults_valid(self):
        cfg = AuditConfig()
        assert cfg.enabled and not cfg.digest

    @pytest.mark.parametrize("kw", [
        dict(checkpoint_interval_ns=0),
        dict(digest_epoch_ns=0),
        dict(capture_limit=0),
        dict(max_violations=0),
    ])
    def test_rejects_nonpositive(self, kw):
        with pytest.raises(ValueError):
            AuditConfig(**kw)

    def test_cache_keyable(self):
        """AuditConfig must survive the cache's canonicalizer, and
        toggling audit must change the key (different result payload)."""
        plain = audit_cfg(audit=None)
        audited = audit_cfg()
        assert config_key(plain) != config_key(audited)
        assert config_key(audited) == config_key(audit_cfg())

    def test_picklable(self):
        cfg = audit_cfg()
        assert pickle.loads(pickle.dumps(cfg)).audit == cfg.audit


class TestDigest:
    EVENTS = [(100, 1, 3, 7, 0), (250, 2, 4, 7, 1), (120_000, 1, 3, 8, None)]

    def _digest(self, events):
        rec = DigestRecorder(epoch_ns=100 * MICROS)
        for ev in events:
            rec.record(*ev)
        return rec.freeze()

    def test_identical_streams_equal(self):
        a = self._digest(self.EVENTS)
        b = self._digest(self.EVENTS)
        assert a == b
        assert a.final() == b.final()
        assert a.first_divergence(b) is None

    def test_any_field_perturbs_digest(self):
        base = self._digest(self.EVENTS)
        for i in range(5):
            ev = list(self.EVENTS[1])
            ev[i] = (ev[i] or 0) + 1
            mutated = [self.EVENTS[0], tuple(ev), self.EVENTS[2]]
            assert self._digest(mutated) != base

    def test_first_divergence_localises_epoch(self):
        mutated = [self.EVENTS[0], self.EVENTS[1],
                   (120_000, 1, 3, 9, None)]
        a = self._digest(self.EVENTS)
        b = self._digest(mutated)
        assert a.first_divergence(b) == 1  # 120 us / 100 us epoch
        assert b.first_divergence(a) == 1

    def test_missing_epoch_counts_as_divergence(self):
        a = self._digest(self.EVENTS)
        b = self._digest(self.EVENTS[:2])
        assert a.first_divergence(b) == 1

    def test_mismatched_epoch_ns_raises(self):
        a = self._digest(self.EVENTS)
        rec = DigestRecorder(epoch_ns=1)
        with pytest.raises(ValueError):
            a.first_divergence(rec.freeze())

    def test_capture_window(self):
        rec = DigestRecorder(epoch_ns=100 * MICROS, capture_epoch=1,
                             capture_limit=10)
        for ev in self.EVENTS:
            rec.record(*ev)
        d = rec.freeze()
        assert d.events == [(120_000, 1, 3, 8, -1)]

    def test_pickle_round_trip(self):
        a = self._digest(self.EVENTS)
        b = pickle.loads(pickle.dumps(a))
        assert a == b and a.final() == b.final()


class TestCleanRuns:
    def test_flexpass_clean(self):
        report = run_audited(audit_cfg())
        assert report.ok, report.violations
        assert report.checks > 0
        assert report.checkpoints >= 5

    def test_dctcp_clean(self):
        report = run_audited(audit_cfg(scheme=SchemeName.DCTCP))
        assert report.ok, report.violations

    def test_run_experiment_attaches_report(self):
        res = run_experiment(audit_cfg())
        assert res.audit is not None and res.audit.ok
        assert res.audit.digest is None  # digest off by default

    def test_disabled_audit_attaches_nothing(self):
        res = run_experiment(audit_cfg(audit=None))
        assert res.audit is None

    def test_digest_recorded_when_enabled(self):
        cfg = audit_cfg(audit=AuditConfig(digest=True,
                                          checkpoint_interval_ns=None))
        res = run_experiment(cfg)
        digest = res.audit.digest
        assert digest is not None and digest.total > 0
        # Same config, fresh process state: identical event stream.
        again = run_experiment(cfg).audit.digest
        assert digest == again

    def test_digest_differs_across_seeds(self):
        mk = lambda seed: audit_cfg(
            seed=seed, audit=AuditConfig(digest=True,
                                         checkpoint_interval_ns=None))
        a = run_experiment(mk(2)).audit.digest
        b = run_experiment(mk(3)).audit.digest
        assert a != b


class TestBrokenFixtures:
    """Each invariant must trip when its bookkeeping is corrupted."""

    def _violations(self, perturb):
        report = run_audited(audit_cfg(), perturb=perturb)
        assert not report.ok
        return "\n".join(report.violations)

    def test_pool_leak_detected(self):
        leaked = []

        def perturb(sim, clos, live):
            from repro.net.packet import PacketKind
            leaked.append(alloc_packet(PacketKind.DATA, 999, 0, 1, 100))

        assert "leak" in self._violations(perturb)
        free_packet(leaked[0])

    def test_pool_double_free_detected(self):
        def perturb(sim, clos, live):
            pool = InvariantAuditor(sim, clos.topo).pool
            pool.released += 1  # as if some packet were freed twice

        assert "double free" in self._violations(perturb)

    def test_buffer_used_mismatch_detected(self):
        def perturb(sim, clos, live):
            clos.topo.switches[0].buffer.used += 64

        assert "charge/release imbalance" in self._violations(perturb)

    def test_buffer_drops_mismatch_detected(self):
        def perturb(sim, clos, live):
            clos.topo.switches[0].buffer.drops += 1

        assert "dropped_buffer" in self._violations(perturb)

    def test_queue_counter_mismatch_detected(self):
        def perturb(sim, clos, live):
            port = next(iter(clos.topo.switches[0].ports.values()))
            port._queues[0].stats.enqueued += 1

        assert "enqueued" in self._violations(perturb)

    def test_link_delivery_mismatch_detected(self):
        def perturb(sim, clos, live):
            port = next(iter(clos.topo.switches[0].ports.values()))
            port.link.packets_delivered += 1

        assert "in-flight" in self._violations(perturb)

    def test_flow_byte_conservation_detected(self):
        def perturb(sim, clos, live):
            _spec, stats = next(iter(live.values()))
            stats.proactive_bytes += 10

        assert "proactive" in self._violations(perturb)

    def test_credit_conservation_detected(self):
        def perturb(sim, clos, live):
            _spec, stats = next(iter(live.values()))
            stats.credits_received += 5

        assert "credits_received" in self._violations(perturb)

    def test_overdelivery_detected(self):
        def perturb(sim, clos, live):
            spec, stats = next(iter(live.values()))
            stats.delivered_bytes = spec.size_bytes + 1
            stats.reactive_bytes = (stats.delivered_bytes
                                    - stats.proactive_bytes)

        assert "bytes > size" in self._violations(perturb)

    def test_n_acked_mismatch_detected(self):
        def perturb(sim, clos, live):
            for spec, _stats in live.values():
                sender = getattr(spec.src, "_senders", {}).get(spec.flow_id)
                buffer = getattr(sender, "buffer", None)
                if buffer is not None and hasattr(buffer, "n_acked"):
                    buffer.n_acked += 1
                    return
            pytest.skip("no segment buffer in this run")

        assert "n_acked" in self._violations(perturb)

    def test_fail_fast_raises(self):
        cfg = audit_cfg(audit=AuditConfig(fail_fast=True,
                                          checkpoint_interval_ns=None))

        def perturb(sim, clos, live):
            clos.topo.switches[0].buffer.used += 64

        with pytest.raises(AuditError):
            run_audited(cfg, perturb=perturb)

    def test_max_violations_caps_list(self):
        cfg = audit_cfg(audit=AuditConfig(max_violations=3,
                                          checkpoint_interval_ns=None))

        def perturb(sim, clos, live):
            for _spec, stats in live.values():
                stats.credits_received += 5

        report = run_audited(cfg, perturb=perturb)
        assert not report.ok
        assert len(report.violations) == 3
        assert report.checks > 3  # checking continued past the cap

    def test_raise_if_failed(self):
        report = AuditReport(violations=["t=1ns: boom"])
        with pytest.raises(AuditError, match="boom"):
            report.raise_if_failed()
        AuditReport().raise_if_failed()  # clean: no raise


class TestReplayAndMatrix:
    def test_replay_tiny_config_matches(self):
        cfg = audit_cfg(sim_time_ns=200 * MICROS)
        report = replay_config(cfg)
        assert report.match, (report.divergence_epoch, report.events_a,
                              report.events_b)
        assert report.total_events > 0

    def test_matrix_cell_passes(self):
        cells = run_matrix(schemes=("flexpass",), topologies=("dumbbell",),
                           sim_time_ns=300 * MICROS)
        assert len(cells) == 1
        cell = cells[0]
        assert cell.ok, cell.violations
        assert cell.flows > 0 and cell.checks > 0

    def test_matrix_covers_all_schemes_and_shapes(self):
        assert set(MATRIX_SCHEMES) == {"dctcp", "naive", "homa", "ly",
                                       "flexpass"}
        assert set(MATRIX_TOPOLOGIES) == {"dumbbell", "incast", "clos"}
