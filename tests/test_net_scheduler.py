"""Unit tests for strict-priority + DWRR scheduling and credit pacing."""

import pytest

from repro.net.packet import Color, Dscp, Packet, PacketKind
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.ratelimit import TokenBucket
from repro.net.scheduler import PortScheduler, QueueSchedule
from repro.sim.units import GBPS, SECONDS


def mk_pkt(size=1500, dscp=Dscp.LEGACY):
    return Packet(PacketKind.DATA, 1, 0, 1, size, dscp=dscp)


def mk_sched(*specs):
    """specs: (priority, weight, pacer_or_None) per queue."""
    schedules = [
        QueueSchedule(PacketQueue(QueueConfig(name=f"q{i}")), priority=p, weight=w, pacer=pc)
        for i, (p, w, pc) in enumerate(specs)
    ]
    return PortScheduler(schedules), [s.queue for s in schedules]


class TestStrictPriority:
    def test_high_priority_served_first(self):
        sched, (q0, q1) = mk_sched((0, 1.0, None), (1, 1.0, None))
        lo = mk_pkt()
        hi = mk_pkt()
        q1.push(lo)
        q0.push(hi)
        pkt, _ = sched.next(0)
        assert pkt is hi
        pkt, _ = sched.next(0)
        assert pkt is lo

    def test_empty_returns_none_none(self):
        sched, _ = mk_sched((0, 1.0, None))
        assert sched.next(0) == (None, None)


class TestDwrrFairness:
    def test_equal_weights_equal_shares(self):
        sched, (q0, q1) = mk_sched((1, 1.0, None), (1, 1.0, None))
        marker = {}
        for q, tag in ((q0, 0), (q1, 1)):
            for _ in range(400):
                p = mk_pkt()
                marker[id(p)] = tag
                q.push(p)
        counts = [0, 0]
        for _ in range(400):
            pkt, _ = sched.next(0)
            counts[marker[id(pkt)]] += pkt.size
        ratio = counts[0] / counts[1]
        assert 0.9 < ratio < 1.1

    def test_weighted_shares(self):
        sched, (q0, q1) = mk_sched((1, 3.0, None), (1, 1.0, None))
        marker = {}
        for q, tag in ((q0, 0), (q1, 1)):
            for _ in range(800):
                p = mk_pkt()
                marker[id(p)] = tag
                q.push(p)
        counts = [0, 0]
        for _ in range(800):
            pkt, _ = sched.next(0)
            counts[marker[id(pkt)]] += pkt.size
        ratio = counts[0] / counts[1]
        assert 2.6 < ratio < 3.4

    def test_work_conserving_when_one_queue_empty(self):
        """An idle queue's weight goes to the backlogged queue."""
        sched, (q0, q1) = mk_sched((1, 1.0, None), (1, 9.0, None))
        for _ in range(10):
            q0.push(mk_pkt())
        for _ in range(10):
            pkt, _ = sched.next(0)
            assert pkt is not None
        assert q0.empty

    def test_idle_queue_does_not_bank_deficit(self):
        """Classic DRR: a queue that goes empty forfeits accumulated deficit
        and cannot burst past its weight later."""
        sched, (q0, q1) = mk_sched((1, 1.0, None), (1, 1.0, None))
        # q0 alone for a while
        for _ in range(50):
            q0.push(mk_pkt())
        for _ in range(50):
            sched.next(0)
        # now both backlogged: shares must be ~equal from here on
        marker = {}
        for q, tag in ((q0, 0), (q1, 1)):
            for _ in range(200):
                p = mk_pkt()
                marker[id(p)] = tag
                q.push(p)
        counts = [0, 0]
        for _ in range(200):
            pkt, _ = sched.next(0)
            counts[marker[id(pkt)]] += 1
        assert abs(counts[0] - counts[1]) <= 4

    def test_mixed_packet_sizes_fair_in_bytes(self):
        """DWRR fairness is byte-based, not packet-based."""
        sched, (q0, q1) = mk_sched((1, 1.0, None), (1, 1.0, None))
        marker = {}
        for _ in range(1200):
            p = mk_pkt(size=300)  # small packets
            marker[id(p)] = 0
            q0.push(p)
        for _ in range(300):
            p = mk_pkt(size=1500)  # big packets
            marker[id(p)] = 1
            q1.push(p)
        counts = [0, 0]
        for _ in range(900):
            pkt, _ = sched.next(0)
            counts[marker[id(pkt)]] += pkt.size
        ratio = counts[0] / counts[1]
        assert 0.85 < ratio < 1.15


class TestDwrrSmallWeights:
    """Regression tests for the pass-budget wedge: a backlogged queue with a
    tiny weight needs ~1/weight rounds to accumulate one MTU of deficit, and
    the pre-fix scheduler gave up after 64 passes, returned (None, None)
    ("all empty") with packets still queued, and the port never re-armed."""

    def test_weight_001_queue_drains(self):
        sched, (q0, q1) = mk_sched((1, 1.0, None), (1, 0.01, None))
        for _ in range(3):
            q1.push(mk_pkt())
        served = []
        for _ in range(3):
            pkt, wake = sched.next(0)
            assert pkt is not None, (
                "scheduler reported idle while a weight-0.01 queue was "
                f"backlogged (wake={wake}, queued={len(q1)})"
            )
            served.append(pkt)
        assert q1.empty
        assert sched.next(0) == (None, None)

    def test_both_queues_drain_with_extreme_weight_ratio(self):
        sched, (q0, q1) = mk_sched((1, 1.0, None), (1, 0.005, None))
        for _ in range(20):
            q0.push(mk_pkt())
            q1.push(mk_pkt())
        got = 0
        while True:
            pkt, wake = sched.next(0)
            if pkt is None:
                break
            got += 1
            assert got <= 40
        assert got == 40
        assert q0.empty and q1.empty

    def test_small_weight_shares_converge(self):
        """The fast-forwarded rounds must preserve DRR shares: a 10:1 weight
        ratio yields ~10:1 bytes even when the small weight is far below the
        one-quantum-per-pass regime."""
        sched, (q0, q1) = mk_sched((1, 0.5, None), (1, 0.05, None))
        marker = {}
        for q, tag in ((q0, 0), (q1, 1)):
            for _ in range(600):
                p = mk_pkt()
                marker[id(p)] = tag
                q.push(p)
        counts = [0, 0]
        for _ in range(600):
            pkt, _ = sched.next(0)
            counts[marker[id(pkt)]] += pkt.size
        ratio = counts[0] / counts[1]
        assert 8.0 < ratio < 12.0

    def test_paced_small_weight_reports_wake_not_idle(self):
        """When the only backlogged queue in a DWRR class is paced and out of
        tokens, the scheduler must return a wake time — not (None, None) —
        even at small weights, or the port never re-arms."""
        bucket = TokenBucket(rate_bps=1_000_000, bucket_bytes=84)
        sched, (q0, q1) = mk_sched((1, 1.0, None), (1, 0.01, bucket))
        q1.push(mk_pkt(size=84))
        pkt, _ = sched.next(0)  # bucket starts full: serves
        assert pkt is not None
        q1.push(mk_pkt(size=84))
        pkt, wake = sched.next(0)
        assert pkt is None
        assert wake is not None and wake > 0
        pkt, _ = sched.next(wake)
        assert pkt is not None

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            mk_sched((1, 0.0, None), (1, 1.0, None))
        with pytest.raises(ValueError):
            mk_sched((1, -1.0, None))


class TestBacklogCache:
    def test_backlog_counters_track_queue_transitions(self):
        sched, (q0, q1, q2) = mk_sched(
            (0, 1.0, None), (1, 1.0, None), (1, 1.0, None))
        assert sched._backlog == [0, 0]
        q0.push(mk_pkt())
        q1.push(mk_pkt())
        assert sched._backlog == [1, 1]
        q2.push(mk_pkt())
        assert sched._backlog == [1, 2]
        while sched.next(0)[0] is not None:
            pass
        assert sched._backlog == [0, 0]

    def test_queue_nonempty_at_construction_is_counted(self):
        q = PacketQueue(QueueConfig())
        q.push(Packet(PacketKind.DATA, 1, 0, 1, 1500, dscp=Dscp.LEGACY))
        sched = PortScheduler([
            QueueSchedule(q, priority=0),
            QueueSchedule(PacketQueue(QueueConfig()), priority=1),
        ])
        assert sched._backlog == [1, 0]
        pkt, _ = sched.next(0)
        assert pkt is not None
        assert sched._backlog == [0, 0]


class TestPacedQueue:
    def test_pacer_defers_service(self):
        # 84-byte credits at 100 Mbps: one credit every 6720 ns.
        bucket = TokenBucket(rate_bps=100_000_000, bucket_bytes=84)
        sched, (q0,) = mk_sched((0, 1.0, bucket))
        q0.push(mk_pkt(size=84))
        q0.push(mk_pkt(size=84))
        pkt, wake = sched.next(0)
        assert pkt is not None  # bucket starts full
        pkt, wake = sched.next(0)
        assert pkt is None
        assert wake is not None and wake > 0
        pkt, _ = sched.next(wake)
        assert pkt is not None

    def test_paced_high_priority_does_not_block_low(self):
        """Work conservation across the pacer: data flows while credits wait."""
        bucket = TokenBucket(rate_bps=100_000_000, bucket_bytes=84)
        sched, (credits, data) = mk_sched((0, 1.0, bucket), (1, 1.0, None))
        credits.push(mk_pkt(size=84, dscp=Dscp.CREDIT))
        credits.push(mk_pkt(size=84, dscp=Dscp.CREDIT))
        data.push(mk_pkt(size=1500))
        first, _ = sched.next(0)
        assert first.size == 84  # bucket full: credit goes first
        second, _ = sched.next(0)
        assert second.size == 1500  # credit paced out: data proceeds

    def test_wake_time_reported_when_only_paced_backlog(self):
        bucket = TokenBucket(rate_bps=1_000_000, bucket_bytes=84)
        sched, (credits,) = mk_sched((0, 1.0, bucket))
        credits.push(mk_pkt(size=84))
        sched.next(0)  # consume the initial full bucket
        credits.push(mk_pkt(size=84))
        pkt, wake = sched.next(0)
        assert pkt is None
        # 84 bytes at 1 Mbps = 672 us
        assert wake == pytest.approx(672_000, rel=0.01)


class TestTokenBucket:
    def test_starts_full(self):
        tb = TokenBucket(GBPS, 1000)
        assert tb.can_send(0, 1000)

    def test_refills_at_rate(self):
        tb = TokenBucket(8 * GBPS, 10_000)  # 1 byte per ns
        tb.consume(0, 10_000)
        assert not tb.can_send(0, 1)
        assert tb.can_send(5000, 5000)
        assert not tb.can_send(5000, 5001)

    def test_does_not_exceed_depth(self):
        tb = TokenBucket(8 * GBPS, 100)
        assert tb.tokens(1_000_000) == 100

    def test_eligible_at(self):
        tb = TokenBucket(8 * GBPS, 1000)  # 1 B/ns
        tb.consume(0, 1000)
        t = tb.eligible_at(0, 500)
        assert 500 <= t <= 502
        assert tb.can_send(t, 500)

    def test_eligible_at_exact_when_deficit_divides_rate(self):
        """Ceiling division, not int()+1: an exactly-divisible deficit is
        eligible on the nanosecond, with no systematic 1 ns overshoot."""
        tb = TokenBucket(8 * GBPS, 1000)  # exactly 1 byte per ns
        tb.consume(0, 1000)
        assert tb.eligible_at(0, 500) == 500
        assert tb.can_send(500, 500)

    def test_eligible_at_rounds_up_inexact_deficit(self):
        tb = TokenBucket(16 * GBPS, 1000)  # 2 bytes per ns
        tb.consume(0, 1000)
        assert tb.eligible_at(0, 5) == 3  # 2.5 ns rounds up
        assert tb.eligible_at(0, 4) == 2  # exact: no +1
        assert tb.can_send(2, 4)

    def test_eligible_at_credit_cadence_has_no_drift(self):
        """84-byte credits at 1 Mbps must tick at exactly 672 us: over many
        periods the int()+1 rounding added 1 ns per credit and drifted the
        credit queue below its reserved rate."""
        period = 672_000  # 84 B * 8 / 1 Mbps
        tb = TokenBucket(rate_bps=1_000_000, bucket_bytes=84)
        t = 0
        tb.consume(0, 84)
        for i in range(1, 101):
            t = tb.eligible_at(t, 84)
            assert t == i * period
            tb.consume(t, 84)

    def test_overdraw_raises(self):
        tb = TokenBucket(GBPS, 100)
        with pytest.raises(RuntimeError):
            tb.consume(0, 200)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 100)
        with pytest.raises(ValueError):
            TokenBucket(GBPS, 0)

    def test_eligible_at_property_stress(self):
        """~1e5 random (rate, size, gap) steps: the instant ``eligible_at``
        returns must genuinely admit the packet, never lie in the past, and
        never be loose by more than one nanosecond of refill."""
        import random

        rng = random.Random(0xF1E)
        for _ in range(200):
            rate = rng.choice([1_000_000, 99_999_999, 8 * GBPS,
                               rng.randrange(1, 400 * GBPS)])
            depth = rng.randrange(84, 10_000)
            tb = TokenBucket(rate_bps=rate, bucket_bytes=depth)
            now = 0
            for _ in range(500):
                n = rng.randrange(1, depth + 1)
                t = tb.eligible_at(now, n)
                assert t >= now
                if t > now:
                    # Tight: one ns earlier the tokens must not suffice
                    # (within the float refill granularity of one ns).
                    # Checked before can_send: the refill clock only moves
                    # forward, so t-1 must be probed first.
                    assert tb.tokens(t - 1) < n + rate / (8.0 * SECONDS)
                assert tb.can_send(t, n)
                if rng.random() < 0.7:
                    tb.consume(t, n)
                    now = t
                else:
                    now = t + rng.randrange(0, 10_000)

    def test_paced_rate_has_no_cumulative_drift(self):
        """Draining fixed-size packets as fast as eligible_at allows must
        achieve the configured rate exactly — any per-packet rounding error
        compounds over thousands of sends into measurable undershoot."""
        for rate, size in [(1_000_000, 84), (40 * GBPS, 1584),
                           (99_999_999, 123)]:
            tb = TokenBucket(rate_bps=rate, bucket_bytes=size)
            tb.consume(0, size)  # start empty
            t = 0
            n_packets = 5000
            for _ in range(n_packets):
                t = tb.eligible_at(t, size)
                tb.consume(t, size)
            ideal_ns = n_packets * size * 8 * SECONDS / rate
            # Within one ns per packet of the fluid-model finish time.
            assert 0 <= t - ideal_ns < n_packets + 2
