"""Integration tests: ports serialize correctly, topologies route end to end."""

import pytest

from repro.net.packet import Dscp, Packet, PacketKind
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.scheduler import QueueSchedule
from repro.net.topology import (
    ClosSpec,
    DumbbellSpec,
    StarSpec,
    build_clos,
    build_dumbbell,
    build_star,
)
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MICROS, tx_time_ns


def single_queue_factory(name, rate_bps, is_host_nic):
    """All traffic in one FIFO — the simplest valid port."""
    q = PacketQueue(QueueConfig(name="all"))
    classifier = {d.value: 0 for d in Dscp}
    classifier.update({Dscp.HOMA_BASE + p: 0 for p in range(8)})
    return [QueueSchedule(q, priority=0, weight=1.0)], classifier


def mk_data(flow, src, dst, size=1584):
    return Packet(PacketKind.DATA, flow, src, dst, size, dscp=Dscp.LEGACY)


class SinkHostMixin:
    """Capture packets at a host by registering a recording endpoint."""


class Recorder:
    retains_packets = True  # keep delivered objects out of the packet pool

    def __init__(self):
        self.packets = []

    def on_packet(self, pkt):
        self.packets.append(pkt)


class TestDumbbellForwarding:
    def test_packet_crosses_fabric(self):
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        rec = Recorder()
        db.receivers[0].register_receiver(1, rec)
        pkt = mk_data(1, db.senders[0].id, db.receivers[0].id)
        db.senders[0].send(pkt)
        sim.run()
        assert rec.packets == [pkt]

    def test_latency_is_serialization_plus_propagation(self):
        sim = Simulator()
        spec = DumbbellSpec(n_pairs=1, rate_bps=10 * GBPS, link_delay_ns=4 * MICROS,
                            host_delay_ns=2 * MICROS)
        db = build_dumbbell(sim, single_queue_factory, spec)
        rec = Recorder()
        arrival = {}
        db.receivers[0].register_receiver(1, rec)
        pkt = mk_data(1, db.senders[0].id, db.receivers[0].id, size=1584)
        db.senders[0].send(pkt)
        sim.run()
        # Path: host NIC (6us) -> swL (4us) -> swR (6us) -> host, 3 links,
        # 3 serializations of 1584B at 10G (1267.2 -> 1268 ns each).
        ser = tx_time_ns(1584, 10 * GBPS)
        expected = 3 * ser + (6 + 4 + 6) * MICROS
        assert sim.now == expected

    def test_fifo_preserved_through_fabric(self):
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        rec = Recorder()
        db.receivers[0].register_receiver(1, rec)
        pkts = [mk_data(1, db.senders[0].id, db.receivers[0].id) for _ in range(20)]
        for p in pkts:
            db.senders[0].send(p)
        sim.run()
        assert rec.packets == pkts

    def test_bottleneck_serializes_two_senders(self):
        """Two 10G senders into one 10G bottleneck: total transfer time is
        governed by the bottleneck, and the bottleneck stays busy."""
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=2))
        recs = [Recorder(), Recorder()]
        db.receivers[0].register_receiver(1, recs[0])
        db.receivers[1].register_receiver(2, recs[1])
        n = 100
        for i in range(n):
            db.senders[0].send(mk_data(1, db.senders[0].id, db.receivers[0].id))
            db.senders[1].send(mk_data(2, db.senders[1].id, db.receivers[1].id))
        sim.run()
        assert len(recs[0].packets) == n and len(recs[1].packets) == n
        # 200 packets * 1584B * 8b / 10Gbps ~ 253 us minimum at the bottleneck
        assert sim.now >= 200 * tx_time_ns(1584, 10 * GBPS)


class TestStar:
    def test_two_to_one_shape(self):
        sim = Simulator()
        star = build_star(sim, single_queue_factory, StarSpec(n_hosts=3))
        rec = Recorder()
        star.hosts[2].register_receiver(5, rec)
        star.hosts[0].send(mk_data(5, star.hosts[0].id, star.hosts[2].id))
        sim.run()
        assert len(rec.packets) == 1

    def test_downlink_port_lookup(self):
        sim = Simulator()
        star = build_star(sim, single_queue_factory, StarSpec(n_hosts=3))
        port = star.downlink(star.hosts[0])
        assert port.name == f"sw->{star.hosts[0].name}"


class TestClos:
    def test_paper_scale_dimensions(self):
        spec = ClosSpec.paper_scale()
        assert spec.n_hosts == 192
        sim = Simulator()
        clos = build_clos(sim, single_queue_factory, spec)
        assert len(clos.hosts) == 192
        assert len(clos.cores) == 8
        assert sum(len(p) for p in clos.aggs) == 16
        assert sum(len(p) for p in clos.tors) == 32

    def test_tor_oversubscription_ratio(self):
        spec = ClosSpec.paper_scale()
        # 6 host links down vs 2 agg uplinks -> 3:1 as in §6.2
        assert spec.hosts_per_tor / spec.aggs_per_pod == 3.0

    def test_all_pairs_reachable(self):
        sim = Simulator()
        clos = build_clos(sim, single_queue_factory, ClosSpec())
        hosts = clos.hosts
        flow = 0
        recs = {}
        for dst in hosts:
            rec = Recorder()
            recs[dst.id] = rec
        # one packet host0 -> every other host
        src = hosts[0]
        for dst in hosts[1:]:
            flow += 1
            dst.register_receiver(flow, recs[dst.id])
            src.send(mk_data(flow, src.id, dst.id))
        sim.run()
        for dst in hosts[1:]:
            assert len(recs[dst.id].packets) == 1, f"no delivery to {dst.name}"
        assert all(sw.routing_failures == 0 for sw in clos.topo.switches)

    def test_cross_pod_traffic_uses_core(self):
        sim = Simulator()
        clos = build_clos(sim, single_queue_factory, ClosSpec())
        src = clos.racks()[0][0]
        dst = clos.racks()[-1][0]  # other pod
        rec = Recorder()
        dst.register_receiver(99, rec)
        src.send(mk_data(99, src.id, dst.id))
        sim.run()
        assert len(rec.packets) == 1
        core_bytes = sum(
            p.link.bytes_delivered for c in clos.cores for p in c.ports.values()
        )
        assert core_bytes > 0

    def test_racks_partition_hosts(self):
        sim = Simulator()
        clos = build_clos(sim, single_queue_factory, ClosSpec())
        racks = clos.racks()
        seen = [h.id for rack in racks for h in rack]
        assert sorted(seen) == sorted(h.id for h in clos.hosts)
        assert clos.rack_of(racks[1][0]) == 1


class TestPortErrors:
    def test_unclassified_dscp_raises(self):
        sim = Simulator()

        def narrow_factory(name, rate, is_host_nic):
            q = PacketQueue(QueueConfig())
            return [QueueSchedule(q)], {Dscp.LEGACY.value: 0}

        db = build_dumbbell(sim, narrow_factory, DumbbellSpec(n_pairs=1))
        bad = Packet(PacketKind.DATA, 1, db.senders[0].id, db.receivers[0].id,
                     100, dscp=Dscp.CREDIT)
        with pytest.raises(KeyError):
            db.senders[0].send(bad)

    def test_stray_feedback_counted_not_crashing(self):
        sim = Simulator()
        db = build_dumbbell(sim, single_queue_factory, DumbbellSpec(n_pairs=1))
        ack = Packet(PacketKind.ACK, 42, db.receivers[0].id, db.senders[0].id, 84,
                     dscp=Dscp.LEGACY)
        db.receivers[0].send(ack)
        sim.run()
        assert db.senders[0].stray_packets == 1
