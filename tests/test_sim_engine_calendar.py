"""Differential tests: the calendar engine against the heap-engine oracle.

The two backends promise bit-identical scheduling semantics — same firing
order (nondecreasing time, FIFO at equal instants via seq), same
``pending()`` accounting, same ``peek_time()`` — so randomized scheduling
programs are run on both and every observable is compared. The audit
subsystem's replay-digest matrix covers the same contract end-to-end on real
experiments; these tests cover it at the kernel surface, where shrinking a
failure is cheap.

Also home to the watchdog stalled-purge regression test (both engines): the
wall-clock check must key on loop iterations, not executed events, or a
cancel-dominated calendar purges forever without ever consulting the clock.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.calendar import CalendarSimulator
from repro.sim.engine import (
    ENGINE_BACKENDS,
    HeapSimulator,
    Simulator,
    make_simulator,
)

ENGINES = [HeapSimulator, CalendarSimulator]
#: exercise bucket-boundary behavior: one tiny-bucket and one huge-bucket
#: calendar run alongside the default, against the same oracle
CALENDAR_VARIANTS = [
    CalendarSimulator,
    lambda: CalendarSimulator(bucket_bits=2),
    lambda: CalendarSimulator(bucket_bits=30),
]


def _run_program(make_sim, seed: int, n_roots: int):
    """Interpret one randomized scheduling program; return its full trace.

    The program's own random stream (``random.Random(seed)``) is consumed
    inside event callbacks, so any dispatch-order divergence between engines
    derails the stream and shows up as a trace mismatch immediately.
    """
    sim = make_sim()
    rnd = random.Random(seed)
    trace = []
    cancellable = []
    repeaters = []

    def make_cb(label: str, depth: int):
        def cb(*args):
            trace.append((label, sim.now, args))
            if depth >= 3:
                return
            choice = rnd.randrange(8)
            d = rnd.randrange(0, 60_000)
            if choice == 0:
                cancellable.append(
                    sim.after(d, make_cb(label + ".a", depth + 1)))
            elif choice == 1:
                sim.post(d, make_cb(label + ".p", depth + 1), label)
            elif choice == 2:
                sim.at(sim.now + d, make_cb(label + ".t", depth + 1))
            elif choice == 3:
                sim.post_at(sim.now + d, make_cb(label + ".q", depth + 1))
            elif choice == 4 and cancellable:
                cancellable.pop(rnd.randrange(len(cancellable))).cancel()
            elif choice == 5:
                period = rnd.randrange(1, 5_000)
                rep = sim.every(period, make_cb(label + ".r", 3),
                                until=sim.now + rnd.randrange(0, 20_000))
                repeaters.append(rep)
            elif choice == 6 and repeaters:
                repeaters.pop(rnd.randrange(len(repeaters))).cancel()
            else:
                trace.append(("obs", sim.peek_time(), sim.pending()))
        return cb

    for i in range(n_roots):
        d = rnd.randrange(0, 200_000)
        kind = rnd.randrange(3)
        if kind == 0:
            cancellable.append(sim.after(d, make_cb(f"r{i}", 0)))
        elif kind == 1:
            sim.post(d, make_cb(f"r{i}", 0))
        else:
            sim.at(d, make_cb(f"r{i}", 0))
    executed = sim.run()
    trace.append(("end", sim.now, executed, sim.pending(), sim.events_run))
    return trace


class TestDifferentialRandomPrograms:
    @given(seed=st.integers(0, 2**32 - 1), n_roots=st.integers(1, 25))
    @settings(max_examples=60, deadline=None)
    def test_full_drain_traces_identical(self, seed, n_roots):
        oracle = _run_program(HeapSimulator, seed, n_roots)
        for make_sim in CALENDAR_VARIANTS:
            assert _run_program(make_sim, seed, n_roots) == oracle

    @given(seed=st.integers(0, 2**32 - 1), horizon=st.integers(0, 150_000))
    @settings(max_examples=40, deadline=None)
    def test_run_until_traces_identical(self, seed, horizon):
        def run(make_sim):
            sim = make_sim()
            rnd = random.Random(seed)
            trace = []
            for i in range(12):
                t = rnd.randrange(0, 200_000)
                sim.at(t, trace.append, (i, t))
            executed = sim.run(until=horizon)
            # Leftovers drain in a second call: the horizon must not have
            # perturbed ordering of what stayed behind.
            executed += sim.run()
            return trace, executed, sim.now
        oracle = run(HeapSimulator)
        for make_sim in CALENDAR_VARIANTS:
            assert run(make_sim) == oracle

    @given(seed=st.integers(0, 2**32 - 1), max_events=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_max_events_watchdog_identical(self, seed, max_events):
        def run(make_sim):
            sim = make_sim()
            rnd = random.Random(seed)
            trace = []
            for i in range(30):
                sim.post(rnd.randrange(0, 100_000), trace.append, i)
            executed = sim.run(max_events=max_events)
            return trace, executed, sim.aborted, sim.pending()
        oracle = run(HeapSimulator)
        for make_sim in CALENDAR_VARIANTS:
            assert run(make_sim) == oracle


class TestOrderingEdgeCases:
    @pytest.mark.parametrize("make_sim", CALENDAR_VARIANTS)
    def test_equal_instant_fifo_across_apis(self, make_sim):
        """Events landing on one instant from every scheduling API fire in
        scheduling (seq) order, matching the oracle exactly."""
        def run(factory):
            sim = factory()
            trace = []
            sim.at(500, trace.append, "at-early")
            sim.after(500, trace.append, "after")
            sim.post(500, trace.append, "post")
            sim.post_at(500, trace.append, "post_at")
            sim.at(500, trace.append, "at-late")
            sim.at(499, trace.append, "sooner")
            sim.run()
            return trace
        assert run(make_sim) == run(HeapSimulator) == [
            "sooner", "at-early", "after", "post", "post_at", "at-late"]

    @pytest.mark.parametrize("make_sim", ENGINES)
    def test_cancel_same_instant_later_seq(self, make_sim):
        """A callback cancelling a same-instant, later-seq event must win:
        the victim was scheduled but not yet dispatched."""
        sim = make_sim()
        fired = []
        victim = sim.at(100, fired.append, "victim")
        sim.at(100, victim.cancel)  # earlier seq than victim? No: later.
        sim.run()
        # ``victim`` has the earlier seq, so it fires before the canceller.
        assert fired == ["victim"]

        sim2 = make_sim()
        fired2 = []
        h = [None]
        def canceller():
            h[0].cancel()
        sim2.at(100, canceller)
        h[0] = sim2.at(100, fired2.append, "victim")
        sim2.run()
        assert fired2 == []

    @pytest.mark.parametrize("make_sim", CALENDAR_VARIANTS)
    def test_callback_scheduling_earlier_than_stored(self, make_sim):
        """A callback scheduling an event sooner than everything stored must
        see it fire next (slot displacement correctness)."""
        def run(factory):
            sim = factory()
            trace = []
            def wedge():
                sim.at(sim.now + 1, trace.append, ("wedged", sim.now + 1))
            sim.at(10, wedge)
            for t in (100_000, 200_000, 12):
                sim.at(t, trace.append, ("base", t))
            sim.run()
            return trace
        assert run(make_sim) == run(HeapSimulator)

    @pytest.mark.parametrize("make_sim", CALENDAR_VARIANTS)
    def test_peek_inside_callback_consistent(self, make_sim):
        """peek_time() from inside a callback (which may force a bucket
        advance mid-drain) must agree with the oracle."""
        def run(factory):
            sim = factory()
            trace = []
            def observer(label):
                trace.append((label, sim.peek_time(), sim.pending()))
            for t in (5, 70_000, 70_000, 140_000):
                sim.at(t, observer, t)
            sim.run()
            return trace
        assert run(make_sim) == run(HeapSimulator)

    def test_iter_pending_covers_all_tiers(self):
        sim = CalendarSimulator(bucket_bits=4)
        h1 = sim.at(1, lambda: None)          # slot
        sim.post(5, lambda: None)             # active/bucket region
        sim.at(10_000, lambda: None)          # future bucket
        h2 = sim.after(90_000, lambda: None)  # far-future bucket
        h2.cancel()                           # cancelled entries included
        entries = sorted(sim.iter_pending())
        assert [t for t, _, _ in entries] == [1, 5, 10_000, 90_000]
        seqs = [s for _, s, _ in entries]
        assert seqs == sorted(seqs) == list(range(4))
        assert sim.pending() == 3
        assert h1.time == 1


class TestWatchdogStalledPurge:
    """Regression: the wall-clock watchdog must trip while purging a
    cancel-dominated calendar, even though no event executes (the old check
    keyed on ``executed`` and never fired)."""

    @pytest.mark.parametrize("make_sim", ENGINES)
    def test_purge_storm_trips_wall_clock(self, make_sim, monkeypatch):
        sim = make_sim()
        fired = []
        # 6000 cancelled entries ahead of 7000 live ones, ratio held below
        # the compaction trigger (6000 * 2 < 13000) so the purge loop really
        # walks every cancelled entry one iteration at a time.
        doomed = [sim.after(i, lambda: None) for i in range(6_000)]
        for i in range(7_000):
            sim.at(100_000 + i, fired.append, i)
        for h in doomed:
            h.cancel()
        assert sim.pending() == 7_000

        # Each monotonic() call advances 2s against a 1s budget: the very
        # first *check* is already past the deadline. With WALL_CHECK_INTERVAL
        # = 4096 < 6000 purge iterations, an iteration-keyed watchdog aborts
        # before any live event runs; the old executed-keyed check would have
        # sailed through the purge and executed thousands of events.
        clock = [1_000.0]
        def fake_monotonic():
            clock[0] += 2.0
            return clock[0]
        engine_mod = type(sim).__module__
        import importlib
        monkeypatch.setattr(importlib.import_module(engine_mod).time,
                            "monotonic", fake_monotonic)

        executed = sim.run(wall_clock_s=1.0)
        assert sim.aborted
        assert "wall-clock" in sim.abort_reason
        assert executed == 0
        assert fired == []
        # The abort left live events pending; a fresh run drains them.
        assert sim.pending() == 7_000

    @pytest.mark.parametrize("make_sim", ENGINES)
    def test_wall_clock_not_checked_when_unarmed(self, make_sim, monkeypatch):
        """Without wall_clock_s the guarded loop must never call the clock
        (max_events alone arms no deadline)."""
        sim = make_sim()
        for i in range(10):
            sim.post(i, lambda: None)
        def boom():  # pragma: no cover - the assertion is that it never runs
            raise AssertionError("monotonic called without a wall budget")
        import importlib
        monkeypatch.setattr(
            importlib.import_module(type(sim).__module__).time,
            "monotonic", boom)
        assert sim.run(max_events=100) == 10


class TestBackendSelection:
    def test_default_is_calendar(self):
        assert Simulator is CalendarSimulator
        assert isinstance(make_simulator(), CalendarSimulator)

    def test_explicit_backend(self):
        assert isinstance(make_simulator("heap"), HeapSimulator)
        assert isinstance(make_simulator("calendar"), CalendarSimulator)

    def test_env_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "heap")
        assert isinstance(make_simulator(), HeapSimulator)
        # An explicit argument beats the environment.
        assert isinstance(make_simulator("calendar"), CalendarSimulator)

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_simulator("splay-tree")
        monkeypatch.setenv("REPRO_SIM_ENGINE", "bogus")
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_simulator()

    def test_registry_contents(self):
        assert ENGINE_BACKENDS == {"calendar": CalendarSimulator,
                                   "heap": HeapSimulator}
