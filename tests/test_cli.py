"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_figure_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.load == 0.5
        assert args.deployments == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_run_scheme_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])


class TestExecution:
    def test_run_command_prints_metrics(self, capsys):
        rc = main(["run", "--scheme", "flexpass", "--deployment", "1.0",
                   "--ms", "2", "--size-scale", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p99 small FCT" in out
        assert "flexpass @ 100%" in out

    def test_sweep_command(self, capsys):
        rc = main(["sweep", "--schemes", "flexpass", "--deployments", "0", "1",
                   "--ms", "2", "--size-scale", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Deployment sweep" in out
        assert "flexpass" in out
