"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_figure_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.load == 0.5
        assert args.deployments == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_run_scheme_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])


class TestExecution:
    def test_run_command_prints_metrics(self, capsys):
        rc = main(["run", "--scheme", "flexpass", "--deployment", "1.0",
                   "--ms", "2", "--size-scale", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p99 small FCT" in out
        assert "flexpass @ 100%" in out

    def test_sweep_command(self, capsys):
        rc = main(["sweep", "--schemes", "flexpass", "--deployments", "0", "1",
                   "--ms", "2", "--size-scale", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Deployment sweep" in out
        assert "flexpass" in out


EXAMPLE_SPEC = str(pathlib.Path(__file__).resolve().parents[1] /
                   "examples" / "regional_fabric.yaml")


class TestTopoCommand:
    def test_validate(self, capsys):
        assert main(["topo", "validate", EXAMPLE_SPEC]) == 0
        out = capsys.readouterr().out
        assert "OK: regional-fabric" in out
        assert "2 inter-region" in out

    def test_validate_rejects_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text(
            "name: broken\n"
            "nodes:\n  - {name: a, kind: host}\n  - {name: b, kind: switch}\n"
            "links:\n  - {a: a, b: ghost, rate: 1G, delay: 1us}\n")
        assert main(["topo", "validate", str(bad)]) == 1
        assert "unknown endpoint 'ghost'" in capsys.readouterr().err

    def test_show(self, capsys):
        assert main(["topo", "show", EXAMPLE_SPEC]) == 0
        out = capsys.readouterr().out
        assert "CORE-SYD-01" in out
        assert "wan" in out

    def test_run_with_auto_backbone_fault_and_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["topo", "run", EXAMPLE_SPEC, "--scheme", "flexpass",
                "--faults", "--ms", "1", "--size-scale", "32",
                "--cache", cache]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "backbone link CORE-SYD-01<->CORE-MEL-01 down" in first
        assert "reroutes" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "served from experiment cache" in second

    def test_run_fault_site(self, capsys):
        argv = ["topo", "run", EXAMPLE_SPEC, "--ms", "1",
                "--size-scale", "32", "--cache", "none",
                "--fault-site", "DC-MEL-01", "0.3", "0.6"]
        assert main(argv) == 0
        assert "reroutes" in capsys.readouterr().out


class TestWorkloadsCommand:
    def test_list_prints_grammar(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        for kind in ("lognormal", "pareto", "bimodal", "onoff", "matrix"):
            assert kind in out

    def test_describe_reports_rates(self, capsys):
        rc = main(["workloads", "describe", "--incast-share", "0.2",
                   "--coflow-share", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bg" in out and "incast" in out and "jobs" in out

    def test_sample_digest_deterministic(self, capsys):
        argv = ["workloads", "sample", "--flows", "400", "--digest",
                "--seed", "5", "--locality", "grouped:intra=0.8"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "sha256=" in first and "flows=400" in first

    def test_sample_show_prints_specs(self, capsys):
        rc = main(["workloads", "sample", "--flows", "20", "--show", "5",
                   "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bg" in out

    def test_sample_memory_budget_passes(self, capsys):
        rc = main(["workloads", "sample", "--flows", "5000",
                   "--check-memory", "--memory-budget-mb", "32",
                   "--seed", "2"])
        assert rc == 0
        assert "peak" in capsys.readouterr().out

    def test_incast_and_coflow_shares_must_leave_bg_room(self):
        with pytest.raises(SystemExit):
            main(["workloads", "describe", "--incast-share", "0.7",
                  "--coflow-share", "0.5"])
