"""Experiment cache: keying, invalidation, and the run_many integration.

The cache must never serve a wrong result (any config perturbation or code
salt change produces a different key), must never cache failures, and a
cached sweep must be indistinguishable from a fresh one — identical records
and identical summaries, in config order.
"""

import dataclasses
import random

import pytest

from repro.experiments.cache import (
    DEFAULT_CODE_SALT,
    ExperimentCache,
    config_key,
)
from repro.experiments.config import ExperimentConfig, QueueSettings, SchemeName
from repro.experiments.parallel import FailedResult, run_many
import repro.experiments.parallel as parallel_mod
from repro.experiments.runner import ExperimentResult, SwitchCounters
from repro.faults.plan import FaultPlan, LinkLossSpec
from repro.metrics.fct import FlowRecord, PackedFlowRecords
from repro.sim.units import MILLIS


def tiny_config(**overrides):
    base = dict(scheme=SchemeName.DCTCP, sim_time_ns=1 * MILLIS, load=0.3,
                seed=1)
    base.update(overrides)
    return ExperimentConfig(**base)


def make_records(n=100, seed=0):
    rng = random.Random(seed)
    return [
        FlowRecord(
            flow_id=i, scheme="flexpass", group=rng.choice(["legacy", "new"]),
            role=rng.choice(["bg", "fg"]), size_bytes=rng.randrange(1 << 20),
            start_ns=rng.randrange(1 << 40), fct_ns=rng.randrange(-1, 1 << 40),
            timeouts=rng.randrange(3), retransmissions=rng.randrange(5),
            credits_sent=rng.randrange(1000), credits_wasted=rng.randrange(100),
            duplicate_bytes=rng.randrange(1 << 16),
            max_reorder_bytes=rng.randrange(1 << 16),
            proactive_bytes=rng.randrange(1 << 20),
            reactive_bytes=rng.randrange(1 << 20),
        )
        for i in range(n)
    ]


class TestPackedRecords:
    def test_roundtrip_exact(self):
        records = make_records(137)
        packed = PackedFlowRecords.pack(records)
        assert len(packed) == 137
        assert packed.unpack() == records

    def test_empty(self):
        packed = PackedFlowRecords.pack([])
        assert len(packed) == 0
        assert packed.unpack() == []

    def test_pickle_roundtrip(self):
        """The worker→parent hop: packed columns must survive pickling."""
        import pickle

        records = make_records(2000)
        packed = PackedFlowRecords.pack(records)
        wired = pickle.loads(pickle.dumps(packed,
                                          protocol=pickle.HIGHEST_PROTOCOL))
        assert wired.unpack() == records


class TestConfigKey:
    def test_stable_across_equal_configs(self):
        assert config_key(tiny_config()) == config_key(tiny_config())

    def test_every_perturbation_changes_key(self):
        base = tiny_config()
        perturbed = [
            base.with_(seed=2),
            base.with_(load=0.31),
            base.with_(scheme=SchemeName.FLEXPASS),
            base.with_(sim_time_ns=base.sim_time_ns + 1),
            base.with_(queues=QueueSettings(wq=0.25)),
            base.with_(faults=FaultPlan(losses=(LinkLossSpec(rate=0.01),))),
            base.with_(clos=dataclasses.replace(base.clos,
                                                hosts_per_tor=base.clos.hosts_per_tor + 1)),
        ]
        keys = {config_key(c) for c in perturbed}
        assert config_key(base) not in keys
        assert len(keys) == len(perturbed)

    def test_salt_changes_key(self):
        cfg = tiny_config()
        assert (config_key(cfg, salt="code-v1")
                != config_key(cfg, salt="code-v2"))

    def test_env_salt_overrides_default(self, monkeypatch):
        cfg = tiny_config()
        default_key = config_key(cfg)
        monkeypatch.setenv("REPRO_CACHE_SALT", DEFAULT_CODE_SALT + "-bumped")
        assert config_key(cfg) != default_key


class TestExperimentCache:
    def _result(self, cfg, aborted=False):
        return ExperimentResult(
            config=cfg, records=make_records(40), counters=SwitchCounters(),
            events_run=1234, wall_seconds=0.1, aborted=aborted,
            abort_reason="watchdog" if aborted else "",
        )

    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cfg = tiny_config()
        assert cache.get(cfg) is None
        result = self._result(cfg)
        assert cache.put(cfg, result)
        loaded = cache.get(cfg)
        assert loaded is not None
        assert loaded.records == result.records
        assert loaded.events_run == result.events_run
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1,
                                 "skipped": 0, "write_errors": 0}

    def test_perturbed_config_misses(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cfg = tiny_config()
        cache.put(cfg, self._result(cfg))
        assert cache.get(cfg.with_(seed=99)) is None

    def test_salt_bump_invalidates(self, tmp_path):
        cfg = tiny_config()
        old = ExperimentCache(tmp_path, salt="code-v1")
        old.put(cfg, self._result(cfg))
        assert old.get(cfg) is not None
        new = ExperimentCache(tmp_path, salt="code-v2")
        assert new.get(cfg) is None

    def test_failed_result_never_cached(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cfg = tiny_config()
        failed = FailedResult(config=cfg, error="boom", traceback="tb")
        assert not cache.put(cfg, failed)
        assert cache.get(cfg) is None
        assert cache.skipped == 1

    def test_aborted_result_never_cached(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cfg = tiny_config()
        assert not cache.put(cfg, self._result(cfg, aborted=True))
        assert cache.get(cfg) is None

    def test_torn_entry_reads_as_miss(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cfg = tiny_config()
        cache.put(cfg, self._result(cfg))
        cache.path(cfg).write_bytes(b"\x80garbage")
        assert cache.get(cfg) is None

    def test_write_failure_is_loud_but_nonfatal(self, tmp_path, monkeypatch,
                                                caplog):
        """A full or read-only disk must not crash the sweep *or* pass
        silently: put() returns False, counts the incident, and warns."""
        import logging

        cache = ExperimentCache(tmp_path)
        cfg = tiny_config()

        def full_disk(key, payload):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache, "_write", full_disk)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.store"):
            assert cache.put(cfg, self._result(cfg)) is False
        assert cache.write_errors == 1
        assert cache.stores == 0
        assert "write failed" in caplog.text
        # The sweep-facing contract: run_many keeps going and still
        # returns the in-memory result.
        monkeypatch.setattr(ExperimentCache, "_write",
                            lambda self, key, payload: full_disk(key, payload))
        results = run_many([tiny_config(seed=7)], processes=1,
                           cache=str(tmp_path / "doomed"))
        assert not isinstance(results[0], FailedResult)


class TestRunManyStreaming:
    def test_order_contract_parallel(self):
        configs = [tiny_config(seed=s) for s in (5, 3, 8, 1)]
        results = run_many(configs, processes=2)
        assert len(results) == len(configs)
        for cfg, result in zip(configs, results):
            assert not isinstance(result, FailedResult)
            assert result.config.seed == cfg.seed

    def test_progress_called_for_every_config(self):
        configs = [tiny_config(seed=s) for s in (1, 2, 3)]
        calls = []
        run_many(configs, processes=1,
                 progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_cached_rerun_skips_simulation(self, tmp_path, monkeypatch):
        """Second run over the same configs must not simulate at all."""
        configs = [tiny_config(seed=s) for s in (1, 2, 3)]
        cache = ExperimentCache(tmp_path)
        first = run_many(configs, processes=1, cache=cache)
        assert cache.stores == len(configs)

        def explode(cfg):
            raise AssertionError("simulated despite cache hit")

        monkeypatch.setattr(parallel_mod, "_worker", explode)
        second = run_many(configs, processes=1, cache=cache)
        assert cache.hits == len(configs)
        for a, b in zip(first, second):
            assert a.records == b.records
            assert a.fct().avg_ms == b.fct().avg_ms

    def test_cache_accepts_directory_path(self, tmp_path):
        configs = [tiny_config(seed=1)]
        run_many(configs, processes=1, cache=str(tmp_path / "cache"))
        assert any((tmp_path / "cache").rglob("*.pkl"))

    @pytest.mark.slow
    def test_32_config_sweep_cache_round(self, tmp_path):
        """The acceptance scenario: a 32-config Clos sweep, run twice with a
        cache; the second pass is all hits with byte-identical summaries."""
        configs = [
            tiny_config(seed=seed, load=load)
            for seed in range(1, 17) for load in (0.2, 0.4)
        ]
        assert len(configs) == 32
        cache = ExperimentCache(tmp_path)
        first = run_many(configs, cache=cache)
        assert cache.stores == 32
        assert not any(isinstance(r, FailedResult) for r in first)
        second = run_many(configs, cache=cache)
        assert cache.hits == 32
        import pickle

        for a, b in zip(first, second):
            assert pickle.dumps(a.fct()) == pickle.dumps(b.fct())
            assert pickle.dumps(a.fct(small=True)) == pickle.dumps(b.fct(small=True))
            assert a.records == b.records
