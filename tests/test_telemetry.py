"""Telemetry subsystem: ring buffers, the periodic sampler, frozen series,
export formats, and the run_experiment / run_many / cache integration.

The contract under test: sampling is deterministic (same config + seed ⇒
bit-identical series), bounded (rings overwrite, never grow), cache-safe
(TelemetryConfig is part of the content key; packed series survive the
worker pickle hop and cache round-trips), and zero-cost when disabled.
"""

import json
import pickle

import pytest

from repro.experiments.cache import config_key
from repro.experiments.config import ExperimentConfig, SchemeName
from repro.experiments.parallel import FailedResult, run_many
from repro.experiments.runner import run_experiment
from repro.metrics.telemetry import (
    COUNTER,
    GAUGE,
    RingBuffer,
    TelemetryConfig,
    TelemetrySampler,
    TelemetrySeries,
    sparkline,
)
from repro.net.topology import ClosSpec
from repro.sim.engine import Simulator
from repro.sim.units import MILLIS


def tiny_cfg(**overrides):
    base = dict(
        scheme=SchemeName.FLEXPASS,
        deployment=0.5,
        load=0.4,
        sim_time_ns=2 * MILLIS,
        size_scale=16.0,
        seed=3,
        clos=ClosSpec(n_pods=2, aggs_per_pod=1, tors_per_pod=2,
                      hosts_per_tor=2),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestRingBuffer:
    def test_append_below_capacity(self):
        ring = RingBuffer(8)
        for i in range(5):
            ring.append(i * 10, float(i))
        t, v = ring.unrolled()
        assert list(t) == [0, 10, 20, 30, 40]
        assert list(v) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert ring.overwritten == 0

    def test_overwrites_oldest_when_full(self):
        ring = RingBuffer(4)
        for i in range(10):
            ring.append(i, float(i))
        assert len(ring) == 4
        assert ring.overwritten == 6
        t, v = ring.unrolled()
        assert list(t) == [6, 7, 8, 9]
        assert list(v) == [6.0, 7.0, 8.0, 9.0]

    def test_unrolled_is_a_copy(self):
        ring = RingBuffer(4)
        ring.append(1, 1.0)
        t, _ = ring.unrolled()
        t[0] = 999
        assert ring.unrolled()[0][0] == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestRepeatingEvent:
    def test_first_tick_at_now_plus_period(self):
        sim = Simulator()
        hits = []
        sim.every(100, lambda: hits.append(sim.now), until=450)
        sim.run()
        assert hits == [100, 200, 300, 400]

    def test_until_is_inclusive(self):
        sim = Simulator()
        hits = []
        sim.every(100, lambda: hits.append(sim.now), until=300)
        sim.run()
        assert hits == [100, 200, 300]

    def test_cancel_stops_future_ticks(self):
        sim = Simulator()
        hits = []
        ev = sim.every(10, lambda: hits.append(sim.now))
        sim.at(35, ev.cancel)
        sim.at(100, lambda: None)
        sim.run()
        assert hits == [10, 20, 30]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.every(10, lambda: None, until=30)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_unbounded_runs_until_calendar_drains(self):
        # No until: the repeating event keeps the calendar non-empty, so a
        # bounded run() is required; it must tick exactly horizon/period
        # times.
        sim = Simulator()
        hits = []
        sim.every(7, lambda: hits.append(sim.now))
        sim.run(until=70)
        assert hits == list(range(7, 71, 7))


class TestSampler:
    def test_gauge_samples_instantaneous_value(self):
        sim = Simulator()
        state = {"v": 0.0}
        sampler = TelemetrySampler(sim, interval_ns=100, until_ns=300)
        sampler.add_gauge("g", lambda: state["v"])
        sampler.start()
        sim.at(150, lambda: state.update(v=5.0))
        sim.run()
        series = sampler.freeze()
        assert series.times("g") == [100, 200, 300]
        assert series.values("g") == [0.0, 5.0, 5.0]
        assert series.kind("g") == GAUGE

    def test_counter_stores_scaled_deltas(self):
        sim = Simulator()
        state = {"v": 0}
        sampler = TelemetrySampler(sim, interval_ns=100, until_ns=300)
        sampler.add_counter("c", lambda: state["v"], scale=0.5)
        sampler.start()
        sim.at(50, lambda: state.update(v=10))
        sim.at(250, lambda: state.update(v=16))
        sim.run()
        series = sampler.freeze()
        assert series.values("c") == [5.0, 0.0, 3.0]
        assert series.kind("c") == COUNTER

    def test_counter_baseline_primed_at_start(self):
        """A counter that is already non-zero when start() runs must not
        report its whole history as the first tick's delta."""
        sim = Simulator()
        state = {"v": 1_000_000}
        sampler = TelemetrySampler(sim, interval_ns=100, until_ns=100)
        sampler.add_counter("c", lambda: state["v"])
        sampler.start()
        sim.run()
        assert sampler.freeze().values("c") == [0.0]

    def test_counter_map_labels_appear_dynamically(self):
        sim = Simulator()
        state = {"a": 0}
        sampler = TelemetrySampler(sim, interval_ns=100, until_ns=300)

        def fn():
            out = {"a": float(state["a"])}
            if sim.now >= 200:
                out["b"] = 7.0
            return out

        sampler.add_counter_map(fn, suffix=".rate", scale=2.0)
        sampler.start()
        sim.at(150, lambda: state.update(a=3))
        sim.run()
        series = sampler.freeze()
        assert series.values("a.rate") == [0.0, 6.0, 0.0]
        # label "b" starts from an implicit 0 baseline when it appears
        assert series.times("b.rate") == [200, 300]
        assert series.values("b.rate") == [14.0, 0.0]

    def test_map_respects_max_series_cap(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval_ns=100, until_ns=100)
        sampler.add_gauge_map(
            lambda: {f"s{i}": 1.0 for i in range(10)}, max_series=3)
        sampler.start()
        sim.run()
        series = sampler.freeze()
        assert len(series) == 3
        assert sampler._maps[0].dropped_series == 7

    def test_duplicate_series_name_rejected(self):
        sampler = TelemetrySampler(Simulator())
        sampler.add_gauge("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.add_counter("x", lambda: 0.0)

    def test_probe_added_after_start_still_ticks(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval_ns=100, until_ns=300)
        sampler.start()
        sim.at(150, lambda: sampler.add_gauge("late", lambda: 2.0))
        sim.run()
        assert sampler.freeze().values("late") == [2.0, 2.0]

    def test_ring_bounds_long_runs(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval_ns=10, max_samples=16,
                                   until_ns=10_000)
        sampler.add_gauge("g", lambda: float(sim.now))
        sampler.start()
        sim.run()
        series = sampler.freeze()
        assert series.num_samples("g") == 16
        assert series.times("g") == list(range(9850, 10_001, 10))
        assert series.overwritten["g"] == 1000 - 16


class TestSeries:
    def _make(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval_ns=100, until_ns=500)
        sampler.add_gauge("g", lambda: float(sim.now) / 100)
        sampler.add_counter("c", lambda: float(sim.now))
        sampler.start()
        sim.run()
        return sampler.freeze()

    def test_aligned_values_fills_missing_bins(self):
        series = TelemetrySeries(
            100, {"s": GAUGE},
            {"s": __import__("array").array("q", [200, 400])},
            {"s": __import__("array").array("d", [2.0, 4.0])}, {})
        assert series.aligned_values("s", 500) == [0.0, 2.0, 0.0, 4.0, 0.0]

    def test_pickle_roundtrip_exact(self):
        series = self._make()
        wired = pickle.loads(pickle.dumps(series,
                                          protocol=pickle.HIGHEST_PROTOCOL))
        assert wired == series
        assert wired.names() == series.names()
        assert wired.kind("c") == COUNTER

    def test_json_export_roundtrip(self, tmp_path):
        series = self._make()
        path = tmp_path / "t.json"
        series.write_json(path)
        obj = json.loads(path.read_text())
        assert obj["interval_ns"] == 100
        assert obj["series"]["g"]["values"] == series.values("g")
        assert obj["series"]["c"]["kind"] == COUNTER

    def test_csv_export_long_format(self, tmp_path):
        import csv

        series = self._make()
        path = tmp_path / "t.csv"
        series.write_csv(path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["series", "kind", "time_ns", "value"]
        data = [r for r in rows[1:] if r[0] == "g"]
        assert len(data) == series.num_samples("g")
        assert [int(r[2]) for r in data] == series.times("g")
        assert [float(r[3]) for r in data] == series.values("g")

    def test_summary_rows_and_sparkline(self):
        series = self._make()
        rows = series.summary_rows()
        assert [r[0] for r in rows] == ["g", "c"]
        assert all(len(r) == 5 for r in rows)
        assert len(series.sparkline("g", width=5)) == 5

    def test_sparkline_function(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(1000)), width=60)) == 60


class TestConfigValidation:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TelemetryConfig(interval_ns=0)

    def test_rejects_bad_modes(self):
        with pytest.raises(ValueError):
            TelemetryConfig(ports="everything")
        with pytest.raises(ValueError):
            TelemetryConfig(flows="per-packet")


class TestExperimentIntegration:
    def test_run_experiment_ships_series(self):
        cfg = tiny_cfg(telemetry=TelemetryConfig(interval_ns=100_000))
        res = run_experiment(cfg)
        series = res.telemetry
        assert series is not None
        names = series.names()
        assert any(n.startswith("port.") and n.endswith(".depth_bytes")
                   for n in names)
        assert any(n.startswith("link.") and n.endswith(".util")
                   for n in names)
        assert "pool.in_use" in series
        goodput = [n for n in names if n.endswith(".goodput_bps")]
        assert goodput, f"no goodput series in {names[:10]}..."
        assert any(sum(series.values(n)) > 0 for n in goodput)

    def test_no_telemetry_field_when_unconfigured(self):
        res = run_experiment(tiny_cfg())
        assert res.telemetry is None

    def test_disabled_config_means_no_series(self):
        cfg = tiny_cfg(telemetry=TelemetryConfig(enabled=False))
        assert run_experiment(cfg).telemetry is None

    def test_sampling_is_deterministic(self):
        # pool=False: the pool gauges read the process-global allocator,
        # whose free-list length depends on what ran earlier in the
        # process; every sim-derived series must be bit-identical.
        cfg = tiny_cfg(telemetry=TelemetryConfig(interval_ns=100_000,
                                                 pool=False))
        a = run_experiment(cfg).telemetry
        b = run_experiment(cfg).telemetry
        assert a == b

    def test_telemetry_does_not_perturb_results(self):
        """Sampling must be an observer: flow records are bit-identical
        with and without it."""
        plain = run_experiment(tiny_cfg())
        sampled = run_experiment(tiny_cfg(telemetry=TelemetryConfig()))
        assert plain.records == sampled.records
        assert plain.completed == sampled.completed

    def test_config_key_includes_telemetry(self):
        base = tiny_cfg()
        keys = {
            config_key(base),
            config_key(tiny_cfg(telemetry=TelemetryConfig())),
            config_key(tiny_cfg(telemetry=TelemetryConfig(
                interval_ns=50_000))),
            config_key(tiny_cfg(telemetry=TelemetryConfig(ports="all"))),
        }
        assert len(keys) == 4

    def test_run_many_and_cache_roundtrip(self, tmp_path):
        cfg = tiny_cfg(telemetry=TelemetryConfig(interval_ns=100_000))
        fresh = run_many([cfg], processes=2, cache=str(tmp_path))
        assert not isinstance(fresh[0], FailedResult)
        assert fresh[0].telemetry is not None
        cached = run_many([cfg], processes=2, cache=str(tmp_path))
        assert cached[0].telemetry == fresh[0].telemetry
        assert cached[0].records == fresh[0].records
