"""Failure-injection tests: targeted packet drops and recovery paths.

The paper's §4.3 "Handling proactive data packet losses" path (switch
failures, i.e., non-congestion loss) is hard to trigger organically on a
clean fabric, so these tests inject drops at the link layer — via the
library's :class:`repro.faults.LossyLink`, so test and experiment fault
paths cannot drift — and verify each recovery mechanism fires and the
flow still completes exactly once.
"""

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.faults import splice_lossy as _splice
from repro.net.packet import PacketKind
from repro.net.topology import DumbbellSpec, build_dumbbell
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.dctcp import DctcpParams, DctcpReceiver, DctcpSender

from tests.util import Completions


def setup_flexpass(size=1 * MB, **param_overrides):
    sim = Simulator()
    db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings(wq=0.5)),
                        DumbbellSpec(n_pairs=1))
    done = Completions()
    spec = FlowSpec(1, db.senders[0], db.receivers[0], size, 0,
                    scheme="flexpass", group="new")
    stats = FlowStats()
    params = FlexPassParams(
        max_credit_rate_bps=10 * GBPS * 0.5 * CREDIT_PER_DATA,
        **param_overrides,
    )
    FlexPassReceiver(sim, spec, stats, params, on_complete=done)
    sender = FlexPassSender(sim, spec, stats, params)
    sim.at(0, sender.start)
    return sim, db, stats, done, sender


class TestProactiveLossRecovery:
    def test_single_proactive_drop_recovered_by_dupacks(self):
        """A mid-flow proactive loss is detected via SACK dupacks and
        retransmitted on a later credit — no timer involved."""
        sim, db, stats, done, sender = setup_flexpass()
        state = {"dropped": False}

        def drop_one(pkt):
            if (pkt.kind == PacketKind.DATA and pkt.subflow == 0
                    and pkt.seq == 20 and not state["dropped"]):
                state["dropped"] = True
                return True
            return False

        _splice(db.bottleneck, drop_one)
        sim.run(until=60 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 1 * MB
        assert state["dropped"]
        assert stats.retransmissions >= 1
        assert stats.timeouts == 0  # dupack recovery, not the timer

    def test_tail_proactive_drop_recovered_by_timer(self):
        """Dropping the *last* proactive packet leaves no later ACKs for
        dupack detection: the §4.3 recovery timer must fire."""
        sim, db, stats, done, sender = setup_flexpass(size=1 * MB)
        n_seg = 1 * MB // 1500 + 1
        state = {"dropped": 0}

        def drop_tail(pkt):
            # Drop every proactive copy of the last flow segment a few times.
            if (pkt.kind == PacketKind.DATA and pkt.subflow == 0
                    and pkt.flow_seq == n_seg - 1 and state["dropped"] < 1):
                state["dropped"] += 1
                return True
            return False

        _splice(db.bottleneck, drop_tail)
        sim.run(until=100 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 1 * MB

    def test_lost_credit_request_is_retried(self):
        # Proactive-only ablation: without the reactive sub-flow the flow
        # cannot make progress until the retried credit request lands.
        sim, db, stats, done, sender = setup_flexpass(
            size=200 * KB, enable_reactive=False)
        state = {"dropped": 0}

        def drop_request(pkt):
            if pkt.kind == PacketKind.CREDIT_REQUEST and state["dropped"] < 1:
                state["dropped"] += 1
                return True
            return False

        _splice(db.senders[0].nic_port, drop_request)
        sim.run(until=100 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.request_retries >= 1

    def test_random_loss_storm_still_completes_exactly_once(self):
        """5% random loss on the bottleneck in both directions: everything
        still completes, and reassembly never double-delivers."""
        import random

        rng = random.Random(42)
        sim, db, stats, done, sender = setup_flexpass(size=1 * MB)

        def drop_random(pkt):
            return pkt.kind == PacketKind.DATA and rng.random() < 0.05

        _splice(db.bottleneck, drop_random)
        sim.run(until=200 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 1 * MB  # exactly once

    def test_ack_losses_do_not_deadlock(self):
        """Dropping 10% of ACKs: cumulative ACKs cover the holes."""
        import random

        rng = random.Random(7)
        sim, db, stats, done, sender = setup_flexpass(size=1 * MB)

        def drop_acks(pkt):
            return pkt.kind == PacketKind.ACK and rng.random() < 0.10

        _splice(db.receivers[0].nic_port, drop_acks)
        sim.run(until=200 * MILLIS)
        assert done.flow_ids == {1}
        assert sender.all_acked  # sender converged despite lost ACKs


class TestDctcpUnderLoss:
    def test_dctcp_survives_random_loss(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 1 * MB, 0,
                        scheme="dctcp")
        stats = FlowStats()
        DctcpReceiver(sim, spec, stats, DctcpParams(), on_complete=done)
        sender = DctcpSender(sim, spec, stats, DctcpParams())
        sim.at(0, sender.start)
        import random

        rng = random.Random(3)
        _splice(db.bottleneck,
                lambda pkt: pkt.kind == PacketKind.DATA and rng.random() < 0.03)
        sim.run(until=400 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 1 * MB
        assert stats.retransmissions > 0
