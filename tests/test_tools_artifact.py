"""Tests for the artifact-style tools (run_simulations / generate_figure)."""

import csv
import importlib.util
import os
import subprocess
import sys

import pytest

from repro.experiments.config import SchemeName
from repro.experiments.parallel import run_many
from repro.experiments.sweep import default_sweep_config
from repro.net.topology import ClosSpec
from repro.sim.units import MILLIS

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_tool(name):
    path = os.path.join(REPO, "tools", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestParallelRunner:
    def _cfgs(self, n=2):
        base = default_sweep_config(
            sim_time_ns=2 * MILLIS, size_scale=16.0,
            clos=ClosSpec(n_pods=2, aggs_per_pod=1, tors_per_pod=2,
                          hosts_per_tor=2),
        )
        return [base.with_(scheme=SchemeName.FLEXPASS, deployment=d, seed=i)
                for i, d in enumerate([0.5] * n)]

    def test_serial_path(self):
        results = run_many(self._cfgs(2), processes=1)
        assert len(results) == 2
        assert all(r.completed > 0 for r in results)

    def test_results_match_direct_execution(self):
        from repro.experiments.runner import run_experiment

        cfgs = self._cfgs(1)
        direct = run_experiment(cfgs[0])
        pooled = run_many(cfgs, processes=1)[0]
        assert [(r.flow_id, r.fct_ns) for r in direct.records] == \
               [(r.flow_id, r.fct_ns) for r in pooled.records]


class TestArtifactGrid:
    def test_grid_covers_all_experiments(self):
        tool = _load_tool("run_simulations")
        base = default_sweep_config()
        grid = tool.build_grid(base)
        ids = [eid for eid, _ in grid]
        assert len(ids) == len(set(ids))
        # E1: 4 schemes x 4 nonzero points + 1 shared baseline
        assert sum(1 for i in ids if i.startswith("e1_")) == 17
        # E2: 2 schemes x 4 points + baseline
        assert sum(1 for i in ids if i.startswith("e2_")) == 9
        # E3: 3 loads x (2 schemes x 4 points + baseline)
        assert sum(1 for i in ids if i.startswith("e3_")) == 27

    def test_end_to_end_artifact_flow(self, tmp_path):
        """run_simulations --only e1_flexpass_100 then generate_figure."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        out = tmp_path / "results"
        run = subprocess.run(
            [sys.executable, os.path.join(REPO, "tools", "run_simulations.py"),
             "--out", str(out), "--ms", "2", "--size-scale", "16",
             "--only", "e1_flexpass_100", "e1_dctcp_000"],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert run.returncode == 0, run.stderr
        assert (out / "index.csv").exists()
        assert (out / "fct_e1_flexpass_100.csv").exists()
        with open(out / "fct_e1_flexpass_100.csv") as f:
            rows = list(csv.DictReader(f))
        assert rows and all("fct_ns" in r for r in rows)

        gen = subprocess.run(
            [sys.executable, os.path.join(REPO, "tools", "generate_figure.py"),
             "--results", str(out)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert gen.returncode == 0, gen.stderr
        assert (out / "fig10.csv").exists()
        assert "fig10" in gen.stdout
