"""Fast smoke tests for the per-figure harness (tiny durations).

The benchmarks run these at meaningful scale; here we only verify the
plumbing: scenarios build, run, and produce well-formed series.
"""

import pytest

from repro.experiments.figures import (
    ThroughputFigure,
    fig01a_expresspass_vs_dctcp,
    fig01b_homa_vs_dctcp,
    fig07_subflow_throughput,
    fig08_incast,
    fig09_coexistence,
)


class TestThroughputFigureMath:
    def test_share_sums_to_one(self):
        fig = ThroughputFigure("t", 1.0, {"a": [5.0, 5.0], "b": [5.0, 5.0]}, 10.0)
        assert fig.share("a") + fig.share("b") == pytest.approx(1.0)

    def test_empty_series_share_zero(self):
        fig = ThroughputFigure("t", 1.0, {"a": [0.0], "b": [0.0]}, 10.0)
        assert fig.share("a") == 0.0

    def test_rows_cover_all_categories(self):
        fig = ThroughputFigure("t", 1.0, {"x": [1.0], "y": [2.0]}, 10.0)
        assert [r[0] for r in fig.rows()] == ["x", "y"]


class TestFigureScenarios:
    def test_fig01a_runs(self):
        fig = fig01a_expresspass_vs_dctcp(duration_ms=5, flow_mb=10)
        assert set(fig.series) == {"dctcp", "expresspass"}
        assert all(len(s) == 5 for s in fig.series.values())
        assert fig.share("expresspass") > fig.share("dctcp")

    def test_fig01b_runs(self):
        fig = fig01b_homa_vs_dctcp(duration_ms=5, n_each=4, flow_mb=2)
        assert set(fig.series) == {"dctcp", "homa"}

    @pytest.mark.parametrize("scenario", ["one_flexpass", "two_flexpass",
                                          "dctcp_vs_flexpass"])
    def test_fig07_scenarios_run(self, scenario):
        fig = fig07_subflow_throughput(scenario, duration_ms=5)
        assert "proactive" in fig.series
        total_share = sum(fig.share(c) for c in fig.series)
        assert total_share == pytest.approx(1.0)

    def test_fig07_rejects_unknown(self):
        with pytest.raises(ValueError):
            fig07_subflow_throughput("bogus")

    def test_fig08_structure(self):
        fig = fig08_incast(n_flows_list=(8,), response_kb=16)
        assert fig.n_flows == [8]
        for scheme in ("dctcp", "expresspass", "flexpass"):
            assert len(fig.tail_fct_ms[scheme]) == 1
            assert fig.tail_fct_ms[scheme][0] > 0

    def test_fig09_rejects_unknown(self):
        with pytest.raises(ValueError):
            fig09_coexistence("bogus")
