"""Unit + property tests for sequence-space bookkeeping."""

from hypothesis import given, settings, strategies as st

from repro.transports.sequencing import ReceiveScoreboard, SenderScoreboard


class TestReceiveScoreboard:
    def test_in_order_advances_cum(self):
        rb = ReceiveScoreboard()
        for i in range(5):
            assert rb.add(i)
        assert rb.cum == 5
        assert rb.sack() == ()

    def test_out_of_order_fills_holes(self):
        rb = ReceiveScoreboard()
        rb.add(0)
        rb.add(2)
        rb.add(3)
        assert rb.cum == 1
        assert rb.sack() == (2, 3)
        rb.add(1)
        assert rb.cum == 4
        assert rb.sack() == ()

    def test_duplicates_counted_not_double_delivered(self):
        rb = ReceiveScoreboard()
        assert rb.add(0)
        assert not rb.add(0)
        rb.add(5)
        assert not rb.add(5)
        assert rb.duplicates == 2
        assert rb.received_count() == 2

    def test_sack_reports_highest_when_capped(self):
        rb = ReceiveScoreboard(sack_limit=3)
        for seq in (10, 2, 30, 4, 20):
            rb.add(seq)
        assert rb.sack() == (10, 20, 30)

    @given(st.lists(st.integers(0, 50), max_size=120))
    def test_property_cum_is_first_hole(self, seqs):
        rb = ReceiveScoreboard()
        seen = set()
        for s in seqs:
            rb.add(s)
            seen.add(s)
        expected_cum = 0
        while expected_cum in seen:
            expected_cum += 1
        assert rb.cum == expected_cum
        assert rb.received_count() == len(seen)


class TestSenderScoreboard:
    def test_cumulative_ack_clears_outstanding(self):
        sb = SenderScoreboard()
        for i in range(5):
            sb.on_send(i, 0)
        acked, lost = sb.on_ack(3, ())
        assert acked == [0, 1, 2]
        assert lost == []
        assert sb.in_flight == 2

    def test_sack_clears_individual(self):
        sb = SenderScoreboard()
        for i in range(5):
            sb.on_send(i, 0)
        acked, _ = sb.on_ack(0, (2, 4))
        assert acked == [2, 4]
        assert sb.in_flight == 3

    def test_dupack_loss_detection(self):
        sb = SenderScoreboard(dupthresh=3)
        for i in range(6):
            sb.on_send(i, 0)
        # seq 0 is missing; acks with news above it accumulate
        sb.on_ack(0, (1,))
        sb.on_ack(0, (2,))
        _, lost = sb.on_ack(0, (3,))
        assert lost == [0]
        assert sb.in_flight == 2  # 4, 5 still out

    def test_cum_past_lost_seq_reports_it_acked(self):
        """Regression: a seq declared lost then covered by a later
        cumulative ACK (its retransmission landed) must surface as newly
        acked, or the sender deadlocks waiting for it forever."""
        sb = SenderScoreboard(dupthresh=3)
        for i in range(6):
            sb.on_send(i, 0)
        sb.on_ack(0, (1,))
        sb.on_ack(0, (2,))
        _, lost = sb.on_ack(0, (3,))
        assert lost == [0]
        acked, _ = sb.on_ack(4, ())
        assert 0 in acked
        assert sb.is_acked(0)

    def test_sack_of_lost_seq_reports_it_acked(self):
        sb = SenderScoreboard(dupthresh=1)
        sb.on_send(0, 0)
        sb.on_send(1, 0)
        _, lost = sb.on_ack(0, (1,))
        assert lost == [0]
        # the "lost" packet's ack arrives late (spurious detection)
        acked, _ = sb.on_ack(0, (0,))
        assert acked == [0]

    def test_duplicate_acks_not_doubly_reported(self):
        sb = SenderScoreboard()
        sb.on_send(0, 0)
        acked1, _ = sb.on_ack(1, ())
        acked2, _ = sb.on_ack(1, ())
        assert acked1 == [0]
        assert acked2 == []

    def test_declare_all_lost(self):
        sb = SenderScoreboard()
        for i in range(4):
            sb.on_send(i, 0)
        assert sb.declare_all_lost() == [0, 1, 2, 3]
        assert sb.in_flight == 0

    def test_remove_implicit_ack(self):
        sb = SenderScoreboard()
        sb.on_send(7, 0)
        assert sb.remove(7)
        assert not sb.remove(7)
        assert sb.in_flight == 0
        assert sb.is_acked(7)

    def test_oldest_outstanding(self):
        sb = SenderScoreboard()
        assert sb.oldest_outstanding() is None
        sb.on_send(5, 0)
        sb.on_send(3, 0)
        assert sb.oldest_outstanding() == 3

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.lists(st.integers(0, 30), max_size=5)),
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_property_no_seq_both_lost_and_outstanding(self, acks):
        """Whatever ACK stream arrives, a seq is never simultaneously
        outstanding and reported lost, and ack reports are unique."""
        sb = SenderScoreboard(dupthresh=3)
        n = 31
        for i in range(n):
            sb.on_send(i, 0)
        reported_acked = set()
        reported_lost = set()
        for cum, sack in acks:
            acked, lost = sb.on_ack(cum, sack)
            for s in acked:
                assert s not in reported_acked, "double-acked"
                reported_acked.add(s)
            for s in lost:
                reported_lost.add(s)
                assert s not in sb._outstanding
        for s in reported_acked:
            assert sb.is_acked(s)
