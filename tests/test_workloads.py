"""Unit + property tests for workload generation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.topology import ClosSpec, build_clos
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import GBPS, KB, MILLIS
from repro.workloads.arrivals import PoissonTraffic
from repro.workloads.deployment import DeploymentPlan
from repro.workloads.distributions import (
    CACHEFOLLOWER,
    DATAMINING,
    HADOOP,
    WEBSEARCH,
    EmpiricalCdf,
    workload_cdf,
)
from repro.workloads.incast import IncastTraffic

from tests.test_net_port_topology import single_queue_factory


def small_clos(sim=None):
    return build_clos(sim or Simulator(), single_queue_factory,
                      ClosSpec(n_pods=2, aggs_per_pod=1, tors_per_pod=2,
                               hosts_per_tor=2))


class TestEmpiricalCdf:
    def test_samples_within_support(self):
        rng = np.random.default_rng(1)
        for cdf in (WEBSEARCH, DATAMINING, CACHEFOLLOWER, HADOOP):
            lo = cdf._xs[0]
            hi = cdf._xs[-1]
            for _ in range(200):
                s = cdf.sample(rng)
                assert lo <= s <= hi

    def test_scale_divides_sizes(self):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        a = WEBSEARCH.sample(rng1, scale=1.0)
        b = WEBSEARCH.sample(rng2, scale=10.0)
        assert b == max(1, int(a / 10))

    def test_median_matches_cdf(self):
        """Empirical median of many samples should sit where CDF=0.5."""
        rng = np.random.default_rng(3)
        samples = WEBSEARCH.sample_many(rng, 4000)
        med = float(np.median(samples))
        assert 0.35 < WEBSEARCH.fraction_below(med) < 0.65

    def test_mean_is_tail_dominated_for_websearch(self):
        # >50% of web-search flows are small but the mean is hundreds of kB
        assert WEBSEARCH.fraction_below(100 * KB) > 0.5
        assert WEBSEARCH.mean_bytes() > 200 * KB

    def test_datamining_half_single_packet(self):
        assert DATAMINING.fraction_below(1000) >= 0.49

    def test_mean_scales(self):
        assert WEBSEARCH.mean_bytes(scale=2.0) == pytest.approx(
            WEBSEARCH.mean_bytes() / 2.0
        )

    def test_workload_lookup(self):
        assert workload_cdf("websearch") is WEBSEARCH
        with pytest.raises(ValueError):
            workload_cdf("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([(100, 0.0)])  # too few
        with pytest.raises(ValueError):
            EmpiricalCdf([(100, 0.0), (50, 1.0)])  # not increasing
        with pytest.raises(ValueError):
            EmpiricalCdf([(100, 0.5), (200, 1.0)])  # doesn't start at 0
        with pytest.raises(ValueError):
            EmpiricalCdf([(100, 0.0), (200, 0.9)])  # doesn't end at 1

    @given(st.floats(0.001, 0.999))
    def test_property_inverse_is_monotone(self, u):
        assert WEBSEARCH._inverse(u) <= WEBSEARCH._inverse(min(u + 0.0005, 1.0))


def _quadrature_mean(cdf: EmpiricalCdf, steps: int) -> float:
    """Midpoint quadrature over the inverse CDF (the pre-closed-form
    estimator, kept as the regression reference)."""
    total = 0.0
    for i in range(len(cdf._ys) - 1):
        y0, y1 = cdf._ys[i], cdf._ys[i + 1]
        if y1 == y0:
            continue
        for k in range(steps):
            u = y0 + (y1 - y0) * (k + 0.5) / steps
            total += cdf._inverse(u) * (y1 - y0) / steps
    return total


class TestMeanBytesClosedForm:
    """The log-linear segment mean is exact: quadrature must converge TO it."""

    @pytest.mark.parametrize("name", ["websearch", "datamining",
                                      "cachefollower", "hadoop"])
    def test_matches_high_resolution_quadrature(self, name):
        cdf = workload_cdf(name)
        exact = cdf.mean_bytes()
        hi_res = _quadrature_mean(cdf, 20_000)
        # 20k midpoint steps per segment: well past the old 200-step
        # estimator, tight enough to certify the closed form.
        assert exact == pytest.approx(hi_res, rel=1e-8)

    @pytest.mark.parametrize("name", ["websearch", "datamining",
                                      "cachefollower", "hadoop"])
    def test_quadrature_converges_toward_closed_form(self, name):
        """Refining the quadrature must shrink its distance to the closed
        form — the signature of an exact value, not a third estimate."""
        cdf = workload_cdf(name)
        exact = cdf.mean_bytes()
        err_coarse = abs(_quadrature_mean(cdf, 50) - exact)
        err_fine = abs(_quadrature_mean(cdf, 2_000) - exact)
        assert err_fine < err_coarse

    @pytest.mark.parametrize("name", ["websearch", "datamining",
                                      "cachefollower", "hadoop"])
    def test_lambda_shift_vs_old_estimator(self, name):
        """The offered-load fix: λ = offered / mean moves by the mean's
        correction. The old 200-step estimate was close but systematically
        off; the shift must be small (sanity) and nonzero (the bug was
        real)."""
        cdf = workload_cdf(name)
        exact = cdf.mean_bytes()
        old = _quadrature_mean(cdf, 200)
        lam_ratio = old / exact  # λ_new / λ_old at fixed offered load
        assert lam_ratio != 1.0
        assert abs(lam_ratio - 1.0) < 1e-3

    def test_arrival_rate_uses_realized_mean(self):
        """λ must divide by the realized (truncated-and-clamped) mean of
        what ``sample`` actually returns, not the analytic mean of the
        continuous law — the offered-load bias fix."""
        clos = small_clos()
        rng = RngRegistry(1).stream("arrivals")
        traffic = PoissonTraffic(clos.hosts, DATAMINING, 0.6, 10 * GBPS,
                                 MILLIS, rng, size_scale=4.0)
        lam = traffic.arrival_rate_per_ns()
        mean_bits = DATAMINING.realized_mean_bytes(4.0) * 8.0
        expected = 0.6 * len(clos.hosts) * 10 * GBPS / mean_bits / 1e9
        assert lam == pytest.approx(expected, rel=1e-12)


def _realized_grid_oracle(cdf: EmpiricalCdf, scale: float,
                          n: int = 1 << 22) -> float:
    """Midpoint quadrature of ``E[max(1, int(X / scale))]`` over the
    inverse CDF — independent of both the layer-cake sum in
    ``realized_mean`` and the branchy ``sample_many`` path. For a monotone
    integrand the midpoint-sum error is bounded by ``(max - min) / n``,
    i.e. relative error well under 1e-4 for every pair tested below."""
    u = (np.arange(n) + 0.5) / n
    log_sizes = np.interp(u, cdf._ys, cdf._log_xs)
    sizes = np.maximum(1, (np.exp(log_sizes) / scale).astype(np.int64))
    return float(np.mean(sizes))


class TestRealizedMean:
    """``E[max(1, int(X / scale))]`` — the divisor behind arrival rates."""

    @pytest.mark.parametrize("name", ["websearch", "datamining",
                                      "cachefollower", "hadoop"])
    @pytest.mark.parametrize("scale", [1.0, 8.0, 4096.0])
    def test_matches_quadrature_oracle(self, name, scale):
        cdf = workload_cdf(name)
        assert cdf.realized_mean_bytes(scale) == pytest.approx(
            _realized_grid_oracle(cdf, scale), rel=2e-4)

    @pytest.mark.parametrize("name", ["websearch", "cachefollower"])
    def test_matches_monte_carlo(self, name):
        """The closed form must sit within four standard errors of what
        the actual sampler returns — ties the math to ``sample``'s
        contract rather than to another formula."""
        cdf = workload_cdf(name)
        scale = 4096.0
        sizes = np.asarray(
            cdf.sample_many(np.random.default_rng(42), 200_000, scale=scale),
            dtype=float)
        se = float(sizes.std()) / math.sqrt(len(sizes))
        assert abs(cdf.realized_mean_bytes(scale) - float(sizes.mean())) \
            < 4.0 * se

    def test_clamp_inflates_small_flow_workloads(self):
        """Where ``scale`` pushes mass toward 1-byte flows the clamp
        inflates the realized mean above the analytic one (cachefollower
        at scale 4096: ~+1.1%); at benign scales truncation deflates it
        by about half a byte instead."""
        assert CACHEFOLLOWER.realized_mean_bytes(4096.0) > \
            CACHEFOLLOWER.mean_bytes(4096.0) * 1.01
        r8 = WEBSEARCH.realized_mean_bytes(8.0)
        assert r8 < WEBSEARCH.mean_bytes(8.0)
        assert r8 == pytest.approx(WEBSEARCH.mean_bytes(8.0) - 0.5, abs=0.05)

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            WEBSEARCH.realized_mean_bytes(0.0)
        with pytest.raises(ValueError):
            WEBSEARCH.realized_mean_bytes(-1.0)

    def test_offered_load_regression_nominal_vs_empirical(self):
        """The old λ divided by the analytic mean, so the *empirical* load
        (λ x realized bytes-per-flow) overshot the nominal wherever the
        clamp bites. The fixed λ realizes the nominal load exactly."""
        clos = small_clos()
        scale = 4096.0
        rng = RngRegistry(1).stream("arrivals")
        traffic = PoissonTraffic(clos.hosts, CACHEFOLLOWER, 0.6, 10 * GBPS,
                                 MILLIS, rng, size_scale=scale)
        capacity = len(clos.hosts) * 10 * GBPS / 8.0 / 1e9  # bytes/ns
        realized = CACHEFOLLOWER.realized_mean_bytes(scale)
        empirical = traffic.arrival_rate_per_ns() * realized / capacity
        assert empirical == pytest.approx(0.6, rel=1e-9)
        lam_old = 0.6 * capacity / CACHEFOLLOWER.mean_bytes(scale)
        overshoot = lam_old * realized / capacity
        assert overshoot > 0.6 * 1.01  # the bug was worth fixing


class TestSampleManyVectorized:
    @pytest.mark.parametrize("name", ["websearch", "datamining",
                                      "cachefollower", "hadoop"])
    @pytest.mark.parametrize("scale", [1.0, 4.0])
    def test_matches_scalar_path(self, name, scale):
        """Batch sampling must consume the identical RNG stream as the
        scalar loop and (over this horizon) return the identical sizes."""
        cdf = workload_cdf(name)
        r_vec = np.random.default_rng(11)
        r_scalar = np.random.default_rng(11)
        batch = cdf.sample_many(r_vec, 5_000, scale=scale)
        loop = [cdf.sample(r_scalar, scale) for _ in range(5_000)]
        assert batch == loop
        # Both paths must leave the generator at the same stream position.
        assert r_vec.random() == r_scalar.random()

    def test_returns_python_ints(self):
        sizes = WEBSEARCH.sample_many(np.random.default_rng(0), 10)
        assert all(type(s) is int for s in sizes)

    def test_empty_batch(self):
        rng = np.random.default_rng(0)
        assert WEBSEARCH.sample_many(rng, 0) == []
        # A zero-size batch must not consume any stream.
        assert rng.random() == np.random.default_rng(0).random()

    def test_extreme_scale_clamps_to_one(self):
        sizes = WEBSEARCH.sample_many(np.random.default_rng(2), 100,
                                      scale=1e12)
        assert sizes == [1] * 100


@st.composite
def _cdf_points(draw):
    """Random but valid EmpiricalCdf knot lists.

    Zero increments produce flat (zero-mass) segments, including runs of
    them at the very start of the CDF — the ``u`` below/at the first knot
    regime that the vectorized path special-cases."""
    n = draw(st.integers(2, 6))
    xs = sorted(draw(st.lists(st.integers(1, 10**7), min_size=n,
                              max_size=n, unique=True)))
    incs = draw(st.lists(st.integers(0, 10), min_size=n - 1,
                         max_size=n - 1))
    if sum(incs) == 0:
        incs[-1] = 1
    total = sum(incs)
    acc, raw = 0, [0]
    for inc in incs:
        acc += inc
        raw.append(acc)
    ys = [r / total for r in raw]
    return list(zip(xs, ys))


class TestSampleManyProperty:
    """``sample_many`` vs the scalar ``sample`` loop on arbitrary CDFs."""

    @given(points=_cdf_points(), scale=st.floats(0.5, 1e6),
           seed=st.integers(0, 2**32 - 1), n=st.integers(1, 300))
    @settings(max_examples=60, deadline=None)
    def test_property_batch_matches_scalar(self, points, scale, seed, n):
        """Both paths must consume identical RNG stream positions and
        agree per draw. Sizes are compared within one unit: ``np.exp``
        and ``math.exp`` may round a last-place ULP apart, which the
        ``int()`` truncation can widen to at most one byte."""
        cdf = EmpiricalCdf(points, name="hyp")
        r_vec = np.random.default_rng(seed)
        r_scalar = np.random.default_rng(seed)
        batch = cdf.sample_many(r_vec, n, scale=scale)
        loop = [cdf.sample(r_scalar, scale) for _ in range(n)]
        assert len(batch) == n
        assert all(abs(a - b) <= 1 for a, b in zip(batch, loop))
        assert all(s >= 1 for s in batch)
        # Both paths must leave the generator at the same stream position.
        assert r_vec.random() == r_scalar.random()


class TestPoissonTraffic:
    def _traffic(self, load=0.5, sim_ms=20, seed=1):
        clos = small_clos()
        rng = RngRegistry(seed).stream("arrivals")
        return clos, PoissonTraffic(clos.hosts, WEBSEARCH, load, 10 * GBPS,
                                    sim_ms * MILLIS, rng, size_scale=4.0)

    def test_offered_load_close_to_target(self):
        clos, traffic = self._traffic(load=0.5, sim_ms=50)
        flows = traffic.generate()
        total_bits = sum(f.size_bytes for f in flows) * 8
        capacity_bits = len(clos.hosts) * 10 * GBPS * 0.05
        measured = total_bits / capacity_bits
        assert 0.35 < measured < 0.65

    def test_arrivals_sorted_and_within_horizon(self):
        _, traffic = self._traffic()
        flows = traffic.generate()
        starts = [f.start_ns for f in flows]
        assert starts == sorted(starts)
        assert all(0 <= s < 20 * MILLIS for s in starts)

    def test_src_dst_distinct(self):
        _, traffic = self._traffic()
        assert all(f.src.id != f.dst.id for f in traffic.generate())

    def test_flow_ids_unique_and_sequential(self):
        _, traffic = self._traffic()
        ids = [f.flow_id for f in traffic.generate()]
        assert ids == list(range(1, len(ids) + 1))

    def test_deterministic_for_seed(self):
        _, t1 = self._traffic(seed=5)
        _, t2 = self._traffic(seed=5)
        f1, f2 = t1.generate(), t2.generate()
        assert [(f.size_bytes, f.start_ns) for f in f1] == \
               [(f.size_bytes, f.start_ns) for f in f2]

    def test_invalid_load_raises(self):
        clos = small_clos()
        rng = RngRegistry(1).stream("x")
        with pytest.raises(ValueError):
            PoissonTraffic(clos.hosts, WEBSEARCH, 0.0, 10 * GBPS, MILLIS, rng)
        with pytest.raises(ValueError):
            PoissonTraffic(clos.hosts, WEBSEARCH, 1.01, 10 * GBPS, MILLIS, rng)

    def test_full_load_is_legal(self):
        # load 1.0 is the paper-scale saturation operating point
        clos = small_clos()
        rng = RngRegistry(1).stream("x")
        traffic = PoissonTraffic(clos.hosts, WEBSEARCH, 1.0, 10 * GBPS,
                                 MILLIS, rng)
        assert traffic.arrival_rate_per_ns() > 0

    def test_core_load_factor(self):
        assert PoissonTraffic.core_load_factor(4, 2.0) == pytest.approx(1.5)
        assert PoissonTraffic.core_load_factor(1, 3.0) == 0.0


class TestIncast:
    def _incast(self, fraction=0.1, sim_ms=50):
        clos = small_clos()
        rng = RngRegistry(2).stream("incast")
        return clos, IncastTraffic(
            clos.hosts, request_bytes=8 * KB, flows_per_sender=4,
            background_bytes_per_ns=5.0, foreground_fraction=fraction,
            sim_time_ns=sim_ms * MILLIS, rng=rng, first_flow_id=1000,
        )

    def test_event_structure(self):
        clos, incast = self._incast()
        flows = incast.generate()
        assert flows, "expected at least one incast event"
        by_start = {}
        for f in flows:
            by_start.setdefault(f.start_ns, []).append(f)
        n = len(clos.hosts)
        for start, batch in by_start.items():
            # (n-1) senders x 4 flows toward one receiver
            assert len(batch) == (n - 1) * 4
            receivers = {f.dst.id for f in batch}
            assert len(receivers) == 1
            assert all(f.size_bytes == 8 * KB for f in batch)
            assert all(f.role == "fg" for f in batch)

    def test_volume_fraction(self):
        clos, incast = self._incast(fraction=0.1, sim_ms=200)
        flows = incast.generate()
        fg_bytes = sum(f.size_bytes for f in flows)
        bg_bytes = 5.0 * 200 * MILLIS
        measured = fg_bytes / (fg_bytes + bg_bytes)
        assert 0.05 < measured < 0.2

    def test_zero_fraction_no_events(self):
        _, incast = self._incast(fraction=0.0)
        assert incast.generate() == []

    def test_flow_ids_start_at_offset(self):
        _, incast = self._incast()
        flows = incast.generate()
        assert min(f.flow_id for f in flows) == 1000

    @pytest.mark.parametrize("n_hosts", [0, 1])
    def test_fewer_than_two_hosts_rejected(self, n_hosts):
        """A sender pool of < 2 hosts used to reach ``integers(0, 0)``
        (ZeroDivisionError deep in the sampler at generate() time); it
        must fail loudly at construction instead."""
        rng = RngRegistry(2).stream("incast")
        hosts = [_FakeHost(i) for i in range(n_hosts)]
        with pytest.raises(ValueError, match="at least 2 hosts"):
            IncastTraffic(hosts, request_bytes=8 * KB, flows_per_sender=4,
                          background_bytes_per_ns=5.0,
                          foreground_fraction=0.1, sim_time_ns=MILLIS,
                          rng=rng, first_flow_id=1)

    def test_single_host_legal_when_fraction_zero(self):
        # No incast events will ever fire, so a degenerate pool is fine.
        rng = RngRegistry(2).stream("incast")
        incast = IncastTraffic([_FakeHost(0)], request_bytes=8 * KB,
                               flows_per_sender=4,
                               background_bytes_per_ns=5.0,
                               foreground_fraction=0.0,
                               sim_time_ns=MILLIS, rng=rng, first_flow_id=1)
        assert incast.generate() == []


class _FakeHost:
    """Rack occupant stub: DeploymentPlan only reads ``.id``."""

    def __init__(self, host_id):
        self.id = host_id


class TestDeploymentPlan:
    def _racks(self):
        return small_clos().racks()

    def test_fraction_zero_nothing_upgraded(self):
        racks = self._racks()
        plan = DeploymentPlan(racks, 0.0, np.random.default_rng(1))
        assert plan.upgraded_hosts == set()
        assert plan.flow_group(racks[0][0], racks[1][0]) == "legacy"

    def test_fraction_one_everything_upgraded(self):
        racks = self._racks()
        plan = DeploymentPlan(racks, 1.0, np.random.default_rng(1))
        assert plan.flow_group(racks[0][0], racks[-1][0]) == "new"

    def test_rack_granularity(self):
        racks = self._racks()
        plan = DeploymentPlan(racks, 0.5, np.random.default_rng(1))
        for idx, rack in enumerate(racks):
            states = {plan.is_upgraded(h) for h in rack}
            assert len(states) == 1, "hosts within a rack must match"

    def test_both_endpoints_required(self):
        racks = self._racks()
        plan = DeploymentPlan(racks, 0.5, np.random.default_rng(3))
        up = [r for r in racks if plan.is_upgraded(r[0])]
        down = [r for r in racks if not plan.is_upgraded(r[0])]
        if up and down:
            assert plan.flow_group(up[0][0], down[0][0]) == "legacy"
        if len(up) >= 2:
            assert plan.flow_group(up[0][0], up[1][0]) == "new"

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            DeploymentPlan(self._racks(), 1.5, np.random.default_rng(0))

    @given(st.floats(0.0, 1.0), st.integers(0, 100))
    @settings(max_examples=30)
    def test_property_upgraded_rack_count(self, fraction, seed):
        racks = self._racks()
        plan = DeploymentPlan(racks, fraction, np.random.default_rng(seed))
        expected = math.floor(fraction * len(racks) + 0.5)
        assert len(plan.upgraded_racks) == expected

    @pytest.mark.parametrize("n_racks", [4, 8, 16])
    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
    def test_rack_count_rounds_half_up(self, fraction, n_racks):
        """Pin the sweep grid's upgraded-rack counts (round-half-up).

        ``int(round())`` banker's-rounds exact .5 products to the even
        neighbour; the deployment sweep must never lose half a rack."""
        racks = [[_FakeHost(r * 100 + h) for h in range(4)]
                 for r in range(n_racks)]
        plan = DeploymentPlan(racks, fraction, np.random.default_rng(7))
        assert len(plan.upgraded_racks) == math.floor(
            fraction * n_racks + 0.5)
        assert len(plan.upgraded_hosts) == 4 * len(plan.upgraded_racks)

    def test_rack_count_half_up_beats_bankers(self):
        # 0.25 * 2 racks = 0.5 -> one rack upgraded (round() gives 0);
        # 0.25 * 10 racks = 2.5 -> three racks (round() gives 2)
        racks2 = [[_FakeHost(r * 10 + h) for h in range(2)] for r in range(2)]
        plan = DeploymentPlan(racks2, 0.25, np.random.default_rng(1))
        assert len(plan.upgraded_racks) == 1
        racks10 = [[_FakeHost(r * 10 + h) for h in range(2)]
                   for r in range(10)]
        plan = DeploymentPlan(racks10, 0.25, np.random.default_rng(1))
        assert len(plan.upgraded_racks) == 3
