"""Tests for the pHost-style per-host credit allocator (§4.3 extensibility)."""

import pytest

from repro.core.flexpass import FlexPassParams, FlexPassReceiver, FlexPassSender
from repro.experiments.config import QueueSettings
from repro.experiments.scenarios import flexpass_queue_factory
from repro.net.packet import PacketKind
from repro.net.topology import DumbbellSpec, StarSpec, build_dumbbell, build_star
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB, MILLIS
from repro.transports.base import FlowSpec, FlowStats
from repro.transports.credit_feedback import CREDIT_PER_DATA
from repro.transports.phost_credits import PHostAllocator, PHostCreditSource

from tests.test_net_port_topology import Recorder
from tests.util import Completions


def phost_params(rate_bps=10 * GBPS, wq=0.5):
    return FlexPassParams(
        max_credit_rate_bps=rate_bps * wq * CREDIT_PER_DATA,
        credit_allocator="phost",
    )


class TestAllocatorUnit:
    def _setup(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=2))
        return sim, db

    def test_singleton_per_host(self):
        sim, db = self._setup()
        a1 = PHostAllocator.for_host(sim, db.receivers[0], 1e9)
        a2 = PHostAllocator.for_host(sim, db.receivers[0], 1e9)
        assert a1 is a2
        a3 = PHostAllocator.for_host(sim, db.receivers[1], 1e9)
        assert a3 is not a1

    def test_round_robin_across_flows(self):
        # Rate kept under the fabric's wq-scaled credit limiter (~265 Mbps
        # on the bottleneck) so no credits drop and RR equality is exact.
        sim, db = self._setup()
        alloc = PHostAllocator.for_host(sim, db.receivers[0], 200e6)
        recs = {}
        for fid, sender in ((1, db.senders[0]), (2, db.senders[1])):
            stats = FlowStats()
            alloc.register(fid, sender.id, stats)
            rec = Recorder()
            sender.register_sender(fid, rec)
            recs[fid] = rec
        sim.run(until=2 * MILLIS)
        c1 = sum(1 for p in recs[1].packets if p.kind == PacketKind.CREDIT)
        c2 = sum(1 for p in recs[2].packets if p.kind == PacketKind.CREDIT)
        assert c1 > 0 and c2 > 0
        assert abs(c1 - c2) <= 2  # strict round robin

    def test_aggregate_rate_respected(self):
        """Two flows share ONE pacer: total credits match the host rate,
        not 2x (the over-issue ExpressPass needs feedback to fix)."""
        sim, db = self._setup()
        alloc = PHostAllocator.for_host(sim, db.receivers[0], 200e6)
        for fid, sender in ((1, db.senders[0]), (2, db.senders[1])):
            alloc.register(fid, sender.id, FlowStats())
            sender.register_sender(fid, Recorder())
        sim.run(until=4 * MILLIS)
        expected = 200e6 * 4e-3 / (84 * 8)
        assert alloc.tokens_sent <= expected * 1.05

    def test_unregister_stops_flow(self):
        sim, db = self._setup()
        alloc = PHostAllocator.for_host(sim, db.receivers[0], 200e6)
        rec = Recorder()
        db.senders[0].register_sender(1, rec)
        alloc.register(1, db.senders[0].id, FlowStats())
        sim.run(until=1 * MILLIS)
        alloc.unregister(1)
        sim.run(until=2 * MILLIS)  # drain credits already in flight
        n = len(rec.packets)
        sim.run(until=4 * MILLIS)
        assert len(rec.packets) == n
        assert sim.pending() == 0  # allocator timer cancelled

    def test_duplicate_registration_rejected(self):
        sim, db = self._setup()
        alloc = PHostAllocator.for_host(sim, db.receivers[0], 1e9)
        alloc.register(1, db.senders[0].id, FlowStats())
        with pytest.raises(ValueError):
            alloc.register(1, db.senders[0].id, FlowStats())

    def test_invalid_rate(self):
        sim, db = self._setup()
        with pytest.raises(ValueError):
            PHostAllocator(sim, db.receivers[0], 0)


class TestFlexPassOverPHost:
    def test_flow_completes(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        done = Completions()
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 2 * MB, 0,
                        scheme="flexpass", group="new")
        stats = FlowStats()
        FlexPassReceiver(sim, spec, stats, phost_params(), on_complete=done)
        sender = FlexPassSender(sim, spec, stats, phost_params())
        sim.at(0, sender.start)
        sim.run(until=60 * MILLIS)
        assert done.flow_ids == {1}
        assert stats.delivered_bytes == 2 * MB
        assert stats.proactive_bytes > 0

    def test_incast_fair_tokens_zero_timeouts(self):
        """The per-host allocator natively serializes incast credits."""
        sim = Simulator()
        star = build_star(sim, flexpass_queue_factory(QueueSettings()),
                          StarSpec(n_hosts=9, buffer_bytes=2 * MB))
        done = Completions()
        receiver = star.hosts[0]
        all_stats = []
        for k in range(32):
            src = star.hosts[1:][k % 8]
            spec = FlowSpec(k + 1, src, receiver, 64 * KB, 0,
                            scheme="flexpass", group="new")
            st = FlowStats()
            FlexPassReceiver(sim, spec, st, phost_params())
            sender = FlexPassSender(sim, spec, st, phost_params())
            sim.at(0, sender.start)
            all_stats.append(st)
        sim.run(until=300 * MILLIS)
        assert all(s.completed for s in all_stats)
        assert sum(s.timeouts for s in all_stats) == 0

    def test_unknown_allocator_rejected(self):
        sim = Simulator()
        db = build_dumbbell(sim, flexpass_queue_factory(QueueSettings()),
                            DumbbellSpec(n_pairs=1))
        spec = FlowSpec(1, db.senders[0], db.receivers[0], 10 * KB, 0,
                        scheme="flexpass", group="new")
        params = FlexPassParams(credit_allocator="dcpim")
        with pytest.raises(ValueError):
            FlexPassReceiver(sim, spec, FlowStats(), params)
