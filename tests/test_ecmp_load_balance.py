"""ECMP load-balancing behaviour on the Clos fabric."""

import numpy as np

from repro.net.topology import ClosSpec, build_clos
from repro.sim.engine import Simulator
from repro.sim.units import MILLIS

from tests.test_net_port_topology import Recorder, single_queue_factory
from repro.net.packet import Dscp, Packet, PacketKind


def test_flows_spread_across_core_links():
    """Many flows between one host pair should spread over the equal-cost
    core links (per-flow hashing), with no link monopolized."""
    sim = Simulator()
    clos = build_clos(
        sim, single_queue_factory,
        ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=2, hosts_per_tor=2,
                 cores_per_group=2),
    )
    src = clos.racks()[0][0]
    dst = clos.racks()[-1][0]
    n_flows = 200
    for flow in range(1, n_flows + 1):
        rec = Recorder()
        dst.register_receiver(flow, rec)
        src.send(Packet(PacketKind.DATA, flow, src.id, dst.id, 1584,
                        dscp=Dscp.LEGACY))
    sim.run()
    core_counts = []
    for core in clos.cores:
        pkts = sum(p.link.packets_delivered for p in core.ports.values())
        core_counts.append(pkts)
    used = [c for c in core_counts if c > 0]
    assert len(used) == len(clos.cores), f"unused core links: {core_counts}"
    # no single core carries more than ~2.5x its fair share of 200 flows
    assert max(core_counts) < 2.5 * n_flows / len(clos.cores)


def test_single_flow_stays_on_one_path():
    """All packets of one flow must take the same path (no reordering by
    routing, the paper's §4.2 assumption)."""
    sim = Simulator()
    clos = build_clos(
        sim, single_queue_factory,
        ClosSpec(n_pods=2, aggs_per_pod=2, tors_per_pod=2, hosts_per_tor=2,
                 cores_per_group=2),
    )
    src = clos.racks()[0][0]
    dst = clos.racks()[-1][0]
    rec = Recorder()
    dst.register_receiver(7, rec)
    for seq in range(50):
        src.send(Packet(PacketKind.DATA, 7, src.id, dst.id, 1584,
                        dscp=Dscp.LEGACY, seq=seq))
    sim.run()
    assert [p.seq for p in rec.packets] == list(range(50))  # in order
    # exactly one core saw this flow
    carrying = [
        c for c in clos.cores
        if any(p.link.packets_delivered > 0 for p in c.ports.values())
    ]
    assert len(carrying) == 1
