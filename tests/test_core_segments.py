"""Unit + property tests for the per-packet state machine (Figure 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.segments import SegmentState, SendBuffer


def buf(n=10):
    return SendBuffer([1500] * n)


class TestPicks:
    def test_initial_pick_is_first_pending(self):
        b = buf()
        assert b.peek_pending().idx == 0

    def test_pending_advances_in_order(self):
        b = buf()
        for expect in range(3):
            seg = b.peek_pending()
            assert seg.idx == expect
            b.mark_sent_reactive(seg.idx, expect)

    def test_pending_back_for_rc3(self):
        b = buf(5)
        assert b.peek_pending_back().idx == 4
        b.mark_sent_reactive(4, 0)
        assert b.peek_pending_back().idx == 3
        assert b.peek_pending().idx == 0  # front untouched

    def test_lost_has_priority_visibility(self):
        b = buf()
        b.mark_sent_reactive(0, 0)
        b.mark_sent_reactive(1, 1)
        assert b.peek_lost() is None
        b.mark_lost(1)
        assert b.peek_lost().idx == 1

    def test_lowest_lost_first(self):
        b = buf()
        for i in range(4):
            b.mark_sent_reactive(i, i)
        b.mark_lost(3)
        b.mark_lost(1)
        assert b.peek_lost().idx == 1

    def test_sent_reactive_pick_skips_acked(self):
        b = buf()
        b.mark_sent_reactive(0, 0)
        b.mark_sent_reactive(1, 1)
        b.mark_acked(0)
        assert b.peek_sent_reactive().idx == 1

    def test_stale_heap_entries_are_skipped(self):
        b = buf()
        b.mark_sent_reactive(0, 0)
        b.mark_lost(0)
        b.mark_sent_proactive(0, 0)  # recovered: LOST -> SENT_PROACTIVE
        assert b.peek_lost() is None

    def test_empty_buffer_rejected(self):
        with pytest.raises(ValueError):
            SendBuffer([])


class TestTransitions:
    def test_reactive_only_sends_pending(self):
        b = buf()
        b.mark_sent_reactive(0, 0)
        with pytest.raises(ValueError):
            b.mark_sent_reactive(0, 1)  # already sent

    def test_lost_recovered_only_via_proactive(self):
        b = buf()
        b.mark_sent_reactive(0, 0)
        b.mark_lost(0)
        with pytest.raises(ValueError):
            b.mark_sent_reactive(0, 1)
        b.mark_sent_proactive(0, 0)
        assert b.state_of(0) == SegmentState.SENT_PROACTIVE

    def test_proactive_rtx_from_sent_reactive(self):
        """Figure 4: Sent-as-reactive --credit--> Sent-as-proactive."""
        b = buf()
        b.mark_sent_reactive(0, 0)
        b.mark_sent_proactive(0, 0)
        assert b.state_of(0) == SegmentState.SENT_PROACTIVE

    def test_pending_cannot_be_lost_or_acked(self):
        b = buf()
        with pytest.raises(ValueError):
            b.mark_lost(0)
        with pytest.raises(ValueError):
            b.mark_acked(0)

    def test_ack_is_terminal(self):
        b = buf()
        b.mark_sent_reactive(0, 0)
        assert b.mark_acked(0)
        assert not b.mark_acked(0)  # idempotent
        assert not b.mark_lost(0)   # stale loss detection ignored
        with pytest.raises(ValueError):
            b.mark_sent_proactive(0, 1)

    def test_ack_from_lost_state(self):
        """A spurious loss detection followed by the original ACK."""
        b = buf()
        b.mark_sent_reactive(0, 0)
        b.mark_lost(0)
        assert b.mark_acked(0)
        assert b.peek_lost() is None

    def test_all_acked(self):
        b = buf(2)
        for i in range(2):
            b.mark_sent_reactive(i, i)
            b.mark_acked(i)
        assert b.all_acked


@st.composite
def _op_sequences(draw):
    n = draw(st.integers(1, 12))
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["reactive", "proactive", "lose", "ack"]),
        st.integers(0, n - 1),
    ), max_size=60))
    return n, ops


@given(_op_sequences())
@settings(max_examples=200)
def test_property_state_machine_never_corrupts(case):
    """Drive arbitrary (possibly illegal) transitions; legal ones must keep
    the buffer's aggregate invariants, illegal ones must raise cleanly."""
    n, ops = case
    b = SendBuffer([1500] * n)
    rseq = pseq = 0
    for op, idx in ops:
        state = b.state_of(idx)
        try:
            if op == "reactive":
                b.mark_sent_reactive(idx, rseq)
                rseq += 1
                assert state == SegmentState.PENDING
            elif op == "proactive":
                b.mark_sent_proactive(idx, pseq)
                pseq += 1
                assert state in (SegmentState.PENDING, SegmentState.SENT_REACTIVE,
                                 SegmentState.LOST)
            elif op == "lose":
                changed = b.mark_lost(idx)
                if changed:
                    assert state in (SegmentState.SENT_REACTIVE,
                                     SegmentState.SENT_PROACTIVE)
            elif op == "ack":
                changed = b.mark_acked(idx)
                if changed:
                    assert state != SegmentState.ACKED
        except ValueError:
            # illegal transition: state must be unchanged
            assert b.state_of(idx) == state
        # global invariants
        counts = b.state_counts()
        assert sum(counts.values()) == n
        assert counts[SegmentState.ACKED] == b.n_acked
        # picks never return a segment in the wrong state
        for peek, want in (
            (b.peek_pending, SegmentState.PENDING),
            (b.peek_lost, SegmentState.LOST),
            (b.peek_sent_reactive, SegmentState.SENT_REACTIVE),
        ):
            seg = peek()
            if seg is not None:
                assert seg.state == want


@given(st.integers(1, 30))
def test_property_pending_drains_front_and_back(n):
    b = SendBuffer([100] * n)
    taken = []
    front = True
    while True:
        seg = b.peek_pending() if front else b.peek_pending_back()
        if seg is None:
            break
        taken.append(seg.idx)
        b.mark_sent_reactive(seg.idx, len(taken))
        front = not front
    assert sorted(taken) == list(range(n))
