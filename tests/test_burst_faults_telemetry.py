"""Burst dequeue (PR 7) x link failure x telemetry interaction tests.

The burst fast path commits up to ``EgressPort.BURST`` packets onto the
wire in one serve event, with each packet's arrival scheduled at its own
cumulative serialization end. These tests pin down the three properties
that make that safe to compose with the rest of the system:

* wire timing is bit-identical to serving packets one at a time (the
  monitored per-packet path is the oracle), just with fewer events;
* a :class:`~repro.faults.link.FaultyLink` spliced under a bursting port
  still makes its fault decision at each packet's serialization end, so a
  mid-burst ``fail()`` destroys exactly the frames a real cable cut would
  — committed-but-unserialized frames included;
* a :class:`~repro.metrics.telemetry.TelemetrySampler` watching the port
  never installs a ``port.monitors`` tap, so telemetry-on runs keep the
  burst path (and observe the same timeline).
"""

import pytest

from repro.faults.link import splice
from repro.metrics.telemetry import TelemetrySampler
from repro.net.buffering import UnlimitedBuffer
from repro.net.link import Link
from repro.net.packet import Dscp, Packet, PacketKind
from repro.net.port import EgressPort
from repro.net.queues import PacketQueue, QueueConfig
from repro.net.scheduler import QueueSchedule
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, tx_time_ns

SIZE = 1250  # 1250 B at 10G serializes in exactly 1000 ns
RATE = 10 * GBPS
SER = tx_time_ns(SIZE, RATE)


class _Sink:
    """Terminal node recording (arrival_ns, packet)."""

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, pkt):
        self.arrivals.append((self.sim.now, pkt))


def _mk_port(sim, delay_ns=1000):
    sink = _Sink(sim)
    link = Link(sim, sink, delay_ns)
    q = PacketQueue(QueueConfig(name="data"))
    port = EgressPort(
        sim, "tx", RATE, UnlimitedBuffer(),
        [QueueSchedule(q, priority=0, weight=1.0)],
        {Dscp.LEGACY.value: 0}, link,
    )
    return port, sink


def _pkts(n):
    return [Packet(PacketKind.DATA, i, 0, 1, SIZE, dscp=Dscp.LEGACY)
            for i in range(n)]


# -------------------------------------------------------- burst vs oracle


class TestBurstDequeue:
    def test_backlog_exceeding_burst_drains_with_exact_wire_timing(self):
        """12 packets (> BURST=8) enqueued at once: every arrival lands at
        its own serialization end plus propagation, as if served singly."""
        sim = Simulator()
        port, sink = _mk_port(sim, delay_ns=1000)
        assert port._batch_ok
        pkts = _pkts(12)
        for p in pkts:
            assert port.enqueue(p)
        sim.run()
        assert [p for _, p in sink.arrivals] == pkts  # FIFO preserved
        assert [t for t, _ in sink.arrivals] == [
            (i + 1) * SER + 1000 for i in range(12)
        ]

    def test_burst_path_saves_events_against_monitored_oracle(self):
        """A no-op monitor forces the per-packet slow path; timings must
        match the burst run exactly, while the burst run spends fewer
        scheduled events."""
        def drain(monitored):
            sim = Simulator()
            port, sink = _mk_port(sim)
            if monitored:
                port.monitors.append(lambda now, pkt: None)
            for p in _pkts(12):
                port.enqueue(p)
            sim.run()
            return [t for t, _ in sink.arrivals], sim.events_run

        slow_times, slow_events = drain(monitored=True)
        fast_times, fast_events = drain(monitored=False)
        assert fast_times == slow_times
        assert fast_events < slow_events


# ------------------------------------------------- mid-burst link failure


class TestMidBurstLinkFailure:
    def test_fail_mid_burst_destroys_committed_and_in_flight_frames(self):
        """All 12 packets are committed to the wire within the first two
        serve events; a fail() at 4.5 serialization times must drop every
        one of them — 4 mid-propagation, 8 still serializing or queued."""
        sim = Simulator()
        port, sink = _mk_port(sim, delay_ns=5000)
        faulty = splice(port)
        for p in _pkts(12):
            port.enqueue(p)
        # Serialization ends are (i+1)*SER; with 5000 ns propagation nothing
        # has arrived by 4.5*SER, so packets 0-3 die in flight and 4-11 hit
        # a dead wire at their own serialization ends.
        sim.at(int(4.5 * SER), faulty.fail)
        sim.run()
        assert sink.arrivals == []
        assert faulty.counters.discarded_in_flight == 4
        assert faulty.counters.dropped_link_down == 8
        assert faulty.in_flight() == 0

    def test_fail_mid_burst_partial_delivery_then_recovery(self):
        """Failure after some arrivals: survivors keep FIFO order and exact
        timing; restore() lets fresh traffic through again."""
        sim = Simulator()
        port, sink = _mk_port(sim, delay_ns=1500)
        faulty = splice(port)
        pkts = _pkts(12)
        for p in pkts:
            port.enqueue(p)
        # Arrivals land at (i+1)*SER + 1500. At t=7600: packets 0-5 have
        # arrived, packet 6 (serialized at 7000, due 8500) is on the wire,
        # packets 7-11 have not reached serialization end yet.
        sim.at(7600, faulty.fail)
        sim.at(20_000, faulty.restore)
        late = Packet(PacketKind.DATA, 99, 0, 1, SIZE, dscp=Dscp.LEGACY)
        sim.at(21_000, port.enqueue, late)
        sim.run()
        assert [p for _, p in sink.arrivals[:6]] == pkts[:6]
        assert [t for t, _ in sink.arrivals[:6]] == [
            (i + 1) * SER + 1500 for i in range(6)
        ]
        assert faulty.counters.discarded_in_flight == 1
        assert faulty.counters.dropped_link_down == 5
        assert [p for _, p in sink.arrivals[6:]] == [late]
        assert sink.arrivals[6][0] == 21_000 + SER + 1500

    def test_spliced_link_keeps_serialization_end_fault_semantics(self):
        """splice() must not re-enable arrival coalescing: the FaultyLink
        defers carry() to serialization end even for burst-committed
        packets, so a failure between two commits of ONE burst separates
        their fates."""
        sim = Simulator()
        port, sink = _mk_port(sim, delay_ns=100)
        faulty = splice(port)
        for p in _pkts(8):  # one cut-through + one 7-packet burst
            port.enqueue(p)
        sim.at(int(6.5 * SER), faulty.fail)
        sim.run()
        # Packets 0-5 serialized and (with 100 ns delay) arrived before the
        # cut; 6 and 7 were committed in the same burst as 5 but die.
        assert len(sink.arrivals) == 6
        assert faulty.counters.dropped_link_down == 2


# ------------------------------------------------------ telemetry samplers


class TestTelemetryOnBurstPort:
    def test_watchers_install_no_monitors_and_keep_burst_path(self):
        sim = Simulator()
        port, _ = _mk_port(sim)
        sampler = TelemetrySampler(sim, interval_ns=500, until_ns=20_000)
        sampler.watch_port(port)
        sampler.watch_link(port)
        assert port.monitors == []
        assert port._batch_ok

    def test_sampler_accounts_burst_drained_bytes_without_timing_skew(self):
        """With the sampler ticking through the drain, arrivals stay on the
        exact burst timeline and the link-utilization counter integrates
        back to the delivered byte total."""
        sim = Simulator()
        port, sink = _mk_port(sim, delay_ns=1000)
        sampler = TelemetrySampler(sim, interval_ns=500, until_ns=20_000)
        sampler.watch_port(port)
        sampler.watch_link(port)
        sampler.start()
        for p in _pkts(12):
            port.enqueue(p)
        sim.run()
        assert [t for t, _ in sink.arrivals] == [
            (i + 1) * SER + 1000 for i in range(12)
        ]
        series = sampler.freeze()
        util = series.values("link.tx.util")
        # util is delta_bytes * 8e9 / (interval * rate); invert to bytes.
        total = sum(util) * 500 * RATE / 8e9
        assert total == pytest.approx(12 * SIZE)
        depths = series.values("port.tx.q0.depth_bytes")
        assert max(depths) > 0  # saw the backlog...
        assert depths[-1] == 0  # ...and its drain

    def test_sampler_on_spliced_link_sees_outage_window(self):
        """Splice first, then watch: the sampler reads the FaultyLink's
        delivery counter, so utilization covers only frames that truly
        arrived and flatlines across the outage."""
        sim = Simulator()
        port, sink = _mk_port(sim, delay_ns=1500)
        faulty = splice(port)
        sampler = TelemetrySampler(sim, interval_ns=500, until_ns=30_000)
        sampler.watch_link(port)
        sampler.start()
        for p in _pkts(12):
            port.enqueue(p)
        sim.at(7600, faulty.fail)
        sim.run()
        series = sampler.freeze()
        util = series.values("link.tx.util")
        total = sum(util) * 500 * RATE / 8e9
        assert total == pytest.approx(6 * SIZE)  # only the 6 survivors
        # Every tick after the cut reads zero utilization.
        post = [v for t, v in zip(series.times("link.tx.util"), util)
                if t > 10_000]
        assert post and all(v == 0.0 for v in post)
